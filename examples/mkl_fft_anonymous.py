#!/usr/bin/env python
"""Case study: closed-source code — the MKL FFT scenario (paper §6.3).

MKL is closed source, so CCProf "cannot attribute the samples to the code
but can associate samples to anonymous code blocks".  This example profiles
the 2D power-of-two FFT whose program image carries *no* source locations,
shows the anonymous-block loop names, uses the stride diagnoser on the
sampled addresses, and applies the paper's 8-element row pad.

Run:
    python examples/mkl_fft_anonymous.py
"""

from repro import CCProf, FixedPeriod
from repro.core.attribution import attribute_code
from repro.optimize import diagnose_stride
from repro.program.symbols import Symbolizer
from repro.workloads import Fft2dWorkload


def main() -> None:
    profiler = CCProf(period=FixedPeriod(17), seed=7)

    original = Fft2dWorkload.original(n=128)
    report = profiler.run(original)
    print("== original 128x128 complex FFT (anonymous image) ==")
    print(report.render())

    # The conflicting loop has no source name - only func@ip, like the
    # paper's "anonymous code blocks".
    conflict = report.conflicting_loops()[0]
    assert conflict.loop_name.startswith("mkl_fft2d@"), conflict.loop_name
    print(f"\nconflicting anonymous block: {conflict.loop_name}")

    # Even without source, the sampled addresses expose the access pattern.
    profile = profiler.profile(original)
    code = attribute_code(profile.sampling.samples, Symbolizer(original.image))
    hot = code.loop(conflict.loop_name)
    diagnosis = diagnose_stride(
        [sample.address for sample in hot.samples],
        profiler.geometry,
        row_pitch_hint=original.data.pitch,
    )
    print(
        f"stride diagnosis: dominant stride {diagnosis.dominant_stride} B "
        f"covering {diagnosis.sets_covered} sets -> {diagnosis.recommendation}"
    )

    padded = Fft2dWorkload.padded(n=128)
    after = profiler.run(padded)
    print("\n== after the paper's 8-element row pad ==")
    print(after.render())
    print(
        f"\nL1 misses: {original.l1_stats().misses} -> {padded.l1_stats().misses}"
    )


if __name__ == "__main__":
    main()
