#!/usr/bin/env python
"""Static prediction vs dynamic measurement — and where each one wins.

``repro.analysis`` predicts victim sets from declared affine access
patterns alone (zero trace accesses).  This walkthrough puts the
prediction next to a real CCProf run on two very different cases:

1. **gemm** — an *intra-array* conflict: the column walk over ``B`` folds
   onto few sets.  That is visible in a single access descriptor, so the
   static pass nails the same victim sets the profiler measures.
2. **Needleman-Wunsch** — the paper's §6.1 *inter-array* conflict: each
   array is individually harmless; the collision comes from the relative
   heap addresses of ``reference`` and ``input_itemsets``.  Per-access
   analysis is blind to that by construction, so the static report comes
   out clean while the profiler flags the conflict — the honest boundary
   of what analysis without an allocator model can see.

Run:
    python examples/static_vs_dynamic.py
"""

from repro import CacheGeometry, CCProf, UniformJitterPeriod
from repro.analysis.validation import (
    VALIDATION_GEOMETRY,
    VALIDATION_PERIOD_MEAN,
    measured_victim_sets,
    predict_conflicts,
)
from repro.workloads import NeedlemanWunschWorkload
from repro.workloads.polybench import GemmWorkload

PAPER_GEOMETRY = CacheGeometry()  # the paper's 64-set x 8-way L1


def compare(workload, geometry, period_mean) -> None:
    """Print predicted vs measured victim sets, loop by loop."""
    static_report = predict_conflicts(workload, geometry=geometry)

    profiler = CCProf(
        geometry=geometry, period=UniformJitterPeriod(period_mean), seed=1
    )
    profile = profiler.profile(workload)
    measured = measured_victim_sets(profile, geometry)

    print(f"{'loop':<18} {'predicted':>10} {'measured':>9}  agreement")
    loops = {loop.loop_name for loop in static_report.loops} | set(measured)
    for name in sorted(loops):
        try:
            predicted = set(static_report.loop(name).victim_sets)
        except Exception:
            predicted = set()
        dynamic, _cf = measured.get(name, ([], 0.0))
        dynamic = set(dynamic)
        if predicted or dynamic:
            overlap = len(predicted & dynamic)
            union = len(predicted | dynamic)
            verdict = f"{overlap}/{union} sets overlap"
        else:
            verdict = "both clean"
        print(f"{name:<18} {len(predicted):>10} {len(dynamic):>9}  {verdict}")
    print("  (static side simulated 0 trace accesses)")


def main() -> None:
    # gemm runs on the small cross-validation geometry (16 sets x 4 ways)
    # so the column-walk fold is deep and the dynamic run stays quick.
    print("== gemm: intra-array conflict — analysis sees it ==")
    compare(GemmWorkload(n=32), VALIDATION_GEOMETRY, VALIDATION_PERIOD_MEAN)

    print("\n== gemm, padded: analysis clears it too ==")
    compare(
        GemmWorkload(n=32, pad_bytes=64), VALIDATION_GEOMETRY, VALIDATION_PERIOD_MEAN
    )

    print("\n== Needleman-Wunsch: inter-array conflict — only profiling sees it ==")
    compare(NeedlemanWunschWorkload.original(n=256), PAPER_GEOMETRY, 171)
    print(
        "\nNW's conflict lives in the *relative addresses* of reference and\n"
        "input_itemsets, not in any single access pattern; the static pass\n"
        "correctly finds every per-array walk harmless, and the dynamic\n"
        "profiler is what catches the collision.  Static prediction is a\n"
        "pre-run layout check, not a profiler replacement."
    )


if __name__ == "__main__":
    main()
