#!/usr/bin/env python
"""Phase-aware conflict detection on a dynamic workload.

The paper's critique of DProf (§7.1) is that it "assumes that the workload
is uniform throughout the runtime".  This example builds a two-phase
application — a clean streaming phase followed by a conflicting
column-walk phase — and shows three views of it:

1. the whole-run report (the conflict signal, diluted by the clean phase);
2. the phase timeline (`PhaseAnalyzer`), which isolates the conflicting
   interval and its victim sets;
3. the cache-set usage heatmap (`SetUsageTimeline`), the Figure 2-style
   visualization of the phase change.

Run:
    python examples/phase_detection.py
"""

import itertools
from typing import Iterator

from repro import CacheGeometry, CCProf, FixedPeriod
from repro.core.phases import PhaseAnalyzer
from repro.core.setmap import SetUsageTimeline
from repro.trace.record import MemoryAccess
from repro.workloads.base import Array1D, Array2D, TraceWorkload

GEOMETRY = CacheGeometry()


class TwoPhaseWorkload(TraceWorkload):
    """Streams a buffer, then column-walks an aliased matrix."""

    name = "two-phase"

    def __init__(self) -> None:
        super().__init__()
        self.stream = Array1D.allocate(self.allocator, "stream_buf", 32768, 8)
        self.matrix = Array2D.allocate(
            self.allocator, "matrix", rows=256, cols=512, elem_size=8
        )
        function = self.builder.function("app", file="app.c")
        function.begin_loop(line=10, label="stream_phase")
        self.ip_stream = function.add_statement(line=11)
        function.end_loop()
        function.begin_loop(line=20, label="column_phase")
        self.ip_column = function.add_statement(line=21)
        function.end_loop()
        function.finish()

    def trace(self) -> Iterator[MemoryAccess]:
        # Phase 1: sequential sweeps (clean).
        for _lap in range(3):
            for index in range(self.stream.length):
                yield self.load(self.ip_stream, self.stream.addr(index))
        # Phase 2: column walk at a 4096-byte pitch (conflict).
        for _lap in range(6):
            for col in range(64):
                for row in range(self.matrix.rows):
                    yield self.load(self.ip_column, self.matrix.addr(row, col))


def main() -> None:
    workload = TwoPhaseWorkload()
    profiler = CCProf(geometry=GEOMETRY, period=FixedPeriod(23), seed=4)

    # View 1: the ordinary whole-run report.
    report = profiler.run(workload)
    print(report.render())

    # View 2: the phase timeline.
    profile = profiler.profile(workload)
    analysis = PhaseAnalyzer(GEOMETRY, window=256).analyze(profile.sampling.samples)
    print(
        f"\nphase timeline: {len(analysis.phases)} windows, "
        f"{analysis.conflict_fraction:.0%} conflicting, "
        f"transitions at {analysis.transitions()}"
    )
    for phase in analysis.phases:
        bar = "#" * int(phase.contribution_factor * 40)
        print(f"  window {phase.index:>3} cf={phase.contribution_factor:4.2f} |{bar}")

    # View 3: the set-usage heatmap (time runs downward).
    timeline = SetUsageTimeline.from_samples(
        profile.sampling.samples, GEOMETRY, window=256
    )
    print("\ncache-set usage over time (columns = 64 sets):")
    print(timeline.render_ascii(max_windows=16))
    print(f"mean set occupancy per window: {timeline.occupancy():.0%}")


if __name__ == "__main__":
    main()
