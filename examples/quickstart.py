#!/usr/bin/env python
"""Quickstart: detect a conflict, get a fix, verify it.

Profiles the paper's motivating example — matrix symmetrization on a
128x128 matrix (Figure 2) — prints CCProf's conflict report, asks the
padding advisor for a fix, applies it, and confirms the conflict is gone:
the complete workflow of the paper in ~40 lines.

Run:
    python examples/quickstart.py
"""

from repro import CCProf, UniformJitterPeriod
from repro.optimize import advise_padding
from repro.workloads import SymmetrizationWorkload


def main() -> None:
    # 1. Profile the original kernel against the paper's L1 (32 KiB /
    #    8-way / 64 sets).  The kernel is scaled down from a production
    #    run, so we sample at the paper's high-accuracy mean period of 171
    #    (Figure 8's F1 = 1 point) rather than the low-overhead 1212
    #    recommended for full-length executions.
    profiler = CCProf(period=UniformJitterPeriod(171), seed=42)
    original = SymmetrizationWorkload.original(n=128, sweeps=4)
    report = profiler.run(original)
    print(report.render())

    if not report.has_conflicts:
        print("\nno conflicts found - nothing to do")
        return

    # 2. The report names the data structure; ask the advisor how to pad it.
    victim = report.conflicting_loops()[0].data_structures[0]
    print(f"\nconflicting data structure: {victim.label}")
    advice = advise_padding(original.a, profiler.geometry, alignment=64)
    print(f"advice: +{advice.pad_bytes} bytes/row  ({advice.reason})")

    # 3. Apply the fix and re-profile.
    fixed = SymmetrizationWorkload(n=128, pad_bytes=advice.pad_bytes, sweeps=4)
    after = profiler.run(fixed)
    print("\nafter padding:")
    print(after.render())

    # 4. Quantify the win.
    before_misses = original.l1_stats().misses
    after_misses = fixed.l1_stats().misses
    reduction = (before_misses - after_misses) / before_misses
    print(
        f"\nL1 misses: {before_misses} -> {after_misses} "
        f"({reduction:.1%} reduction); conflicts flagged after fix: "
        f"{after.has_conflicts}"
    )


if __name__ == "__main__":
    main()
