#!/usr/bin/env python
"""Case study: Rodinia Needleman-Wunsch (paper §6.1, Tables 2/3/4).

Reproduces the paper's flagship analysis end to end:

1. code-centric attribution — the Table 4 per-loop breakdown (contribution,
   cache sets used, short-RCD share);
2. data-centric attribution — which matrices cause the inter-array conflict
   (the paper finds ``reference`` and ``input_itemsets``);
3. the fix — the paper's 32/288-byte row pads — re-profiled to show the
   Figure 9 CDF shift;
4. an estimated speedup on the two evaluation machines.

Run:
    python examples/nw_case_study.py
"""

from repro import CacheGeometry, CCProf, FixedPeriod
from repro.core.attribution import attribute_code, attribute_data
from repro.core.rcd import RcdAnalysis
from repro.perfmodel import BROADWELL, SKYLAKE, speedup
from repro.program.symbols import Symbolizer
from repro.workloads import NeedlemanWunschWorkload

N = 256
GEOMETRY = CacheGeometry()


def loop_table(workload) -> None:
    """Print the Table-4 style per-loop breakdown."""
    profiler = CCProf(geometry=GEOMETRY, period=FixedPeriod(11), seed=1)
    profile = profiler.profile(workload)
    symbolizer = Symbolizer(workload.image)
    code = attribute_code(profile.sampling.samples, symbolizer)

    print(f"{'loop':<18} {'contribution':>12} {'# sets':>7} {'P(RCD<8)':>9}")
    for group in code.loops:
        sets = {GEOMETRY.set_index(s.address) for s in group.samples}
        analysis = RcdAnalysis.from_addresses(
            (s.address for s in group.samples), GEOMETRY
        )
        short = (
            analysis.cdf().probability_at(7) if analysis.observation_count else 0.0
        )
        print(
            f"{group.loop_name:<18} {group.share:>12.2%} {len(sets):>7} {short:>9.2f}"
        )

    # Data-centric view of the hottest loop (the paper's Listing 1 copy).
    hot = code.loops[0]
    data = attribute_data(hot.samples, workload.allocator)
    print(f"\ndata structures behind {hot.loop_name}:")
    for entry in data.top(3):
        print(f"  {entry.label:<16} {entry.share:>7.1%} of the loop's misses")


def main() -> None:
    original = NeedlemanWunschWorkload.original(n=N)
    print(f"== original Needleman-Wunsch (n={N}) ==")
    loop_table(original)

    padded = NeedlemanWunschWorkload.padded(n=N)
    print("\n== after the paper's 32/288-byte row pads ==")
    loop_table(padded)

    print("\n== estimated speedup (analytical model over hierarchy sim) ==")
    for machine in (BROADWELL, SKYLAKE):
        before = NeedlemanWunschWorkload.original(n=N).hierarchy_result(
            machine.hierarchy()
        )
        after = NeedlemanWunschWorkload.padded(n=N).hierarchy_result(
            machine.hierarchy()
        )
        print(f"  {machine.name}: {speedup(before, after, machine):.2f}x")
    print("  (paper, n=2048, real hardware: 3.03x Broadwell / 1.55x Skylake)")


if __name__ == "__main__":
    main()
