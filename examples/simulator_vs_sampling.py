#!/usr/bin/env python
"""Simulation vs sampling: same verdict, very different cost (paper §5.3).

The paper validates CCProf against the Dinero IV trace-driven simulator.
This example runs both observation channels on the Tiny-DNN forward layer:

1. dumps a Dinero-format ``.din`` trace and runs the Dinero-style front end
   (exact misses, three-C classification, exact RCD);
2. runs the PEBS-like sampler at the paper's recommended period;
3. compares the conflict verdicts and the measured wall-clock cost of each.

Run:
    python examples/simulator_vs_sampling.py
"""

import tempfile
import time
from pathlib import Path

from repro import CacheGeometry, CCProf, UniformJitterPeriod
from repro.cache import ThreeCClassifier
from repro.cache.dinero import format_dinero_report, simulate_dinero_trace
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.trace import write_dinero_trace
from repro.workloads import TinyDnnFcWorkload

GEOMETRY = CacheGeometry()


def main() -> None:
    workload = TinyDnnFcWorkload.original()

    # --- channel 1: full trace + simulation (the Dinero IV path) ---
    start = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "tinydnn.din"
        count = write_dinero_trace(trace_path, workload.trace())
        stats = simulate_dinero_trace(trace_path, spec="32k:64:8:lru")
        print(format_dinero_report(stats, title="tiny-dnn forward"))
    simulation_seconds = time.perf_counter() - start

    # Exact RCD + three-C ground truth from the same trace.
    classifier = ThreeCClassifier(GEOMETRY)
    sets = []
    for access in workload.trace():
        outcome = classifier.classify_record(access)
        if outcome.value != "hit":
            sets.append(GEOMETRY.set_index(access.address))
    exact_cf = contribution_factor(
        RcdAnalysis.from_set_sequence(sets, GEOMETRY.num_sets)
    )
    print(
        f"\nground truth: {classifier.counts.conflict} conflict misses "
        f"({classifier.counts.conflict_fraction():.1%} of misses), "
        f"exact cf = {exact_cf:.3f}"
    )

    # --- channel 2: PEBS-like sampling (the CCProf path) ---
    start = time.perf_counter()
    profiler = CCProf(period=UniformJitterPeriod(1212), seed=3)
    report = profiler.run(TinyDnnFcWorkload.original())
    sampling_seconds = time.perf_counter() - start
    print("\n" + report.render())

    # --- the paper's point ---
    hot = report.loops[0]
    print(
        f"\nverdict agreement: exact cf {exact_cf:.3f} vs sampled cf "
        f"{hot.contribution_factor:.3f} -> both "
        f"{'conflict' if report.has_conflicts else 'clean'}"
    )
    print(
        f"cost on this substrate: simulation {simulation_seconds:.2f}s "
        f"({count} trace records) vs sampling {sampling_seconds:.2f}s "
        f"({report.total_samples} samples)"
    )
    print(
        "paper, real hardware: simulation ~264x median overhead vs CCProf "
        "1.37x median"
    )


if __name__ == "__main__":
    main()
