#!/usr/bin/env python
"""Multi-threaded profiling: SMT siblings sharing an L1.

The paper's evaluation machines run two SMT threads per core, sharing each
32 KiB L1 — so a kernel that exactly fits the cache alone can thrash it
when co-scheduled with its sibling.  This example profiles two copies of an
"eight ways per set" kernel (a) on separate cores and (b) as SMT siblings,
with per-thread PMU state, and shows the interference appear in each
thread's own conflict report.

Run:
    python examples/smt_interference.py
"""

from typing import Iterator

from repro import CacheGeometry
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu import MultiThreadMonitor
from repro.pmu.periods import FixedPeriod
from repro.trace.record import MemoryAccess

GEOMETRY = CacheGeometry()


def eight_way_kernel(base: int, repeats: int = 2000) -> Iterator[MemoryAccess]:
    """Touches exactly 8 lines of set 0 per lap: fills the set, no more."""
    for _ in range(repeats):
        for i in range(8):
            yield MemoryAccess(ip=0x400100, address=base + i * GEOMETRY.mapping_period)


def report(label: str, profile) -> None:
    print(f"\n{label}:")
    for thread_id in profile.thread_ids:
        result = profile.thread(thread_id)
        analysis = RcdAnalysis.from_addresses(
            (sample.address for sample in result.samples), GEOMETRY
        )
        cf = contribution_factor(analysis)
        print(
            f"  thread {thread_id}: {result.total_events:>6} L1 miss events, "
            f"{result.sample_count:>4} samples, cf = {cf:.2f}"
        )


def main() -> None:
    monitor = MultiThreadMonitor(GEOMETRY, period=FixedPeriod(7), seed=5)
    threads = {
        0: eight_way_kernel(0x1000_0000),
        1: eight_way_kernel(0x2000_0000),
    }

    # (a) Private cores: each kernel fits its own L1 - cold misses only.
    private = monitor.profile(
        {0: eight_way_kernel(0x1000_0000), 1: eight_way_kernel(0x2000_0000)}
    )
    report("private cores (no sharing)", private)

    # (b) SMT siblings: 16 lines now compete for the same 8-way set.
    shared = monitor.profile(threads, core_groups=[[0, 1]])
    report("SMT siblings (shared L1)", shared)

    private_events = sum(private.thread(t).total_events for t in (0, 1))
    shared_events = sum(shared.thread(t).total_events for t in (0, 1))
    print(
        f"\ntotal L1 miss events: {private_events} (private) vs "
        f"{shared_events} (shared) - co-scheduling turned a resident "
        f"working set into a conflict storm"
    )


if __name__ == "__main__":
    main()
