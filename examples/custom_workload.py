#!/usr/bin/env python
"""Profiling your own kernel with CCProf.

Everything the six built-in case studies do, a user can do for any kernel:
describe the arrays (virtual allocator), the loop nest (image builder), and
the access stream (a generator), then hand the workload to CCProf.

The kernel here is a histogram over 16-bit keys — a classic accidental
conflict: the 256-bucket count array is fine, but the key-indexed *offset
table* is allocated with a power-of-two row pitch and walked by column.

Run:
    python examples/custom_workload.py
"""

from typing import Iterator

from repro import CCProf, FixedPeriod
from repro.optimize import advise_padding
from repro.trace.record import MemoryAccess
from repro.workloads.base import Array1D, Array2D, TraceWorkload


class HistogramWorkload(TraceWorkload):
    """Column-walked offset table feeding a histogram."""

    name = "histogram"

    def __init__(self, groups: int = 128, keys_per_group: int = 512, pad: int = 0):
        super().__init__()
        self.groups = groups
        self.keys_per_group = keys_per_group
        # offsets[key][group], 8-byte entries: the column walk over groups
        # strides by the row pitch.
        self.offsets = Array2D.allocate(
            self.allocator, "offsets", rows=keys_per_group, cols=groups,
            elem_size=8, pad_bytes=pad,
        )
        self.counts = Array1D.allocate(self.allocator, "counts", 256, 8)

        function = self.builder.function("histogram_kernel", file="hist.c")
        function.begin_loop(line=12)          # for each group
        function.begin_loop(line=13)          # for each key
        self.ip_offset = function.add_statement(line=14)
        self.ip_count = function.add_statement(line=15)
        function.end_loop()
        function.end_loop()
        function.finish()

    def trace(self) -> Iterator[MemoryAccess]:
        for group in range(self.groups):
            for key in range(self.keys_per_group):
                # Column walk: same group, successive keys -> pitch stride.
                yield self.load(self.ip_offset, self.offsets.addr(key, group))
                yield self.store(self.ip_count, self.counts.addr((key * 7) % 256))


def main() -> None:
    profiler = CCProf(period=FixedPeriod(23), seed=11)

    workload = HistogramWorkload()
    report = profiler.run(workload)
    print(report.render())

    # The advisor reads the layout straight off the Array2D.
    advice = advise_padding(workload.offsets, profiler.geometry)
    print(f"\nadvice for 'offsets': {advice.reason}")

    if advice.is_needed:
        fixed = HistogramWorkload(pad=advice.pad_bytes)
        after = profiler.run(fixed)
        print("\nafter padding:")
        print(after.render())
        print(
            f"\nL1 misses {workload.l1_stats().misses} -> "
            f"{fixed.l1_stats().misses}"
        )


if __name__ == "__main__":
    main()
