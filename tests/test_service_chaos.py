"""Load/chaos tests for the service daemon.

The small smoke run executes in tier-1; the full-scale run (200 concurrent
jobs, 20% injected worker kills, slow clients) carries the ``chaos``
marker, mirroring the robustness pipeline suite, and is the acceptance
test for the service's liveness/exactly-once/isolation/latency invariants.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.service.chaos import ChaosReport, LoadHarness, _percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert _percentile(values, 0.50) == 20.0
        assert _percentile(values, 0.99) == 40.0
        assert _percentile([], 0.99) == 0.0


class TestChaosReportChecks:
    def _report(self, **overrides):
        record = dict(
            jobs=2,
            outcomes={"completed": 2},
            kills=0,
            slow_clients_dropped=0,
            retried_rejections=0,
            duplicate_resolutions=0,
            cross_tenant_violations=0,
            missing_responses=[],
            journal_terminal_counts={"t/j1": 1, "t/j2": 1},
            latencies_ms=[5.0, 7.0],
        )
        record.update(overrides)
        return ChaosReport(**record)

    def test_clean_report_passes(self):
        assert self._report().check(max_p99_ms=100.0) == []

    def test_each_invariant_violation_is_reported(self):
        def violations(**overrides):
            return self._report(**overrides).check(max_p99_ms=100.0)

        assert violations(missing_responses=["job-0001"])
        assert violations(outcomes={"completed": 1})
        assert violations(duplicate_resolutions=1)
        assert violations(cross_tenant_violations=1)
        assert violations(journal_terminal_counts={"t/j1": 2, "t/j2": 1})
        assert violations(latencies_ms=[5.0, 500.0])

    def test_describe_is_human_readable(self):
        text = self._report().describe()
        assert "jobs" in text and "p99" in text


class TestSmokeLoad:
    def test_small_burst_with_injected_kill(self):
        with use_registry(MetricsRegistry()):
            harness = LoadHarness(
                jobs=24, tenants=4, kill_rate=0.2, kill_max=1,
                slow_clients=1, workers=4, seed=11,
            )
            report = harness.run()
        assert report.check(max_p99_ms=30_000.0) == []
        assert sum(report.outcomes.values()) == 24
        assert report.kills <= 1


@pytest.mark.chaos
class TestFullChaos:
    def test_200_jobs_20pct_kills_slow_clients(self):
        with use_registry(MetricsRegistry()):
            harness = LoadHarness(
                jobs=200, tenants=8, kill_rate=0.2,
                slow_clients=4, workers=8, seed=0,
            )
            report = harness.run()
        problems = report.check(max_p99_ms=30_000.0)
        assert problems == [], f"{problems}\n{report.describe()}"
        # The run actually exercised chaos, not a quiet pass.
        assert report.kills > 0
        assert sum(report.outcomes.values()) == 200
        # Every job reached a terminal outcome exactly once.
        assert report.missing_responses == []
        assert report.duplicate_resolutions == 0
        assert report.cross_tenant_violations == 0
        assert all(
            count == 1 for count in report.journal_terminal_counts.values()
        )

    def test_same_seed_reproduces_outcome_mix(self):
        def run_once():
            with use_registry(MetricsRegistry()):
                return LoadHarness(
                    jobs=32, tenants=4, kill_rate=0.3, kill_max=4,
                    slow_clients=0, workers=4, seed=7,
                ).run()

        first, second = run_once(), run_once()
        assert first.outcomes == second.outcomes
        assert first.kills == second.kills
