"""Tests for repro.cache.geometry — the Figure 1 bit extraction."""

import pytest

from repro.cache.geometry import (
    BROADWELL_LLC,
    PAPER_L1,
    PAPER_L2,
    SKYLAKE_LLC,
    CacheGeometry,
)
from repro.errors import GeometryError


class TestConstruction:
    def test_paper_l1_is_32k_8way_64sets(self):
        assert PAPER_L1.capacity == 32 * 1024
        assert PAPER_L1.num_sets == 64
        assert PAPER_L1.ways == 8
        assert PAPER_L1.line_size == 64

    def test_from_capacity(self):
        geometry = CacheGeometry.from_capacity(32 * 1024, line_size=64, ways=8)
        assert geometry == PAPER_L1

    def test_from_capacity_l2(self):
        assert PAPER_L2.capacity == 256 * 1024
        assert PAPER_L2.num_sets == 512

    def test_llc_specs(self):
        assert BROADWELL_LLC.capacity == 32 * 1024 * 1024
        assert SKYLAKE_LLC.capacity == 8 * 1024 * 1024

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(line_size=48)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(num_sets=63)

    def test_zero_ways_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(ways=0)

    def test_from_capacity_indivisible_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry.from_capacity(1024, line_size=64, ways=7)


class TestBitExtraction:
    """Figure 1: tag | index | offset."""

    def test_offset_bits(self, paper_l1):
        assert paper_l1.offset_bits == 6
        assert paper_l1.index_bits == 6

    def test_offset(self, paper_l1):
        assert paper_l1.offset(0x1234) == 0x34

    def test_set_index(self, paper_l1):
        # Address 0x1000 = line 64 = set 0 (64 mod 64).
        assert paper_l1.set_index(0x1000) == 0
        assert paper_l1.set_index(0x1040) == 1

    def test_set_index_wraps_at_mapping_period(self, paper_l1):
        assert paper_l1.mapping_period == 4096
        assert paper_l1.set_index(0x0) == paper_l1.set_index(4096)

    def test_tag(self, paper_l1):
        assert paper_l1.tag(0x0) == 0
        assert paper_l1.tag(4096) == 1

    def test_same_set_different_tag_is_a_conflict_pair(self, paper_l1):
        a, b = 0x100, 0x100 + paper_l1.mapping_period
        assert paper_l1.set_index(a) == paper_l1.set_index(b)
        assert paper_l1.tag(a) != paper_l1.tag(b)

    def test_reconstruction(self, paper_l1):
        address = 0xDEADBEEF
        rebuilt = (
            (paper_l1.tag(address) << (paper_l1.offset_bits + paper_l1.index_bits))
            | (paper_l1.set_index(address) << paper_l1.offset_bits)
            | paper_l1.offset(address)
        )
        assert rebuilt == address

    def test_line_address_and_number(self, paper_l1):
        assert paper_l1.line_address(0x12F) == 0x100
        assert paper_l1.line_number(0x12F) == 0x100 // 64


class TestSpans:
    def test_single_line(self, paper_l1):
        assert paper_l1.lines_spanned(0, 8) == 1

    def test_straddling_access(self, paper_l1):
        assert paper_l1.lines_spanned(60, 8) == 2

    def test_exactly_one_line(self, paper_l1):
        assert paper_l1.lines_spanned(64, 64) == 1

    def test_bad_size(self, paper_l1):
        with pytest.raises(GeometryError):
            paper_l1.lines_spanned(0, 0)


class TestDescribe:
    def test_describe_mentions_shape(self, paper_l1):
        text = paper_l1.describe()
        assert "32" in text and "8-way" in text and "64 sets" in text
