"""Tests for repro.cli."""

import pytest

from repro.cli import _resolve_workload, build_parser, main
from repro.errors import ReproError
from repro.trace.tracefile import write_dinero_trace
from tests.conftest import make_load


class TestResolveWorkload:
    def test_case_study_original(self):
        workload = _resolve_workload("symmetrization")
        assert workload.name == "symmetrization"

    def test_case_study_optimized(self):
        workload = _resolve_workload("symmetrization:optimized")
        assert "padded" in workload.name

    def test_rodinia_app(self):
        assert _resolve_workload("hotspot").name == "hotspot"

    def test_rodinia_has_no_optimized_variant(self):
        with pytest.raises(ReproError, match="no optimized variant"):
            _resolve_workload("hotspot:optimized")

    def test_unknown_workload(self):
        with pytest.raises(ReproError, match="unknown workload"):
            _resolve_workload("quake")

    def test_unknown_variant(self):
        with pytest.raises(ReproError, match="unknown variant"):
            _resolve_workload("adi:better")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "adi" in out and "hotspot" in out

    def test_simulate(self, tmp_path, capsys):
        trace = tmp_path / "t.din"
        write_dinero_trace(trace, [make_load(i * 64) for i in range(8)])
        assert main(["simulate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Misses" in out

    def test_analyze_writes_result(self, tmp_path, capsys):
        out_file = tmp_path / "symm_result"
        code = main(
            ["analyze", "symmetrization", "--period", "50", "-o", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "CCProf conflict report" in capsys.readouterr().out

    def test_profile_dumps_samples(self, tmp_path, capsys):
        out_file = tmp_path / "samples.jsonl"
        code = main(["profile", "symmetrization", "--period", "50", "-o", str(out_file)])
        assert code == 0
        assert out_file.exists()
        assert "samples" in capsys.readouterr().out

    def test_error_path_returns_one(self, capsys):
        assert main(["analyze", "quake"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAdviseCommand:
    def test_advise_conflicting_workload(self, capsys):
        assert main(["advise", "symmetrization", "--period", "50"]) == 0
        out = capsys.readouterr().out
        assert "padding advice" in out
        assert "B/row" in out

    def test_advise_clean_workload(self, capsys):
        assert main(["advise", "jacobi-2d", "--period", "50"]) == 0
        out = capsys.readouterr().out
        assert "no conflicts flagged" in out


class TestPhasesCommand:
    def test_phases_output(self, capsys):
        code = main(["phases", "tinydnn", "--period", "101", "--window", "128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phases of ~128 samples" in out
        assert "CONFLICT" in out

    def test_polybench_names_resolve(self):
        for name in ("gemm", "2mm", "trmm", "jacobi-2d", "fdtd-2d"):
            assert _resolve_workload(name) is not None


class TestCompareCommand:
    def test_compare_shows_improvement(self, capsys):
        assert main(["compare", "symmetrization", "--period", "101"]) == 0
        out = capsys.readouterr().out
        assert "L1 misses" in out and "reduction" in out
        assert "conflicts flagged: True -> False" in out

    def test_compare_rejects_variant_suffix(self, capsys):
        assert main(["compare", "adi:optimized"]) == 1
        assert "bare name" in capsys.readouterr().err

    def test_compare_rejects_rodinia_app(self, capsys):
        assert main(["compare", "hotspot"]) == 1
        assert "no optimized variant" in capsys.readouterr().err
