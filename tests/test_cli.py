"""Tests for repro.cli."""

import json

import pytest

from repro.cli import _resolve_workload, build_parser, main
from repro.errors import ReproError
from repro.trace.tracefile import write_dinero_trace
from tests.conftest import make_load


class TestResolveWorkload:
    def test_case_study_original(self):
        workload = _resolve_workload("symmetrization")
        assert workload.name == "symmetrization"

    def test_case_study_optimized(self):
        workload = _resolve_workload("symmetrization:optimized")
        assert "padded" in workload.name

    def test_rodinia_app(self):
        assert _resolve_workload("hotspot").name == "hotspot"

    def test_rodinia_has_no_optimized_variant(self):
        with pytest.raises(ReproError, match="no optimized variant"):
            _resolve_workload("hotspot:optimized")

    def test_unknown_workload(self):
        with pytest.raises(ReproError, match="unknown workload"):
            _resolve_workload("quake")

    def test_unknown_variant(self):
        with pytest.raises(ReproError, match="unknown variant"):
            _resolve_workload("adi:better")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "adi" in out and "hotspot" in out

    def test_simulate(self, tmp_path, capsys):
        trace = tmp_path / "t.din"
        write_dinero_trace(trace, [make_load(i * 64) for i in range(8)])
        assert main(["simulate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Misses" in out

    def test_analyze_writes_result(self, tmp_path, capsys):
        out_file = tmp_path / "symm_result"
        code = main(
            ["analyze", "symmetrization", "--period", "50", "-o", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "CCProf conflict report" in capsys.readouterr().out

    def test_profile_dumps_samples(self, tmp_path, capsys):
        out_file = tmp_path / "samples.jsonl"
        code = main(["profile", "symmetrization", "--period", "50", "-o", str(out_file)])
        assert code == 0
        assert out_file.exists()
        assert "samples" in capsys.readouterr().out

    def test_error_path_returns_one(self, capsys):
        assert main(["analyze", "quake"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAdviseCommand:
    def test_advise_conflicting_workload(self, capsys):
        assert main(["advise", "symmetrization", "--period", "50"]) == 0
        out = capsys.readouterr().out
        assert "padding advice" in out
        assert "B/row" in out

    def test_advise_clean_workload(self, capsys):
        assert main(["advise", "jacobi-2d", "--period", "50"]) == 0
        out = capsys.readouterr().out
        assert "no conflicts flagged" in out


class TestPredictCommand:
    def test_predict_conflicting_workload(self, capsys):
        assert main(["predict", "gemm"]) == 0
        out = capsys.readouterr().out
        assert "trace accesses simulated: 0" in out
        assert "CONFLICT" in out
        assert "padding advice" in out

    def test_predict_clean_workload(self, capsys):
        assert main(["predict", "jacobi-2d"]) == 0
        out = capsys.readouterr().out
        assert "trace accesses simulated: 0" in out
        assert "padding advice" not in out

    def test_predict_optimized_variant(self, capsys):
        assert main(["predict", "gemm:optimized"]) == 0
        assert "CONFLICT" not in capsys.readouterr().out

    def test_predict_stats_flag(self, capsys):
        assert main(["predict", "symmetrization", "--stats"]) == 0
        assert "passes run" in capsys.readouterr().out

    def test_predict_undeclared_workload_is_analysis_family(self, capsys):
        assert main(["predict", "fft"]) == 7
        assert "[analysis]" in capsys.readouterr().err


class TestPhasesCommand:
    def test_phases_output(self, capsys):
        code = main(["phases", "tinydnn", "--period", "101", "--window", "128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phases of ~128 samples" in out
        assert "CONFLICT" in out

    def test_polybench_names_resolve(self):
        for name in ("gemm", "2mm", "trmm", "jacobi-2d", "fdtd-2d"):
            assert _resolve_workload(name) is not None


class TestExitCodes:
    """Each error family maps to its own nonzero exit code."""

    def test_unknown_workload_is_repro_family(self, capsys):
        assert main(["analyze", "quake"]) == 1
        assert "[repro]" in capsys.readouterr().err

    def test_corrupt_trace_strict_is_trace_family(self, tmp_path, capsys):
        trace = tmp_path / "bad.din"
        trace.write_text("0 zznotahex\n")
        assert main(["simulate", str(trace), "--strict"]) == 4
        assert "[trace]" in capsys.readouterr().err

    def test_bad_cache_spec_is_trace_family(self, tmp_path, capsys):
        trace = tmp_path / "t.din"
        write_dinero_trace(trace, [make_load(0x1000)])
        assert main(["simulate", str(trace), "--cache", "nonsense"]) == 4
        assert "[trace]" in capsys.readouterr().err

    def test_bad_inject_spec_is_sampling_family(self, capsys):
        code = main(["analyze", "adi", "--inject", "cosmic-ray"])
        assert code == 6
        assert "[sampling]" in capsys.readouterr().err

    def test_errors_never_print_tracebacks(self, tmp_path, capsys):
        trace = tmp_path / "bad.din"
        trace.write_text("garbage line here\n" * 3)
        main(["simulate", str(trace), "--strict"])
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert err.startswith("ccprof: error")


class TestStrictLenient:
    def test_lenient_is_the_default_for_simulate(self, tmp_path, capsys):
        trace = tmp_path / "t.din"
        trace.write_text("0 1000\n0 zznotahex\n0 2000\n")
        assert main(["simulate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace salvage" in out
        assert "quarantined 1" in out

    def test_clean_trace_prints_no_salvage_line(self, tmp_path, capsys):
        trace = tmp_path / "t.din"
        write_dinero_trace(trace, [make_load(i * 64) for i in range(8)])
        assert main(["simulate", str(trace)]) == 0
        assert "trace salvage" not in capsys.readouterr().out

    def test_strict_and_lenient_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "t.din", "--strict", "--lenient"])


class TestFaultInjectionFlags:
    def test_analyze_with_injection_reports_fault_stats(self, capsys):
        code = main(
            ["analyze", "symmetrization", "--period", "50",
             "--inject", "drop:0.2,skid:1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "injected faults" in out
        assert "drop=" in out and "skid=" in out
        assert "DEGRADED" in out

    def test_profile_with_injection_prints_fault_line(self, capsys):
        code = main(
            ["profile", "symmetrization", "--period", "50",
             "--inject", "drop:0.5"]
        )
        assert code == 0
        assert "injected faults:" in capsys.readouterr().out

    def test_profile_max_events_budget_truncates(self, capsys):
        code = main(
            ["profile", "symmetrization", "--period", "50",
             "--max-events", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "run truncated: event budget" in out
        assert "200 L1 miss events" in out

    def test_injection_is_seeded_and_reproducible(self, capsys):
        argv = ["profile", "adi", "--period", "50",
                "--inject", "drop:0.3", "--seed", "11"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestCompareCommand:
    def test_compare_shows_improvement(self, capsys):
        assert main(["compare", "symmetrization", "--period", "101"]) == 0
        out = capsys.readouterr().out
        assert "L1 misses" in out and "reduction" in out
        assert "conflicts flagged: True -> False" in out

    def test_compare_matches_no_obs_run(self, capsys):
        # The compare path reuses cache stats riding on the profiled runs
        # instead of re-simulating; the printed numbers must not change,
        # including under --no-obs where the fallback path re-simulates.
        argv = ["compare", "symmetrization", "--period", "101"]
        assert main(argv) == 0
        default_out = capsys.readouterr().out
        assert main([*argv, "--no-obs"]) == 0
        assert capsys.readouterr().out == default_out


class TestObsFlags:
    def test_quiet_hides_info_lines(self, tmp_path, capsys):
        out_file = tmp_path / "samples.jsonl"
        argv = ["profile", "symmetrization", "--period", "50",
                "-o", str(out_file)]
        assert main(argv) == 0
        assert "wrote" in capsys.readouterr().out
        assert main([*argv, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "wrote" not in out
        assert "samples" in out  # the result line survives

    def test_verbose_adds_spans_and_metrics(self, capsys):
        assert main(["analyze", "symmetrization", "--period", "50", "-v"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "metrics:" in out
        assert "pmu.samples_emitted" in out

    def test_log_json_events(self, capsys):
        assert main(
            ["profile", "symmetrization", "--period", "50", "--log-json"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert any(r["event"] == "profile.summary" for r in records)
        summary = next(r for r in records if r["event"] == "profile.summary")
        assert summary["samples"] > 0
        assert summary["level"] == "result"

    def test_no_obs_output_identical_to_default(self, capsys):
        argv = ["analyze", "symmetrization", "--period", "50"]
        assert main(argv) == 0
        default_out = capsys.readouterr().out
        assert main([*argv, "--no-obs"]) == 0
        assert capsys.readouterr().out == default_out

    def test_verbose_and_quiet_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["list", "-v", "-q"])


class TestManifests:
    def test_explicit_manifest_path(self, tmp_path, capsys):
        manifest = tmp_path / "run.manifest.json"
        code = main(["analyze", "symmetrization", "--period", "50",
                     "--manifest", str(manifest)])
        assert code == 0
        assert manifest.exists()
        record = json.loads(manifest.read_text())
        assert record["command"] == "analyze"
        assert record["workload"] == "symmetrization"
        assert record["metrics"]["counters"]["pmu.runs"] == 1
        assert "profile" in record["stage_timings"]

    def test_output_gains_sibling_manifest(self, tmp_path, capsys):
        out_file = tmp_path / "samples.jsonl"
        code = main(["profile", "symmetrization", "--period", "50",
                     "-o", str(out_file)])
        assert code == 0
        sibling = tmp_path / "samples.jsonl.manifest.json"
        assert sibling.exists()
        record = json.loads(sibling.read_text())
        assert record["outputs"]["samples"] == str(out_file)

    def test_no_obs_suppresses_manifest(self, tmp_path, capsys):
        out_file = tmp_path / "samples.jsonl"
        code = main(["profile", "symmetrization", "--period", "50",
                     "-o", str(out_file), "--no-obs"])
        assert code == 0
        assert not (tmp_path / "samples.jsonl.manifest.json").exists()

    def test_inspect_renders_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        assert main(["analyze", "symmetrization", "--period", "50",
                     "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "run manifest: analyze symmetrization" in out
        assert "stages:" in out

    def test_inspect_names_tripped_budget(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        assert main(["profile", "symmetrization", "--period", "50",
                     "--max-events", "200", "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "tripped budgets: max_events" in out

    def test_inspect_unreadable_manifest_is_manifest_family(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "nope.json"
        assert main(["inspect", str(missing)]) == 11
        assert "[manifest]" in capsys.readouterr().err


class TestSelfOverheadCommand:
    def test_requires_the_headline_workload(self, capsys):
        assert main(["profile", "adi", "--self-overhead"]) == 1
        assert "lru_stream" in capsys.readouterr().err

    def test_quick_measurement_runs(self, capsys):
        code = main(["profile", "lru_stream", "--self-overhead", "--quick"])
        out = capsys.readouterr().out
        assert "self-overhead (lru_stream" in out
        assert code in (0, 1)  # verdict depends on machine noise

    def test_lru_stream_profiles_without_flag(self, capsys):
        # lru_stream is a registered workload (the perf headline), so a
        # plain profile run works; --self-overhead remains the overhead
        # measurement mode on top of it.
        assert main(["profile", "lru_stream"]) == 0
        assert "lru_stream" in capsys.readouterr().out

    def test_compare_rejects_variant_suffix(self, capsys):
        assert main(["compare", "adi:optimized"]) == 1
        assert "bare name" in capsys.readouterr().err

    def test_compare_rejects_rodinia_app(self, capsys):
        assert main(["compare", "hotspot"]) == 1
        assert "no optimized variant" in capsys.readouterr().err


class TestEngineFlags:
    """--engine NAME replaces --scalar; the old flag stays as an alias."""

    @pytest.fixture(autouse=True)
    def _reset_alias_warning(self, monkeypatch):
        import repro.cli

        monkeypatch.setattr(repro.cli, "_SCALAR_ALIAS_WARNED", False)

    def test_engine_scalar_profiles(self, capsys):
        code = main(
            ["profile", "symmetrization", "--period", "50",
             "--engine", "scalar"]
        )
        assert code == 0
        assert "samples" in capsys.readouterr().out

    def test_engine_sharded_with_workers(self, capsys):
        # Small workload: the sharded backend's crossover heuristic
        # routes it through batched — the flag spelling still works.
        code = main(
            ["profile", "symmetrization", "--period", "50",
             "--engine", "sharded", "--engine-workers", "2"]
        )
        assert code == 0
        assert "samples" in capsys.readouterr().out

    def test_engine_choice_matches_scalar_flag_output(self, capsys):
        assert main(
            ["profile", "symmetrization", "--period", "50",
             "--engine", "scalar"]
        ) == 0
        via_engine = capsys.readouterr().out
        assert main(
            ["profile", "symmetrization", "--period", "50", "--scalar"]
        ) == 0
        via_alias = capsys.readouterr().out
        assert "deprecated" in via_alias
        assert via_engine in via_alias.replace(
            "--scalar is deprecated; use --engine scalar\n", ""
        ) or via_engine == via_alias.replace(
            "--scalar is deprecated; use --engine scalar\n", ""
        )

    def test_scalar_alias_warns_once_per_process(self, capsys):
        assert main(
            ["profile", "symmetrization", "--period", "50", "--scalar"]
        ) == 0
        first = capsys.readouterr()
        assert "deprecated" in (first.out + first.err)
        assert main(
            ["profile", "symmetrization", "--period", "50", "--scalar"]
        ) == 0
        second = capsys.readouterr()
        assert "deprecated" not in (second.out + second.err)

    def test_unknown_engine_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["profile", "symmetrization", "--engine", "warp"]
            )
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_scalar_conflicts_with_other_engine(self, capsys):
        assert main(
            ["profile", "symmetrization", "--scalar", "--engine", "batched"]
        ) == 1
        assert "deprecated alias" in capsys.readouterr().err

    def test_workers_rejected_by_serial_engines(self, capsys):
        code = main(
            ["profile", "symmetrization", "--engine", "batched",
             "--engine-workers", "2"]
        )
        assert code == 6  # sampling-family config error
        assert "[sampling]" in capsys.readouterr().err

    def test_analyze_takes_engine_too(self, capsys):
        code = main(
            ["analyze", "symmetrization", "--period", "50",
             "--engine", "scalar"]
        )
        assert code == 0
        assert "CCProf conflict report" in capsys.readouterr().out


class TestLruStreamWorkload:
    """lru_stream — the perf headline registered as a real workload."""

    def test_readme_quickstart_command(self, capsys):
        # The exact command the README quickstart documents.
        code = main(["profile", "lru_stream", "--engine", "sharded"])
        assert code == 0
        assert "lru_stream" in capsys.readouterr().out

    def test_variants_have_equal_access_counts(self):
        from repro.workloads.registry import resolve_workload

        original = resolve_workload("lru_stream")
        blocked = resolve_workload("lru_stream:optimized")
        assert sum(1 for _ in original.trace()) == sum(
            1 for _ in blocked.trace()
        )

    def test_blocked_variant_is_resident(self):
        # The tiled sweep fits L1, so steady-state misses collapse to
        # the cold set while the original misses on (nearly) every line.
        from repro.workloads.registry import resolve_workload

        original = resolve_workload("lru_stream").l1_stats()
        blocked = resolve_workload("lru_stream:optimized").l1_stats()
        assert blocked.misses < original.misses / 10

    def test_sizing_params_forwarded(self):
        from repro.workloads.registry import resolve_workload

        small = resolve_workload("lru_stream", lines=64, sweeps=2)
        assert sum(1 for _ in small.trace()) == 2 * 64 * 64 // 8


class TestStreamingCli:
    """profile/phases --stream: the continuous-profiling surface."""

    def test_profile_stream_writes_timeline_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        code = main(
            ["profile", "symmetrization", "--period", "50", "--stream",
             "--window", "64", "--manifest", str(manifest)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming:" in out
        record = json.loads(manifest.read_text())
        timeline = record["timeline"]
        assert timeline["version"] == 1
        assert timeline["window"] == 64
        assert timeline["windows"]
        # And inspect renders the phase picture from that manifest.
        assert main(["inspect", str(manifest)]) == 0
        assert "timeline:" in capsys.readouterr().out

    def test_profile_stream_exports_jsonl(self, tmp_path, capsys):
        jsonl = tmp_path / "windows.jsonl"
        code = main(
            ["profile", "symmetrization", "--period", "50", "--stream",
             "--window", "64", "--timeline-jsonl", str(jsonl)]
        )
        assert code == 0
        records = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        assert records
        assert all("cf" in r and "victim_sets" in r for r in records)

    def test_phases_stream_matches_batch_output(self, capsys):
        assert main(["phases", "symmetrization", "--period", "50",
                     "--window", "64"]) == 0
        batch_out = capsys.readouterr().out
        assert main(["phases", "symmetrization", "--period", "50",
                     "--window", "64", "--stream"]) == 0
        stream_out = capsys.readouterr().out
        # Bit-identical verdicts render byte-identical phase tables.
        batch_table = [l for l in batch_out.splitlines() if "phase" in l]
        stream_table = [l for l in stream_out.splitlines() if "phase" in l]
        assert batch_table == stream_table

    def test_no_stream_no_timeline(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        assert main(["profile", "symmetrization", "--period", "50",
                     "--manifest", str(manifest)]) == 0
        assert json.loads(manifest.read_text()).get("timeline") is None


class TestInspectBench:
    """inspect understands BENCH artifacts and rejects unknown ones."""

    def test_inspect_renders_committed_bench(self, capsys):
        from pathlib import Path

        bench = Path(__file__).resolve().parent.parent / "BENCH_e5d8e80.json"
        assert main(["inspect", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "bench result: revision e5d8e80" in out
        assert "headline" in out

    def test_inspect_unknown_artifact_exits_analysis_family(
        self, tmp_path, capsys
    ):
        stray = tmp_path / "mystery.json"
        stray.write_text(json.dumps({"what": "is this"}))
        assert main(["inspect", str(stray)]) == 7
        assert "unknown artifact" in capsys.readouterr().err

    def test_inspect_invalid_bench_exits_analysis_family(
        self, tmp_path, capsys
    ):
        broken = tmp_path / "b.json"
        broken.write_text(json.dumps({"schema_version": 2, "workloads": []}))
        assert main(["inspect", str(broken)]) == 7


class TestWatchCli:
    """ccprof watch: exit 0 on a healthy trajectory, 13 on regression."""

    def repo_root(self):
        from pathlib import Path

        return Path(__file__).resolve().parent.parent

    def test_committed_trajectory_passes(self, capsys):
        assert main(["watch", str(self.repo_root())]) == 0
        out = capsys.readouterr().out
        assert "perf trajectory: 468f2a7 -> 2a5ed55 -> e5d8e80" in out
        assert "verdict: ok" in out

    def test_synthetic_regression_exits_13(self, tmp_path, capsys):
        import shutil

        root = self.repo_root()
        shutil.copy(root / "BENCH_2a5ed55.json", tmp_path / "BENCH_aaa.json")
        regressed = json.loads(
            (root / "BENCH_2a5ed55.json").read_text()
        )
        regressed["headline"]["speedup"] /= 2  # -50% headline
        (tmp_path / "BENCH_bbb.json").write_text(json.dumps(regressed))
        report = tmp_path / "report.json"
        code = main(
            ["watch", str(tmp_path / "BENCH_aaa.json"),
             str(tmp_path / "BENCH_bbb.json"), "--report", str(report)]
        )
        assert code == 13
        assert "regression" in capsys.readouterr().out
        assert json.loads(report.read_text())["ok"] is False

    def test_thresholds_are_configurable(self, capsys):
        # Tightening the workload gate below the committed -25.5% drop
        # flips the healthy trajectory into a regression.
        assert main(["watch", str(self.repo_root()),
                     "--max-workload-drop", "0.2"]) == 13

    def test_single_point_is_watch_family(self, tmp_path, capsys):
        import shutil

        shutil.copy(
            self.repo_root() / "BENCH_2a5ed55.json",
            tmp_path / "BENCH_aaa.json",
        )
        assert main(["watch", str(tmp_path)]) == 13
        assert "at least 2" in capsys.readouterr().err
