"""Tests for repro.cache.hierarchy."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy, miss_reduction
from tests.conftest import make_load


@pytest.fixture
def two_level():
    l1 = CacheGeometry(line_size=16, num_sets=4, ways=2)   # 128 B
    l2 = CacheGeometry(line_size=16, num_sets=16, ways=4)  # 1 KiB
    return CacheHierarchy([l1, l2], names=["L1", "L2"])


class TestAccessDepth:
    def test_cold_access_misses_everywhere(self, two_level):
        assert two_level.access(0x1000) == 2

    def test_l1_hit_depth_zero(self, two_level):
        two_level.access(0x1000)
        assert two_level.access(0x1000) == 0

    def test_l1_evicted_but_l2_resident(self, two_level):
        # Fill L1 set 0 (2 ways) plus one more: line 0 falls to L2 only.
        period = 64  # L1 mapping period: 16 B * 4 sets
        for i in range(3):
            two_level.access(i * period)
        # Line 0 misses L1 but hits the bigger L2.
        assert two_level.access(0) == 1


class TestLevelStats:
    def test_l2_sees_only_l1_misses(self, two_level):
        for _ in range(3):
            two_level.access(0x500)
        result = two_level.result()
        assert result.level("L1").accesses == 3
        assert result.level("L2").accesses == 1

    def test_misses_vector(self, two_level):
        two_level.access(0)
        assert two_level.result().misses() == [1, 1]

    def test_unknown_level_raises(self, two_level):
        with pytest.raises(KeyError):
            two_level.result().level("LLC")

    def test_miss_ratio(self, two_level):
        two_level.access(0)
        two_level.access(0)
        assert two_level.result().level("L1").miss_ratio == 0.5


class TestFactories:
    def test_broadwell_levels(self):
        hierarchy = CacheHierarchy.broadwell()
        assert hierarchy.names == ["L1", "L2", "LLC"]
        assert hierarchy.levels[0].geometry.capacity == 32 * 1024
        assert hierarchy.levels[2].geometry.capacity == 32 * 1024 * 1024

    def test_skylake_llc_smaller(self):
        assert (
            CacheHierarchy.skylake().levels[2].geometry.capacity
            < CacheHierarchy.broadwell().levels[2].geometry.capacity
        )

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([CacheGeometry()], names=["a", "b"])


class TestRunTrace:
    def test_run_trace_summary(self, two_level):
        result = two_level.run_trace([make_load(i * 16) for i in range(8)])
        assert result.level("L1").accesses == 8
        assert result.level("L1").misses == 8

    def test_straddler_counts_deepest(self, two_level):
        depth = two_level.access_record(make_load(12, size=16))
        assert depth == 2


class TestMissReduction:
    def test_reduction_math(self, two_level):
        for i in range(4):
            two_level.access(i * 64)
        before = two_level.result()
        other = CacheHierarchy(
            [lvl.geometry for lvl in two_level.levels], names=two_level.names
        )
        other.access(0)
        after = other.result()
        reductions = miss_reduction(before, after)
        assert reductions[0] == pytest.approx((4 - 1) / 4)

    def test_zero_before_misses(self, two_level):
        empty = two_level.result()
        assert miss_reduction(empty, empty) == [0.0, 0.0]
