"""Tests for the concrete static analysis passes.

Each pass is exercised through the cache on real workloads at the small
validation geometry: access binding (AccessPatternAnalysis), residue-based
pressure and victim prediction (SetPressureAnalysis), the ranked report
(ConflictPredictionAnalysis), and prediction-driven padding advice
(StaticPaddingAnalysis).
"""

import pytest

from repro.analysis import (
    AccessPatternAnalysis,
    AnalysisCache,
    ConflictPredictionAnalysis,
    SetPressureAnalysis,
    StaticModel,
    StaticPaddingAnalysis,
)
from repro.analysis.validation import VALIDATION_GEOMETRY
from repro.errors import AnalysisError
from repro.workloads.polybench import GemmWorkload, Jacobi2dWorkload
from repro.workloads.symmetrization import SymmetrizationWorkload

ALL_SETS = list(range(VALIDATION_GEOMETRY.num_sets))


def make_cache(workload):
    model = StaticModel.from_workload(workload, geometry=VALIDATION_GEOMETRY)
    return AnalysisCache(model)


@pytest.fixture(scope="module")
def gemm_cache():
    return make_cache(GemmWorkload(n=32))


@pytest.fixture(scope="module")
def symm_cache():
    return make_cache(SymmetrizationWorkload(n=32, sweeps=2))


class TestStaticModel:
    def test_from_workload_collects_arrays(self, gemm_cache):
        assert set(gemm_cache.model.arrays) >= {"A", "B", "C"}

    def test_no_patterns_rejected(self):
        # Rodinia pattern workloads keep the base class's empty default.
        from repro.workloads.rodinia import StreamingWorkload

        workload = StreamingWorkload("stream", "stream.c", 10, kib=1)
        with pytest.raises(AnalysisError, match="access patterns"):
            StaticModel.from_workload(workload)


class TestAccessPatternAnalysis:
    def test_gemm_binds_all_accesses_to_its_loop(self, gemm_cache):
        patterns = gemm_cache.request(AccessPatternAnalysis)
        assert not patterns.unresolved
        assert len(patterns.patterns) == 1
        loop = patterns.patterns[0]
        assert loop.loop_name == "gemm.c:33"
        assert loop.depth == 3
        assert set(loop.labels) == {"A", "B", "C"}
        # Static weight: each access counts its full trip count.
        assert loop.weight == sum(
            access.trip_count for access in gemm_cache.model.accesses
        )

    def test_loop_weights_sorted_heaviest_first(self, symm_cache):
        weights = symm_cache.request(AccessPatternAnalysis).loop_weights()
        assert weights == sorted(weights, key=lambda pair: pair[1], reverse=True)
        assert all(weight > 0 for _name, weight in weights)


class TestSetPressureAnalysis:
    def test_gemm_column_walk_overflows_every_set(self, gemm_cache):
        pressure = gemm_cache.request(SetPressureAnalysis)
        # 32 rows x 256 B pitch folds onto 4 of 16 sets, 8 deep in a 4-way
        # cache; the shift union across column starts spreads the damage to
        # every set.
        assert sorted(pressure.loop_victims("gemm.c:33")) == ALL_SETS
        assert any(pressure.conflicting_accesses.values())

    def test_conflicting_window_identified(self, gemm_cache):
        pressure = gemm_cache.request(SetPressureAnalysis)
        conflicting = [
            window
            for window in pressure.windows_by_loop["gemm.c:33"]
            if window.conflicting
        ]
        assert len(conflicting) == 1
        window = conflicting[0]
        assert window.access.label == "B"
        assert int(window.pressure.max()) > VALIDATION_GEOMETRY.ways
        assert not window.capacity_like

    def test_padding_clears_the_prediction(self):
        pressure = make_cache(GemmWorkload(n=32, pad_bytes=64)).request(
            SetPressureAnalysis
        )
        assert pressure.loop_victims("gemm.c:33") == []
        assert not any(pressure.conflicting_accesses.values())

    def test_jacobi_high_pressure_reads_as_capacity(self):
        # The row-order stencil overfills the cache *uniformly*: pressure
        # exceeds ways on every set, which the imbalance gate classifies as
        # a capacity problem, not a conflict.
        pressure = make_cache(Jacobi2dWorkload(n=64, steps=2)).request(
            SetPressureAnalysis
        )
        windows = pressure.windows_by_loop["jacobi-2d.c:27"]
        assert windows
        assert all(window.capacity_like for window in windows)
        assert all(not window.conflicting for window in windows)
        assert pressure.loop_victims("jacobi-2d.c:27") == []

    def test_symmetrization_column_walk_victims(self, symm_cache):
        pressure = symm_cache.request(SetPressureAnalysis)
        assert sorted(pressure.loop_victims("symm.c:4")) == ALL_SETS


class TestConflictPredictionAnalysis:
    def test_gemm_report(self, gemm_cache):
        report = gemm_cache.request(ConflictPredictionAnalysis).report
        assert report.has_conflicts
        loop = report.loop("gemm.c:33")
        assert loop.has_conflict
        assert sorted(loop.victim_sets) == ALL_SETS
        assert 0.0 < loop.predicted_cf <= 1.0
        # Only implicated structures are listed — the column-walked operand.
        assert {ds.label for ds in loop.data_structures} == {"B"}

    def test_padded_gemm_clean(self):
        report = make_cache(GemmWorkload(n=32, pad_bytes=64)).request(
            ConflictPredictionAnalysis
        ).report
        assert not report.has_conflicts
        assert report.loop("gemm.c:33").predicted_cf == 0.0

    def test_render_declares_zero_trace_accesses(self, gemm_cache):
        rendered = gemm_cache.request(ConflictPredictionAnalysis).report.render()
        assert "trace accesses simulated: 0" in rendered
        assert "gemm.c:33" in rendered

    def test_loops_ranked_by_weight_share(self, symm_cache):
        report = symm_cache.request(ConflictPredictionAnalysis).report
        shares = [loop.weight_share for loop in report.loops]
        assert shares == sorted(shares, reverse=True)
        assert abs(sum(shares) - 1.0) < 1e-9


class TestStaticPaddingAnalysis:
    def test_gemm_advice_targets_the_column_walked_array(self, gemm_cache):
        advice = gemm_cache.request(StaticPaddingAnalysis).advice
        assert advice.needed
        labels = {rec.label for rec in advice.needed}
        assert "B" in labels  # the column-walked operand
        assert all(rec.pad_bytes > 0 for rec in advice.needed)

    def test_clean_workload_gets_no_advice(self):
        advice = make_cache(GemmWorkload(n=32, pad_bytes=64)).request(
            StaticPaddingAnalysis
        ).advice
        assert not advice.recommendations
        assert not advice.needed
        assert "no padding needed" in advice.render()

    def test_pipeline_runs_through_cache_once(self, symm_cache):
        # Requesting the padding pass twice must not re-run the stack.
        runs_before = symm_cache.stats.runs
        symm_cache.request(StaticPaddingAnalysis)
        symm_cache.request(StaticPaddingAnalysis)
        assert symm_cache.stats.runs <= max(runs_before, 4)
