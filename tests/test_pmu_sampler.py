"""Tests for repro.pmu.sampler and repro.pmu.event."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.pmu.event import ALL_LOADS_EVENT, L1_HIT_EVENT, L1_MISS_EVENT
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from tests.conftest import make_load, make_store


def conflict_trace(geometry, lines=16, repeats=100, ip=0x4000):
    """All lines map to set 0: misses on every access after warm-up."""
    for _ in range(repeats):
        for i in range(lines):
            yield make_load(i * geometry.mapping_period, ip=ip)


def resident_trace(repeats=100, ip=0x4000):
    """A single line, re-touched: one miss then all hits."""
    for _ in range(repeats):
        yield make_load(0x1000, ip=ip)


class TestEventSelection:
    def test_l1_miss_event_counts_only_misses(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(1))
        result = sampler.run(resident_trace(100))
        assert result.total_events == 1  # only the cold miss
        assert result.total_accesses == 100

    def test_all_loads_event_counts_everything(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(1), event=ALL_LOADS_EVENT)
        result = sampler.run(resident_trace(100))
        assert result.total_events == 100

    def test_hit_event(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(1), event=L1_HIT_EVENT)
        result = sampler.run(resident_trace(100))
        assert result.total_events == 99

    def test_stores_not_counted_by_load_event(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(1))
        result = sampler.run([make_store(i * 4096) for i in range(10)])
        assert result.total_events == 0
        assert result.total_accesses == 10


class TestSamplingMechanics:
    def test_period_one_samples_every_event(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(1))
        result = sampler.run(conflict_trace(paper_l1, repeats=10))
        assert result.sample_count == result.total_events

    def test_period_n_samples_one_in_n(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(10))
        result = sampler.run(conflict_trace(paper_l1, repeats=50))
        assert result.sample_count == result.total_events // 10

    def test_samples_carry_ip_and_address(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(3))
        result = sampler.run(conflict_trace(paper_l1, repeats=5, ip=0xBEEF))
        assert result.samples
        assert all(sample.ip == 0xBEEF for sample in result.samples)
        assert all(
            sample.address % paper_l1.mapping_period == 0 for sample in result.samples
        )

    def test_event_indices_monotonic(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(7))
        result = sampler.run(conflict_trace(paper_l1, repeats=20))
        indices = [sample.event_index for sample in result.samples]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_deterministic_given_seed(self, paper_l1):
        def run(seed):
            sampler = AddressSampler(paper_l1, period=FixedPeriod(5), seed=seed)
            return sampler.run(conflict_trace(paper_l1, repeats=10)).samples

        assert run(1) == run(1)
        # Fixed periods make seeds irrelevant; sanity-check reproducibility
        # across distinct sampler objects, not RNG difference.
        assert run(1) == run(2)

    def test_effective_period_diagnostic(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(4))
        result = sampler.run(conflict_trace(paper_l1, repeats=25))
        assert result.effective_period == pytest.approx(4, rel=0.05)

    def test_empty_trace(self, paper_l1):
        result = AddressSampler(paper_l1).run([])
        assert result.sample_count == 0
        assert result.total_events == 0
        assert result.effective_period == float("inf")
        assert result.event_rate == 0.0


class TestLossiness:
    def test_sampling_is_a_subsequence_of_events(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(6))
        result, events = sampler.run_with_trace_of_events(
            conflict_trace(paper_l1, repeats=10)
        )
        event_set = set(events)
        assert all(sample in event_set for sample in result.samples)
        assert result.sample_count < len(events)

    def test_full_event_trace_matches_total(self, paper_l1):
        sampler = AddressSampler(paper_l1, period=FixedPeriod(6))
        result, events = sampler.run_with_trace_of_events(
            conflict_trace(paper_l1, repeats=10)
        )
        assert len(events) == result.total_events
