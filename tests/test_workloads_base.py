"""Tests for repro.workloads.base."""

import pytest

from repro.errors import AllocationError
from repro.trace.allocator import VirtualAllocator
from repro.workloads.base import Array1D, Array2D, Array3D


class TestArray1D:
    def test_addressing(self, allocator):
        array = Array1D.allocate(allocator, "v", length=10, elem_size=8)
        assert array.addr(0) == array.allocation.start
        assert array.addr(3) == array.allocation.start + 24

    def test_bounds_checked(self, allocator):
        array = Array1D.allocate(allocator, "v", length=10)
        with pytest.raises(AllocationError):
            array.addr(10)
        with pytest.raises(AllocationError):
            array.addr(-1)


class TestArray2D:
    def test_row_major_addressing(self, allocator):
        array = Array2D.allocate(allocator, "m", rows=4, cols=8, elem_size=8)
        assert array.pitch == 64
        assert array.addr(1, 0) - array.addr(0, 0) == 64
        assert array.addr(0, 1) - array.addr(0, 0) == 8

    def test_padding_widens_pitch(self, allocator):
        array = Array2D.allocate(allocator, "m", rows=4, cols=8, elem_size=8, pad_bytes=32)
        assert array.pitch == 96
        assert array.pad_bytes == 32

    def test_allocation_size_includes_padding(self, allocator):
        array = Array2D.allocate(allocator, "m", rows=4, cols=8, elem_size=8, pad_bytes=32)
        assert array.allocation.size == 4 * 96

    def test_negative_pad_rejected(self, allocator):
        with pytest.raises(AllocationError):
            Array2D.allocate(allocator, "m", rows=2, cols=2, pad_bytes=-1)

    def test_label_recorded(self, allocator):
        array = Array2D.allocate(allocator, "reference", rows=2, cols=2)
        assert allocator.find(array.addr(1, 1)).label == "reference"


class TestArray3D:
    def test_linearization(self, allocator):
        array = Array3D.allocate(allocator, "t", dim0=2, dim1=3, dim2=4, elem_size=8)
        base = array.allocation.start
        assert array.addr(0, 0, 1) - base == 8
        assert array.addr(0, 1, 0) - base == 4 * 8
        assert array.addr(1, 0, 0) - base == 3 * 4 * 8

    def test_dim_padding_changes_plane_stride(self, allocator):
        plain = Array3D.allocate(allocator, "a", dim0=4, dim1=8, dim2=8, elem_size=4)
        padded = Array3D.allocate(
            allocator, "b", dim0=4, dim1=8, dim2=8, elem_size=4, pad1=1, pad2=1
        )
        assert padded.plane_bytes > plain.plane_bytes
        assert plain.plane_bytes == 8 * 8 * 4
        assert padded.plane_bytes == 9 * 9 * 4


class TestWorkloadHelpers:
    def test_l1_stats_and_access_count_agree(self):
        from repro.workloads.symmetrization import SymmetrizationWorkload

        workload = SymmetrizationWorkload(n=16, sweeps=1)
        stats = workload.l1_stats()
        assert stats.accesses == workload.access_count()

    def test_image_is_lazy_and_cached(self):
        from repro.workloads.symmetrization import SymmetrizationWorkload

        workload = SymmetrizationWorkload(n=16)
        assert workload.image is workload.image

    def test_trace_is_replayable(self):
        from repro.workloads.symmetrization import SymmetrizationWorkload

        workload = SymmetrizationWorkload(n=8, sweeps=1)
        first = list(workload.trace())
        second = list(workload.trace())
        assert first == second

    def test_hierarchy_result_default_broadwell(self):
        from repro.workloads.symmetrization import SymmetrizationWorkload

        result = SymmetrizationWorkload(n=16, sweeps=1).hierarchy_result()
        assert [level.name for level in result.levels] == ["L1", "L2", "LLC"]
