"""Tests for repro.core.setmap."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.setmap import SetUsageTimeline
from repro.errors import AnalysisError


class TestBinning:
    def test_window_count(self, paper_l1):
        addresses = [i * 64 for i in range(100)]
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=30)
        assert timeline.windows == 4  # 30+30+30+10

    def test_counts_partitioned(self, paper_l1):
        addresses = [0] * 10 + [64] * 10
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=5)
        assert sum(sum(row) for row in timeline.matrix) == 20

    def test_totals_per_set(self, paper_l1):
        addresses = [0] * 3 + [64] * 7
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=4)
        totals = timeline.totals_per_set()
        assert totals[0] == 3 and totals[1] == 7

    def test_empty(self, paper_l1):
        timeline = SetUsageTimeline.from_addresses([], paper_l1)
        assert timeline.windows == 0
        assert timeline.occupancy() == 0.0
        assert timeline.render_ascii() == "(no samples)"

    def test_bad_window(self, paper_l1):
        with pytest.raises(AnalysisError):
            SetUsageTimeline.from_addresses([0], paper_l1, window=0)


class TestFigure2Signatures:
    def test_column_walk_low_occupancy(self, paper_l1):
        # The unpadded symmetrization column walk: 4 sets per window.
        addresses = []
        for lap in range(16):
            for row in range(128):
                addresses.append(0x100000 + row * 1024)
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=128)
        assert timeline.occupancy() < 0.1
        assert max(timeline.sets_used_per_window()) <= 4

    def test_padded_walk_full_occupancy(self, paper_l1):
        addresses = []
        for lap in range(16):
            for row in range(128):
                addresses.append(0x100000 + row * (1024 + 64))
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=128)
        assert timeline.occupancy() > 0.4
        assert max(timeline.sets_used_per_window()) == paper_l1.num_sets

    def test_moving_victim_visible_over_time(self, paper_l1):
        # Each window uses few sets, but different ones: per-window usage is
        # low while the whole-run histogram balances — the temporal story.
        addresses = []
        for phase in range(64):
            for _ in range(64):
                addresses.append(phase * 64)
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=64)
        assert max(timeline.sets_used_per_window()) <= 2
        totals = timeline.totals_per_set()
        assert min(totals) == max(totals)  # perfectly balanced overall


class TestRendering:
    def test_ascii_shape(self, paper_l1):
        addresses = [i * 64 for i in range(256)]
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=64)
        art = timeline.render_ascii()
        lines = art.splitlines()
        assert lines[0].startswith("sets 0..63")
        body = [line for line in lines[1:]]
        assert all(len(line) == paper_l1.num_sets + 2 for line in body)

    def test_ascii_subsampling(self, paper_l1):
        addresses = [0] * 10_000
        timeline = SetUsageTimeline.from_addresses(addresses, paper_l1, window=10)
        art = timeline.render_ascii(max_windows=8)
        assert len(art.splitlines()) == 9  # header + 8 rows
