"""Tests for repro.stats.distributions."""

import pytest

from repro.errors import ModelError
from repro.stats.distributions import (
    EmpiricalCdf,
    Histogram,
    gini_coefficient,
    summarize,
)


class TestHistogram:
    def test_from_values(self):
        histogram = Histogram.from_values([1, 1, 2, 3])
        assert histogram.total == 4
        assert histogram.frequency(1) == 0.5
        assert histogram.mode() == 1

    def test_add_with_weight(self):
        histogram = Histogram()
        histogram.add(5, weight=3)
        assert histogram.counts[5] == 3

    def test_mean(self):
        histogram = Histogram.from_values([1, 3])
        assert histogram.mean() == 2.0

    def test_empty_mode_and_mean_raise(self):
        histogram = Histogram()
        with pytest.raises(ModelError):
            histogram.mode()
        with pytest.raises(ModelError):
            histogram.mean()

    def test_sorted_items(self):
        histogram = Histogram.from_values([3, 1, 2, 1])
        assert histogram.sorted_items() == [(1, 2), (2, 1), (3, 1)]


class TestEmpiricalCdf:
    def test_monotone_and_normalized(self):
        cdf = EmpiricalCdf.from_values([1, 2, 2, 3, 10])
        assert list(cdf.cumulative) == sorted(cdf.cumulative)
        assert cdf.cumulative[-1] == pytest.approx(1.0)

    def test_probability_at(self):
        cdf = EmpiricalCdf.from_values([1, 2, 2, 3])
        assert cdf.probability_at(0) == 0.0
        assert cdf.probability_at(1) == pytest.approx(0.25)
        assert cdf.probability_at(2) == pytest.approx(0.75)
        assert cdf.probability_at(100) == pytest.approx(1.0)

    def test_probability_between_support_points(self):
        cdf = EmpiricalCdf.from_values([1, 10])
        assert cdf.probability_at(5) == pytest.approx(0.5)

    def test_quantile(self):
        cdf = EmpiricalCdf.from_values([1, 2, 3, 4])
        assert cdf.quantile(0.25) == 1
        assert cdf.quantile(0.5) == 2
        assert cdf.quantile(1.0) == 4

    def test_quantile_range_validation(self):
        cdf = EmpiricalCdf.from_values([1])
        with pytest.raises(ModelError):
            cdf.quantile(0.0)
        with pytest.raises(ModelError):
            cdf.quantile(1.5)

    def test_series_is_plot_ready(self):
        cdf = EmpiricalCdf.from_values([5, 5, 7])
        assert cdf.series() == [(5, pytest.approx(2 / 3)), (7, pytest.approx(1.0))]

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            EmpiricalCdf.from_values([])

    def test_histogram_round_trip(self):
        histogram = Histogram.from_values([1, 2, 2])
        assert histogram.as_cdf().probability_at(1) == pytest.approx(1 / 3)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([10] * 64) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        counts = [0] * 63 + [1000]
        assert gini_coefficient(counts) > 0.95

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            gini_coefficient([])

    def test_monotone_in_concentration(self):
        balanced = gini_coefficient([8, 8, 8, 8])
        skewed = gini_coefficient([2, 2, 2, 26])
        assert skewed > balanced


class TestSummarize:
    def test_keys_and_values(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["median"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["count"] == 3

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            summarize([])
