"""Tests for repro.cache.prefetch."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import GeometryError
from tests.conftest import make_load


def streaming_trace(lines=2048, laps=1):
    for _ in range(laps):
        for i in range(lines):
            yield make_load(i * 64, ip=0x400100)


def conflict_trace(geometry, laps=100):
    for _ in range(laps):
        for i in range(12):
            yield make_load(i * geometry.mapping_period, ip=0x400100)


def plain_miss_ratio(trace, geometry):
    cache = SetAssociativeCache(geometry)
    return cache.run_trace(trace).miss_ratio


class TestNextLine:
    def test_streaming_misses_halved_or_better(self, paper_l1):
        plain = plain_miss_ratio(streaming_trace(), paper_l1)
        prefetching = NextLinePrefetcher(paper_l1, degree=1)
        stats = prefetching.run_trace(streaming_trace())
        assert stats.demand_miss_ratio <= plain / 2 + 0.01

    def test_higher_degree_hides_more(self, paper_l1):
        def ratio(degree):
            cache = NextLinePrefetcher(paper_l1, degree=degree)
            return cache.run_trace(streaming_trace()).demand_miss_ratio

        assert ratio(4) < ratio(1)

    def test_accuracy_high_on_streams(self, paper_l1):
        cache = NextLinePrefetcher(paper_l1, degree=1)
        stats = cache.run_trace(streaming_trace())
        assert stats.accuracy > 0.9

    def test_conflict_thrash_not_hidden(self, paper_l1):
        plain = plain_miss_ratio(conflict_trace(paper_l1), paper_l1)
        cache = NextLinePrefetcher(paper_l1, degree=1)
        stats = cache.run_trace(conflict_trace(paper_l1))
        # The next line of a conflicting access sits in the *next* set:
        # irrelevant to the thrashing set, so demand misses stay ~100%.
        assert plain > 0.95
        assert stats.demand_miss_ratio > 0.9

    def test_bad_degree(self, paper_l1):
        with pytest.raises(GeometryError):
            NextLinePrefetcher(paper_l1, degree=0)


class TestStride:
    def test_strided_walk_covered(self, paper_l1):
        # Non-power-of-two stride: conflict-free but miss-heavy unprefetched.
        def trace():
            for i in range(4096):
                yield make_load(0x100000 + i * 200, ip=0x400200)

        plain = plain_miss_ratio(trace(), paper_l1)
        cache = StridePrefetcher(paper_l1, degree=2)
        stats = cache.run_trace(trace())
        assert stats.demand_miss_ratio < plain / 2

    def test_random_accesses_not_prefetched(self, paper_l1):
        import random

        rng = random.Random(0)

        def trace():
            for _ in range(2000):
                yield make_load(rng.randrange(1 << 24) & ~7, ip=0x400300)

        cache = StridePrefetcher(paper_l1)
        stats = cache.run_trace(trace())
        # No stable stride: the table never arms on random deltas, so any
        # accidental prefetches are few and useless.
        assert stats.accuracy < 0.2

    def test_conflict_fill_traffic_not_reduced(self, paper_l1):
        # A zero-latency stride prefetcher can *relabel* conflict misses as
        # prefetch fills (it runs one step ahead of the thrash), but the
        # fill traffic into the victim set — the thing padding eliminates —
        # is not reduced at all.
        plain = SetAssociativeCache(paper_l1)
        plain_misses = plain.run_trace(conflict_trace(paper_l1, laps=200)).misses
        cache = StridePrefetcher(paper_l1, degree=2)
        stats = cache.run_trace(conflict_trace(paper_l1, laps=200))
        fills = stats.demand_misses + stats.prefetches_issued
        assert fills >= plain_misses

    def test_padding_beats_prefetching_on_conflicts(self, paper_l1):
        # The same 12 lines spread over 12 sets (a "padded" layout): fill
        # traffic collapses to the 12 cold fills; no prefetcher can match
        # that on the folded layout.
        def padded_trace(laps=200):
            for _ in range(laps):
                for i in range(12):
                    yield make_load(
                        i * (paper_l1.mapping_period + paper_l1.line_size),
                        ip=0x400100,
                    )

        padded = SetAssociativeCache(paper_l1)
        padded_misses = padded.run_trace(padded_trace()).misses
        prefetched = StridePrefetcher(paper_l1, degree=2)
        stats = prefetched.run_trace(conflict_trace(paper_l1, laps=200))
        fills = stats.demand_misses + stats.prefetches_issued
        assert padded_misses < fills / 50

    def test_table_capacity_bounded(self, paper_l1):
        cache = StridePrefetcher(paper_l1, table_entries=4)
        for ip in range(100):
            cache.access(ip * 1024, ip=ip)
        assert len(cache._table) <= 4

    def test_validation(self, paper_l1):
        with pytest.raises(GeometryError):
            StridePrefetcher(paper_l1, degree=0)
        with pytest.raises(GeometryError):
            StridePrefetcher(paper_l1, table_entries=0)


class TestStatsAccounting:
    def test_counters_consistent(self, paper_l1):
        cache = NextLinePrefetcher(paper_l1, degree=2)
        stats = cache.run_trace(streaming_trace(lines=512))
        assert stats.demand_accesses == 512
        assert stats.useful_prefetches <= stats.prefetches_issued
        assert stats.demand_misses <= stats.demand_accesses
