"""Tests for repro.workloads.polybench."""

import itertools

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.workloads.polybench import (
    POLYBENCH_KERNELS,
    Fdtd2dWorkload,
    GemmWorkload,
    Jacobi2dWorkload,
    TrmmWorkload,
    TwoMmWorkload,
)

#: Accesses simulated per variant in the conflict checks (full traces of
#: the matmul kernels run to millions; the steady state shows far earlier).
WINDOW = 300_000


def miss_ratio(workload, window=WINDOW):
    cache = SetAssociativeCache(CacheGeometry())
    for access in itertools.islice(workload.trace(), window):
        cache.access(access.address, access.ip)
    return cache.stats.miss_ratio


class TestRegistry:
    def test_five_kernels(self):
        assert set(POLYBENCH_KERNELS) == {"gemm", "2mm", "jacobi-2d", "fdtd-2d", "trmm"}

    @pytest.mark.parametrize("name", sorted(POLYBENCH_KERNELS))
    def test_every_kernel_traces_and_has_loops(self, name):
        workload = POLYBENCH_KERNELS[name](n=16)
        first = next(iter(workload.trace()))
        assert first.address > 0
        function = workload.image.functions[0]
        assert len(workload.image.loop_forest(function.name)) >= 1


class TestConflictStructure:
    def test_gemm_padding_reduces_misses(self):
        original = miss_ratio(GemmWorkload.original(n=128))
        padded = miss_ratio(GemmWorkload.padded(n=128))
        assert padded < 0.5 * original

    def test_trmm_padding_reduces_misses(self):
        original = miss_ratio(TrmmWorkload.original(n=128))
        padded = miss_ratio(TrmmWorkload.padded(n=128))
        assert padded < 0.5 * original

    def test_2mm_padding_reduces_misses(self):
        original = miss_ratio(TwoMmWorkload.original(n=64))
        padded = miss_ratio(TwoMmWorkload.padded(n=64))
        assert padded < original

    def test_jacobi_is_clean_either_way(self):
        original = miss_ratio(Jacobi2dWorkload.original(n=128))
        padded = miss_ratio(Jacobi2dWorkload.padded(n=128))
        # Row-order stencil: miss ratio is already low and padding is a
        # no-op (within cold-miss noise).
        assert original < 0.15
        assert abs(original - padded) < 0.05

    def test_fdtd_is_clean(self):
        assert miss_ratio(Fdtd2dWorkload.original(n=128)) < 0.15

    def test_validation(self):
        for factory in (GemmWorkload, TrmmWorkload):
            with pytest.raises(ValueError):
                factory(n=2)
        with pytest.raises(ValueError):
            Jacobi2dWorkload(n=128, steps=0)


class TestImages:
    def test_gemm_triple_nest_recovered(self):
        workload = GemmWorkload.original(n=16)
        forest = workload.image.loop_forest("kernel_gemm")
        assert forest.max_depth() == 3

    def test_column_walk_ip_attribution(self):
        workload = GemmWorkload.original(n=64)
        cache = SetAssociativeCache(CacheGeometry())
        for access in itertools.islice(workload.trace(), 100_000):
            cache.access(access.address, access.ip)
        top_ip, _ = cache.stats.top_miss_ips(1)[0]
        assert top_ip == workload.ip_inner
