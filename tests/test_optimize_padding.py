"""Tests for repro.workloads.padding and repro.optimize.padding_advisor."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.classifier import Implication
from repro.core.report import ConflictReport, DataStructureReport, LoopReport
from repro.errors import AnalysisError
from repro.optimize.padding_advisor import advise_padding, recommend_pads_for_report
from repro.trace.allocator import VirtualAllocator
from repro.workloads.base import Array2D
from repro.workloads.padding import (
    recommend_row_pad,
    row_set_stride,
    rows_per_set_cycle,
)


class TestPaddingArithmetic:
    def test_aligned_pitch_has_zero_stride(self, paper_l1):
        # 4096-byte pitch: every row starts in the same set.
        assert row_set_stride(4096, paper_l1) == 0.0
        assert rows_per_set_cycle(4096, paper_l1) == 1

    def test_symmetrization_unpadded_cycles_4(self, paper_l1):
        # Figure 2: 128 doubles/row = 1024 B -> 4 distinct row phases.
        assert rows_per_set_cycle(1024, paper_l1) == 4

    def test_symmetrization_padded_cycles_everything(self, paper_l1):
        # With the paper's 64 B pad: pitch 1088, gcd(1088, 4096) = 64.
        assert rows_per_set_cycle(1024 + 64, paper_l1) == 64

    def test_recommend_row_pad_fixes_figure2(self, paper_l1):
        pad = recommend_row_pad(cols=128, elem_size=8, geometry=paper_l1, alignment=64)
        assert pad == 64  # the paper's own choice is the minimal aligned fix

    def test_recommend_row_pad_noop_needs_zero(self, paper_l1):
        # 250 doubles/row = 2000 B: gcd(2000, 4096) = 16 <= line size.
        pad = recommend_row_pad(cols=250, elem_size=8, geometry=paper_l1)
        assert pad == 0

    def test_recommend_validates_input(self, paper_l1):
        with pytest.raises(AnalysisError):
            recommend_row_pad(cols=0, elem_size=8, geometry=paper_l1)


class TestAdvisor:
    def test_aliased_array_gets_pad(self, paper_l1):
        allocator = VirtualAllocator()
        array = Array2D.allocate(allocator, "u", rows=256, cols=512, elem_size=8)
        advice = advise_padding(array, paper_l1)
        assert advice.is_needed
        assert advice.padded_cycle > advice.current_cycle

    def test_pad_actually_fixes_the_cycle(self, paper_l1):
        allocator = VirtualAllocator()
        array = Array2D.allocate(allocator, "u", rows=256, cols=512, elem_size=8)
        advice = advise_padding(array, paper_l1)
        fixed = Array2D.allocate(
            allocator, "u2", rows=256, cols=512, elem_size=8, pad_bytes=advice.pad_bytes
        )
        assert rows_per_set_cycle(fixed.pitch, paper_l1) * paper_l1.line_size >= (
            paper_l1.mapping_period
        )

    def test_healthy_array_no_pad(self, paper_l1):
        allocator = VirtualAllocator()
        array = Array2D.allocate(allocator, "ok", rows=64, cols=250, elem_size=8)
        advice = advise_padding(array, paper_l1)
        assert not advice.is_needed
        assert "no pad needed" in advice.reason


class TestReportDrivenAdvice:
    def _report_with(self, labels):
        loop = LoopReport(
            loop_name="adi.c:45",
            sample_count=100,
            miss_contribution=0.8,
            contribution_factor=0.9,
            sets_utilized=2,
            has_conflict=True,
            implication=Implication.STRONG_CONFLICT,
            data_structures=[DataStructureReport(label, 50, 0.5) for label in labels],
        )
        return ConflictReport(
            workload_name="adi",
            mean_sampling_period=100,
            total_samples=100,
            total_events=1000,
            rcd_threshold=8,
            loops=[loop],
        )

    def test_implicated_arrays_advised(self, paper_l1):
        allocator = VirtualAllocator()
        u = Array2D.allocate(allocator, "u", rows=256, cols=512, elem_size=8)
        advice = recommend_pads_for_report(self._report_with(["u"]), [u], paper_l1)
        assert len(advice) == 1 and advice[0].label == "u" and advice[0].is_needed

    def test_unimplicated_arrays_skipped(self, paper_l1):
        allocator = VirtualAllocator()
        u = Array2D.allocate(allocator, "u", rows=16, cols=512, elem_size=8)
        v = Array2D.allocate(allocator, "v", rows=16, cols=512, elem_size=8)
        advice = recommend_pads_for_report(self._report_with(["u"]), [u, v], paper_l1)
        assert [entry.label for entry in advice] == ["u"]

    def test_unknown_structure_ignored(self, paper_l1):
        advice = recommend_pads_for_report(self._report_with(["scalar"]), [], paper_l1)
        assert advice == []
