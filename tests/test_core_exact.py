"""Tests for repro.core.exact — simulator-mode RCD measurement."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.exact import GLOBAL_CONTEXT, ExactMeasurement, ExactRcdMeasurer
from repro.errors import AnalysisError
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.workloads.tinydnn import TinyDnnFcWorkload
from tests.conftest import make_load


def conflict_trace(geometry, repeats=200, ip=0x400100):
    for _ in range(repeats):
        for i in range(12):
            yield make_load(i * geometry.mapping_period, ip=ip)


class TestGlobalContext:
    def test_miss_counts(self, paper_l1):
        measurement = ExactRcdMeasurer(paper_l1).run(conflict_trace(paper_l1))
        assert measurement.total_accesses == 2400
        assert measurement.total_misses == 2400  # cyclic 12 > 8 ways
        assert measurement.miss_ratio == 1.0

    def test_exact_cf_of_conflict_trace(self, paper_l1):
        measurement = ExactRcdMeasurer(paper_l1).run(conflict_trace(paper_l1))
        assert measurement.contribution() > 0.99

    def test_clean_trace(self, paper_l1):
        trace = [make_load(i * 64) for i in range(2048)] * 3
        measurement = ExactRcdMeasurer(paper_l1).run(iter(trace))
        assert measurement.contribution() < 0.05

    def test_unknown_context(self, paper_l1):
        measurement = ExactRcdMeasurer(paper_l1).run([])
        with pytest.raises(AnalysisError):
            measurement.analysis("ghost")

    def test_empty_trace(self, paper_l1):
        measurement = ExactRcdMeasurer(paper_l1).run([])
        assert measurement.miss_ratio == 0.0
        assert measurement.total_misses == 0


class TestPerLoopContexts:
    def test_workload_contexts_are_loops(self, paper_l1):
        workload = TinyDnnFcWorkload.original(in_size=128, out_size=64)
        measurement = ExactRcdMeasurer(paper_l1).run_workload(workload)
        assert "fully_connected_layer.h:99" in measurement.contexts()

    def test_conflicting_contexts_flagged(self, paper_l1):
        workload = TinyDnnFcWorkload.original(in_size=256, out_size=128)
        measurement = ExactRcdMeasurer(paper_l1).run_workload(workload)
        assert "fully_connected_layer.h:99" in measurement.conflicting_contexts()

    def test_global_context_superset_of_loops(self, paper_l1):
        workload = TinyDnnFcWorkload.original(in_size=128, out_size=64)
        measurement = ExactRcdMeasurer(paper_l1).run_workload(workload)
        loop_misses = sum(
            len(measurement.sequences[name]) for name in measurement.contexts()
        )
        assert loop_misses <= measurement.total_misses


class TestExactVsSampledConsistency:
    """The validation loop of §5.2: the sampled estimate converges on the
    exact measurement as the period shrinks."""

    def test_convergence(self, paper_l1):
        exact = ExactRcdMeasurer(paper_l1).run(conflict_trace(paper_l1, repeats=400))
        truth = exact.contribution()

        def sampled_cf(period):
            from repro.core.contribution import contribution_factor
            from repro.core.rcd import RcdAnalysis

            sampler = AddressSampler(paper_l1, period=FixedPeriod(period))
            result = sampler.run(conflict_trace(paper_l1, repeats=400))
            analysis = RcdAnalysis.from_addresses(
                (s.address for s in result.samples), paper_l1
            )
            return contribution_factor(analysis)

        errors = [abs(sampled_cf(p) - truth) for p in (3, 11, 47)]
        assert errors[0] < 0.05
        # Weakly increasing error with coarser sampling on this pattern.
        assert errors[0] <= errors[-1] + 0.05
