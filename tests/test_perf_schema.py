"""BENCH_*.json schema: round-trips, validation, harness smoke run."""

from __future__ import annotations

import copy
import json

import pytest

from repro.perf.harness import HEADLINE_WORKLOAD, run_benchmark
from repro.perf.schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    load_result,
    result_filename,
    save_result,
    validate_result,
)


def minimal_result() -> dict:
    workload = {
        "name": HEADLINE_WORKLOAD,
        "kind": "cache",
        "accesses": 1000,
        "scalar_seconds": 0.5,
        "batched_seconds": 0.05,
        "scalar_accesses_per_sec": 2000.0,
        "batched_accesses_per_sec": 20000.0,
        "speedup": 10.0,
        "match": True,
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "revision": "abc1234",
        "batch_size": 65536,
        "quick": False,
        "workloads": [workload],
        "headline": {
            "workload": HEADLINE_WORKLOAD,
            "speedup": 10.0,
            "target_speedup": 10.0,
            "target_met": True,
            "all_match": True,
        },
    }


class TestSchema:
    def test_round_trip(self, tmp_path):
        result = minimal_result()
        path = save_result(result, tmp_path)
        assert path.name == "BENCH_abc1234.json"
        assert load_result(path) == result

    def test_result_filename_sanitizes(self):
        assert result_filename("ab/..zz") == "BENCH_ab_..zz.json"
        assert result_filename("") == "BENCH_unknown.json"

    def test_missing_top_field_rejected(self):
        result = minimal_result()
        del result["revision"]
        with pytest.raises(BenchSchemaError, match="revision"):
            validate_result(result)

    def test_missing_workload_field_rejected(self):
        result = minimal_result()
        del result["workloads"][0]["speedup"]
        with pytest.raises(BenchSchemaError, match="speedup"):
            validate_result(result)

    def test_wrong_type_rejected(self):
        result = minimal_result()
        result["workloads"][0]["match"] = "yes"
        with pytest.raises(BenchSchemaError, match="match"):
            validate_result(result)

    def test_bool_is_not_int(self):
        result = minimal_result()
        result["batch_size"] = True
        with pytest.raises(BenchSchemaError, match="batch_size"):
            validate_result(result)

    def test_unknown_schema_version_rejected(self):
        result = minimal_result()
        result["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_result(result)

    def test_empty_workloads_rejected(self):
        result = minimal_result()
        result["workloads"] = []
        with pytest.raises(BenchSchemaError, match="empty"):
            validate_result(result)

    def test_headline_must_reference_a_workload(self):
        result = minimal_result()
        result["headline"]["workload"] = "nope"
        with pytest.raises(BenchSchemaError, match="nope"):
            validate_result(result)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json", encoding="ascii")
        with pytest.raises(BenchSchemaError):
            load_result(path)

    def test_validate_returns_input_unmutated(self):
        result = minimal_result()
        snapshot = copy.deepcopy(result)
        assert validate_result(result) is result
        assert result == snapshot


class TestHarness:
    def test_tiny_run_is_schema_valid_and_matches(self, tmp_path):
        lines = []
        result = run_benchmark(accesses=2000, progress=lines.append)
        validate_result(result)
        # One progress line per workload plus the obs_overhead summary.
        assert len(lines) == len(result["workloads"]) + 1
        assert lines[-1].startswith("obs_overhead ")
        assert "obs_overhead" in result
        assert result["obs_overhead"]["workload"] == HEADLINE_WORKLOAD
        assert result["headline"]["all_match"], "batched engine diverged"
        assert {w["name"] for w in result["workloads"]} >= {
            HEADLINE_WORKLOAD,
            "lru_zipf",
            "lru_uniform",
            "sampler_zipf",
            "exact_rcd",
        }
        path = save_result(result, tmp_path)
        on_disk = json.loads(path.read_text(encoding="ascii"))
        assert on_disk == result

    def test_quick_flag_recorded(self):
        result = run_benchmark(quick=True, accesses=1000)
        assert result["quick"] is True
        assert result["workloads"][0]["accesses"] == 1000
