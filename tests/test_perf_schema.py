"""BENCH_*.json schema: round-trips, v1/v2 validation, harness smoke run."""

from __future__ import annotations

import copy
import json

import pytest

from repro.perf.harness import HEADLINE_WORKLOAD, run_benchmark
from repro.perf.schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    load_result,
    result_filename,
    save_result,
    validate_result,
)


def engine_record(speedup: float = 1.0, **extra) -> dict:
    record = {
        "seconds": 0.5 / speedup,
        "accesses_per_sec": 2000.0 * speedup,
        "speedup": speedup,
        "match": True,
    }
    record.update(extra)
    return record


def minimal_result() -> dict:
    workload = {
        "name": HEADLINE_WORKLOAD,
        "kind": "cache",
        "accesses": 1000,
        "scalar_seconds": 0.5,
        "batched_seconds": 0.05,
        "scalar_accesses_per_sec": 2000.0,
        "batched_accesses_per_sec": 20000.0,
        "speedup": 10.0,
        "match": True,
        "engines": {
            "scalar": engine_record(1.0),
            "batched": engine_record(10.0),
            "sharded": engine_record(25.0, workers=4),
        },
        "min_speedup": 10.0,
        "gate_met": True,
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "revision": "abc1234",
        "batch_size": 65536,
        "quick": False,
        "engine_workers": 4,
        "workloads": [workload],
        "headline": {
            "workload": HEADLINE_WORKLOAD,
            "speedup": 10.0,
            "target_speedup": 10.0,
            "target_met": True,
            "all_match": True,
            "sharded": {
                "workers": 4,
                "speedup_vs_batched": 2.5,
                "target": 2.0,
                "target_met": True,
                "enforced": True,
            },
        },
    }


def minimal_v1_result() -> dict:
    """A pre-engine-matrix artifact, exactly as PR 2 wrote them."""
    return {
        "schema_version": 1,
        "revision": "old1234",
        "batch_size": 65536,
        "quick": False,
        "workloads": [
            {
                "name": HEADLINE_WORKLOAD,
                "kind": "cache",
                "accesses": 1000,
                "scalar_seconds": 0.5,
                "batched_seconds": 0.05,
                "scalar_accesses_per_sec": 2000.0,
                "batched_accesses_per_sec": 20000.0,
                "speedup": 10.0,
                "match": True,
            }
        ],
        "headline": {
            "workload": HEADLINE_WORKLOAD,
            "speedup": 10.0,
            "target_speedup": 10.0,
            "target_met": True,
            "all_match": True,
        },
    }


class TestSchema:
    def test_round_trip(self, tmp_path):
        result = minimal_result()
        path = save_result(result, tmp_path)
        assert path.name == "BENCH_abc1234.json"
        assert load_result(path) == result

    def test_result_filename_sanitizes(self):
        assert result_filename("ab/..zz") == "BENCH_ab_..zz.json"
        assert result_filename("") == "BENCH_unknown.json"

    def test_missing_top_field_rejected(self):
        result = minimal_result()
        del result["revision"]
        with pytest.raises(BenchSchemaError, match="revision"):
            validate_result(result)

    def test_missing_workload_field_rejected(self):
        result = minimal_result()
        del result["workloads"][0]["speedup"]
        with pytest.raises(BenchSchemaError, match="speedup"):
            validate_result(result)

    def test_wrong_type_rejected(self):
        result = minimal_result()
        result["workloads"][0]["match"] = "yes"
        with pytest.raises(BenchSchemaError, match="match"):
            validate_result(result)

    def test_bool_is_not_int(self):
        result = minimal_result()
        result["batch_size"] = True
        with pytest.raises(BenchSchemaError, match="batch_size"):
            validate_result(result)

    def test_unknown_schema_version_rejected(self):
        result = minimal_result()
        result["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_result(result)

    def test_empty_workloads_rejected(self):
        result = minimal_result()
        result["workloads"] = []
        with pytest.raises(BenchSchemaError, match="empty"):
            validate_result(result)

    def test_headline_must_reference_a_workload(self):
        result = minimal_result()
        result["headline"]["workload"] = "nope"
        with pytest.raises(BenchSchemaError, match="nope"):
            validate_result(result)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json", encoding="ascii")
        with pytest.raises(BenchSchemaError):
            load_result(path)

    def test_validate_returns_input_unmutated(self):
        result = minimal_result()
        snapshot = copy.deepcopy(result)
        assert validate_result(result) is result
        assert result == snapshot


class TestSchemaV2:
    def test_v1_artifact_still_accepted(self, tmp_path):
        """Old BENCH files load as-is: the trajectory stays readable."""
        result = minimal_v1_result()
        path = save_result(result, tmp_path)
        assert load_result(path) == result

    def test_v2_requires_engine_workers(self):
        result = minimal_result()
        del result["engine_workers"]
        with pytest.raises(BenchSchemaError, match="engine_workers"):
            validate_result(result)

    def test_v2_requires_engines_map(self):
        result = minimal_result()
        del result["workloads"][0]["engines"]
        with pytest.raises(BenchSchemaError, match="engines"):
            validate_result(result)

    def test_v2_rejects_empty_engines_map(self):
        result = minimal_result()
        result["workloads"][0]["engines"] = {}
        with pytest.raises(BenchSchemaError, match="engines map is empty"):
            validate_result(result)

    def test_v2_engine_record_fields_checked(self):
        result = minimal_result()
        del result["workloads"][0]["engines"]["sharded"]["speedup"]
        with pytest.raises(BenchSchemaError, match=r"engines\['sharded'\]"):
            validate_result(result)

    def test_v2_gate_fields_required(self):
        result = minimal_result()
        del result["workloads"][0]["min_speedup"]
        with pytest.raises(BenchSchemaError, match="min_speedup"):
            validate_result(result)

    def test_sharded_headline_optional_but_checked(self):
        result = minimal_result()
        del result["headline"]["sharded"]
        validate_result(result)  # optional: absent is fine
        result = minimal_result()
        del result["headline"]["sharded"]["enforced"]
        with pytest.raises(BenchSchemaError, match="enforced"):
            validate_result(result)

    def test_ipc_subrecord_accepted(self):
        """v2-with-ipc (post-arena) artifacts validate; the version does
        not bump, so pre-arena v2 files (no ipc anywhere) stay valid —
        which is what every other test in this class exercises."""
        ipc = {
            "bytes_shipped": 131,
            "bytes_mapped": 2752512,
            "bytes_shipped_per_access": 0.04,
        }
        result = minimal_result()
        result["workloads"][0]["engines"]["sharded"]["ipc"] = dict(ipc)
        result["headline"]["sharded"]["ipc"] = dict(ipc)
        validate_result(result)

    def test_ipc_subrecord_fields_checked(self):
        result = minimal_result()
        result["workloads"][0]["engines"]["sharded"]["ipc"] = {
            "bytes_shipped": 131,
            "bytes_mapped": 2752512,
        }
        with pytest.raises(BenchSchemaError, match="bytes_shipped_per_access"):
            validate_result(result)
        result = minimal_result()
        result["headline"]["sharded"]["ipc"] = {
            "bytes_shipped": True,  # bool is not an int here
            "bytes_mapped": 0,
            "bytes_shipped_per_access": 0.0,
        }
        with pytest.raises(BenchSchemaError, match="bytes_shipped"):
            validate_result(result)

    def test_ipc_subrecord_must_be_a_dict(self):
        result = minimal_result()
        result["workloads"][0]["engines"]["sharded"]["ipc"] = 131
        with pytest.raises(BenchSchemaError, match="ipc.*dict"):
            validate_result(result)

    def test_v1_fields_not_required_to_carry_v2_extras(self):
        """A v1-version record with v2 extras is fine; a v2-version
        record missing v1 fields is not (v2 is a superset)."""
        result = minimal_result()
        del result["workloads"][0]["scalar_seconds"]
        with pytest.raises(BenchSchemaError, match="scalar_seconds"):
            validate_result(result)


class TestHarness:
    def test_tiny_run_is_schema_valid_and_matches(self, tmp_path):
        lines = []
        result = run_benchmark(accesses=2000, workers=2, progress=lines.append)
        validate_result(result)
        # One progress line per workload plus the obs_overhead and
        # screening summaries.
        assert len(lines) == len(result["workloads"]) + 2
        assert lines[-2].startswith("obs_overhead ")
        assert lines[-1].startswith("screening ")
        assert "screening" in result
        assert result["screening"]["verdict"] in {"clear", "suspect"}
        assert "obs_overhead" in result
        assert result["obs_overhead"]["workload"] == HEADLINE_WORKLOAD
        assert result["headline"]["all_match"], "an engine diverged"
        assert result["engine_workers"] == 2
        assert {w["name"] for w in result["workloads"]} >= {
            HEADLINE_WORKLOAD,
            "lru_zipf",
            "lru_uniform",
            "sampler_zipf",
            "exact_rcd",
        }
        for workload in result["workloads"]:
            # Every registered backend is in every workload's matrix, and
            # each one matched the scalar reference bit for bit.
            assert set(workload["engines"]) >= {"scalar", "batched", "sharded"}
            assert all(e["match"] for e in workload["engines"].values())
            assert workload["engines"]["scalar"]["speedup"] == pytest.approx(1.0)
            assert workload["engines"]["sharded"]["workers"] == 2
        sharded = result["headline"]["sharded"]
        assert sharded["workers"] == 2
        assert sharded["target"] == 2.0
        # The data plane's transport record rides along on every parallel
        # engine entry and the headline, far under the pipe baseline.
        from repro.perf.harness import PIPE_BASELINE_BYTES_PER_ACCESS

        assert "ipc" in sharded
        assert (
            sharded["ipc"]["bytes_shipped_per_access"]
            < PIPE_BASELINE_BYTES_PER_ACCESS
        )
        for workload in result["workloads"]:
            assert "ipc" in workload["engines"]["sharded"]
        path = save_result(result, tmp_path)
        on_disk = json.loads(path.read_text(encoding="ascii"))
        assert on_disk == result

    def test_quick_flag_recorded(self):
        result = run_benchmark(
            quick=True, accesses=1000, engines=["batched"], workers=1
        )
        assert result["quick"] is True
        assert result["workloads"][0]["accesses"] == 1000
        # Engine selection always folds in the scalar baseline + batched.
        assert set(result["workloads"][0]["engines"]) == {"scalar", "batched"}
        assert "sharded" not in result["headline"]

    def test_unknown_engine_rejected(self):
        from repro.errors import SamplingError

        with pytest.raises(SamplingError, match="warp"):
            run_benchmark(accesses=500, engines=["warp"])
