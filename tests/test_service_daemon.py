"""End-to-end daemon tests over a real unix socket.

Each test spins up a :class:`CCProfService` inside ``asyncio.run`` with an
isolated metrics registry, drives it through raw stream connections (so
protocol-level failures are visible, not hidden behind the client), and
asserts on responses, journal contents, and counters.
"""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.service.admission import AdmissionConfig
from repro.service.daemon import CCProfService, ServiceConfig
from repro.service.journal import JobJournal, JobState
from repro.service.protocol import (
    MAX_LINE_BYTES,
    JobRequest,
    JobResponse,
    JobStatus,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def make_request(**overrides):
    record = dict(
        id="j1", tenant="t", kind="predict", workload="symmetrization",
        params={"n": 48, "sweeps": 1}, period=64,
    )
    record.update(overrides)
    return JobRequest(**record)


def make_blocker(job_id="blocker", **overrides):
    """A profile job slow enough (~0.2s) to pin a worker while a second
    request races it."""
    return make_request(
        id=job_id, kind="profile", workload="nw", params={"n": 96}, **overrides
    )


def make_config(tmp_path, **overrides):
    defaults = dict(
        socket_path=str(tmp_path / "ccprof.sock"),
        workers=2,
        journal_path=str(tmp_path / "jobs.journal"),
        read_timeout=2.0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def submit_raw(socket_path, request):
    """One connection, one request line, one response line."""
    reader, writer = await asyncio.open_unix_connection(socket_path)
    try:
        writer.write(request.encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=60)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return JobResponse.decode(line.rstrip(b"\n"))


def run_service(config, coroutine_fn):
    """Start the daemon, run ``coroutine_fn(service)``, stop cleanly."""

    async def scenario():
        async with CCProfService(config) as service:
            return await coroutine_fn(service)

    return asyncio.run(scenario())


class TestHappyPath:
    def test_predict_job_completes(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(config.socket_path, make_request())

            response = run_service(config, scenario)
        assert response.status == JobStatus.COMPLETED
        assert response.id == "j1" and response.tenant == "t"
        assert response.attempts == 1
        assert response.result  # prediction summary present
        assert registry.counter("service.jobs.completed").value == 1
        # Journal shows the full received -> running -> completed arc.
        records, _ = JobJournal.replay(config.journal_path)
        assert [r.state for r in records] == [
            JobState.RECEIVED, JobState.RUNNING, JobState.COMPLETED,
        ]

    def test_same_id_isolated_across_tenants(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                return await asyncio.gather(
                    submit_raw(config.socket_path, make_request(tenant="alpha")),
                    submit_raw(config.socket_path, make_request(tenant="beta")),
                )

            responses = run_service(config, scenario)
        by_tenant = {r.tenant: r for r in responses}
        assert set(by_tenant) == {"alpha", "beta"}
        assert all(r.status == JobStatus.COMPLETED for r in responses)
        # Tenant-scoped journal keys: ids never collide across tenants.
        records, _ = JobJournal.replay(config.journal_path)
        assert {r.job for r in records} == {"alpha/j1", "beta/j1"}


class TestDegradation:
    def test_saturated_queue_degrades_to_static_prediction(self, tmp_path):
        config = make_config(
            tmp_path,
            admission=AdmissionConfig(
                max_queue_depth=64, tenant_quota=32, degrade_threshold=0.01
            ),
        )
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                return await submit_raw(
                    config.socket_path, make_request(kind="profile")
                )

            response = run_service(config, scenario)
        assert response.status == JobStatus.DEGRADED
        assert response.degraded_reason
        assert "static" in (response.confidence or "")
        assert response.result  # still a usable prediction


class TestDeadlines:
    def test_queue_wait_past_deadline_fails_cleanly(self, tmp_path):
        config = make_config(tmp_path, workers=1)
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                # One slow-ish job pins the single worker; the second job's
                # 1ms deadline expires while it waits in the queue.
                blocker = asyncio.create_task(
                    submit_raw(config.socket_path, make_blocker())
                )
                await asyncio.sleep(0.05)  # let the blocker start running
                victim = await submit_raw(
                    config.socket_path,
                    make_request(id="victim", deadline_ms=1),
                )
                await blocker
                return victim

            response = run_service(config, scenario)
        assert response.status == JobStatus.FAILED
        assert response.error["reason"] == "deadline-exceeded"
        assert response.error["family"] == "service"


class TestWorkerCrashes:
    def test_injected_kill_is_retried_to_success(self, tmp_path):
        config = make_config(
            tmp_path, kill_rate=1.0, kill_max=1, max_attempts=3
        )
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(config.socket_path, make_request())

            response = run_service(config, scenario)
        assert response.status == JobStatus.COMPLETED
        assert response.attempts == 2  # killed once, then succeeded
        assert registry.counter("service.jobs.crashed").value == 1
        assert registry.counter("service.jobs.retried").value == 1
        assert registry.counter("service.jobs.duplicate_resolutions").value == 0
        records, _ = JobJournal.replay(config.journal_path)
        states = [r.state for r in records]
        assert states.count(JobState.CRASHED) == 1
        assert states.count(JobState.COMPLETED) == 1

    def test_exhausted_retries_fail_with_worker_crash(self, tmp_path):
        config = make_config(tmp_path, kill_rate=1.0, max_attempts=2)
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                return await submit_raw(config.socket_path, make_request())

            response = run_service(config, scenario)
        assert response.status == JobStatus.FAILED
        assert response.attempts == 2
        assert response.error["family"] == "service"
        assert response.error["reason"] == "worker-crash"
        # Terminal failure is journaled exactly once.
        records, _ = JobJournal.replay(config.journal_path)
        terminal = [r for r in records if r.state in JobState.TERMINAL]
        assert len(terminal) == 1 and terminal[0].state == JobState.FAILED


class TestRestartRecovery:
    def test_received_jobs_resume_and_running_jobs_fail(self, tmp_path):
        config = make_config(tmp_path)
        # A previous daemon journaled one queued job and one mid-run job,
        # then died.
        journal = JobJournal(config.journal_path)
        queued = make_request(id="queued")
        journal.record(
            "t/queued", "t", JobState.RECEIVED,
            request=queued.to_dict(), degrade=False,
        )
        journal.record("t/inflight", "t", JobState.RECEIVED)
        journal.record("t/inflight", "t", JobState.RUNNING, attempt=1)
        journal.close()

        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                await asyncio.wait_for(service._queue.join(), timeout=60)
                return dict(service.resolved)

            resolved = run_service(config, scenario)
        # The queued job re-ran to completion; the in-flight one could not
        # be trusted and was failed cleanly.
        assert resolved["t/queued"] == JobStatus.COMPLETED
        assert resolved["t/inflight"] == JobStatus.FAILED
        assert registry.counter("service.jobs.resumed").value == 1
        assert registry.counter("service.jobs.recovered_failed").value == 1
        last, _ = JobJournal.recover(config.journal_path)
        assert last["t/queued"].state == JobState.COMPLETED
        assert last["t/inflight"].state == JobState.FAILED
        assert last["t/inflight"].extra["error"] == "daemon-restart"


class TestMisbehavingClients:
    def test_slow_client_is_dropped(self, tmp_path):
        config = make_config(tmp_path, read_timeout=0.2)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                reader, writer = await asyncio.open_unix_connection(
                    config.socket_path
                )
                writer.write(b'{"id": "stall"')  # never finishes the line
                await writer.drain()
                eof = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                return eof

            eof = run_service(config, scenario)
        assert eof == b""  # server hung up on us
        assert registry.counter("service.clients.slow_dropped").value == 1

    def test_oversized_line_rejected(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                reader, writer = await asyncio.open_unix_connection(
                    config.socket_path
                )
                writer.write(b"x" * (MAX_LINE_BYTES + 1024) + b"\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                writer.close()
                return JobResponse.decode(line.rstrip(b"\n"))

            response = run_service(config, scenario)
        assert response.status == JobStatus.REJECTED
        assert "exceeds" in response.error["message"]
        assert registry.counter("service.requests.oversized").value == 1

    def test_malformed_json_rejected_connection_survives(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                reader, writer = await asyncio.open_unix_connection(
                    config.socket_path
                )
                writer.write(b"this is not json\n")
                writer.write(make_request().encode())
                await writer.drain()
                first = JobResponse.decode(
                    (await reader.readline()).rstrip(b"\n")
                )
                second = JobResponse.decode(
                    (await asyncio.wait_for(reader.readline(), timeout=60)).rstrip(b"\n")
                )
                writer.close()
                return first, second

            first, second = run_service(config, scenario)
        assert first.status == JobStatus.REJECTED
        assert first.error["reason"] == "protocol"
        # The same connection still serves the valid follow-up request.
        assert second.status == JobStatus.COMPLETED
        assert registry.counter("service.requests.malformed").value == 1


class TestBackpressure:
    def test_rejection_carries_retry_after(self, tmp_path):
        config = make_config(
            tmp_path,
            workers=1,
            admission=AdmissionConfig(max_queue_depth=64, tenant_quota=1),
        )
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                first = asyncio.create_task(
                    submit_raw(config.socket_path, make_blocker(job_id="a"))
                )
                await asyncio.sleep(0.05)
                over_quota = await submit_raw(
                    config.socket_path, make_request(id="b")
                )
                await first
                return over_quota

            response = run_service(config, scenario)
        assert response.status == JobStatus.REJECTED
        assert response.retry_after_ms >= 1
        assert response.error["reason"] == "admission-rejected"


class TestShutdown:
    def test_stop_fails_queued_jobs_cleanly(self, tmp_path):
        config = make_config(tmp_path, workers=1)
        with use_registry(MetricsRegistry()):
            async def scenario():
                service = CCProfService(config)
                await service.start()
                # Pin the worker, then queue a job we will never run.
                blocker = asyncio.create_task(
                    submit_raw(config.socket_path, make_blocker())
                )
                await asyncio.sleep(0.05)
                victim = asyncio.create_task(
                    submit_raw(
                        config.socket_path, make_blocker(job_id="victim")
                    )
                )
                await asyncio.sleep(0.05)
                await service.stop()
                responses = await asyncio.gather(
                    blocker, victim, return_exceptions=True
                )
                return service, responses

            service, responses = asyncio.run(scenario())
        statuses = sorted(
            r.status for r in responses if isinstance(r, JobResponse)
        )
        # The running job finished in the grace period; the queued one was
        # failed cleanly rather than dropped.
        assert service.resolved["t/blocker"] == JobStatus.COMPLETED
        assert service.resolved["t/victim"] == JobStatus.FAILED
        assert JobStatus.FAILED in statuses or len(responses) == 2
