"""End-to-end daemon tests over a real unix socket.

Each test spins up a :class:`CCProfService` inside ``asyncio.run`` with an
isolated metrics registry, drives it through raw stream connections (so
protocol-level failures are visible, not hidden behind the client), and
asserts on responses, journal contents, and counters.
"""

import asyncio
import threading

import pytest

from repro.errors import ServiceError, WorkerCrashError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.service.admission import AdmissionConfig
from repro.service.daemon import CCProfService, ServiceConfig
from repro.service.executor import JobExecutor
from repro.service.journal import JobJournal, JobState
from repro.service.protocol import (
    MAX_LINE_BYTES,
    JobRequest,
    JobResponse,
    JobStatus,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def make_request(**overrides):
    record = dict(
        id="j1", tenant="t", kind="predict", workload="symmetrization",
        params={"n": 48, "sweeps": 1}, period=64,
    )
    record.update(overrides)
    return JobRequest(**record)


def make_blocker(job_id="blocker", **overrides):
    """A profile job slow enough (~0.2s) to pin a worker while a second
    request races it."""
    return make_request(
        id=job_id, kind="profile", workload="nw", params={"n": 96}, **overrides
    )


def make_config(tmp_path, **overrides):
    defaults = dict(
        socket_path=str(tmp_path / "ccprof.sock"),
        workers=2,
        journal_path=str(tmp_path / "jobs.journal"),
        read_timeout=2.0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def submit_raw(socket_path, request):
    """One connection, one request line, one response line."""
    reader, writer = await asyncio.open_unix_connection(socket_path)
    try:
        writer.write(request.encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=60)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return JobResponse.decode(line.rstrip(b"\n"))


def run_service(config, coroutine_fn):
    """Start the daemon, run ``coroutine_fn(service)``, stop cleanly."""

    async def scenario():
        async with CCProfService(config) as service:
            return await coroutine_fn(service)

    return asyncio.run(scenario())


class TestHappyPath:
    def test_predict_job_completes(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(config.socket_path, make_request())

            response = run_service(config, scenario)
        assert response.status == JobStatus.COMPLETED
        assert response.id == "j1" and response.tenant == "t"
        assert response.attempts == 1
        assert response.result  # prediction summary present
        assert registry.counter("service.jobs.completed").value == 1
        # Journal shows the full received -> running -> completed arc.
        records, _ = JobJournal.replay(config.journal_path)
        assert [r.state for r in records] == [
            JobState.RECEIVED, JobState.RUNNING, JobState.COMPLETED,
        ]

    def test_reused_job_id_resolves_again(self, tmp_path):
        # A tenant reusing an id on a later connection (e.g. the CLI's
        # default id submitted twice) is a fresh job, not a duplicate:
        # the second submission must resolve and release its quota slot.
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                first = await submit_raw(config.socket_path, make_request())
                second = await submit_raw(config.socket_path, make_request())
                return (
                    first,
                    second,
                    service.admission.tenant_load("t"),
                    service.admission.running,
                )

            first, second, load, running = run_service(config, scenario)
        assert first.status == JobStatus.COMPLETED
        assert second.status == JobStatus.COMPLETED
        assert (load, running) == (0, 0)  # no leaked quota or run slots
        assert registry.counter("service.jobs.completed").value == 2
        assert registry.counter("service.jobs.duplicate_resolutions").value == 0

    def test_same_id_isolated_across_tenants(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                return await asyncio.gather(
                    submit_raw(config.socket_path, make_request(tenant="alpha")),
                    submit_raw(config.socket_path, make_request(tenant="beta")),
                )

            responses = run_service(config, scenario)
        by_tenant = {r.tenant: r for r in responses}
        assert set(by_tenant) == {"alpha", "beta"}
        assert all(r.status == JobStatus.COMPLETED for r in responses)
        # Tenant-scoped journal keys: ids never collide across tenants.
        records, _ = JobJournal.replay(config.journal_path)
        assert {r.job for r in records} == {"alpha/j1", "beta/j1"}


class TestDegradation:
    def test_saturated_queue_degrades_to_static_prediction(self, tmp_path):
        config = make_config(
            tmp_path,
            admission=AdmissionConfig(
                max_queue_depth=64, tenant_quota=32, degrade_threshold=0.01
            ),
        )
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                return await submit_raw(
                    config.socket_path, make_request(kind="profile")
                )

            response = run_service(config, scenario)
        assert response.status == JobStatus.DEGRADED
        assert response.degraded_reason
        assert "static" in (response.confidence or "")
        assert response.result  # still a usable prediction


class TestDeadlines:
    def test_queue_wait_past_deadline_fails_cleanly(self, tmp_path):
        config = make_config(tmp_path, workers=1)
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                # One slow-ish job pins the single worker; the second job's
                # 1ms deadline expires while it waits in the queue.
                blocker = asyncio.create_task(
                    submit_raw(config.socket_path, make_blocker())
                )
                await asyncio.sleep(0.05)  # let the blocker start running
                victim = await submit_raw(
                    config.socket_path,
                    make_request(id="victim", deadline_ms=1),
                )
                await blocker
                return victim

            response = run_service(config, scenario)
        assert response.status == JobStatus.FAILED
        assert response.error["reason"] == "deadline-exceeded"
        assert response.error["family"] == "service"


class TestWorkerCrashes:
    def test_injected_kill_is_retried_to_success(self, tmp_path):
        config = make_config(
            tmp_path, kill_rate=1.0, kill_max=1, max_attempts=3
        )
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(config.socket_path, make_request())

            response = run_service(config, scenario)
        assert response.status == JobStatus.COMPLETED
        assert response.attempts == 2  # killed once, then succeeded
        assert registry.counter("service.jobs.crashed").value == 1
        assert registry.counter("service.jobs.retried").value == 1
        assert registry.counter("service.jobs.duplicate_resolutions").value == 0
        records, _ = JobJournal.replay(config.journal_path)
        states = [r.state for r in records]
        assert states.count(JobState.CRASHED) == 1
        assert states.count(JobState.COMPLETED) == 1

    def test_exhausted_retries_fail_with_worker_crash(self, tmp_path):
        config = make_config(tmp_path, kill_rate=1.0, max_attempts=2)
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                return await submit_raw(config.socket_path, make_request())

            response = run_service(config, scenario)
        assert response.status == JobStatus.FAILED
        assert response.attempts == 2
        assert response.error["family"] == "service"
        assert response.error["reason"] == "worker-crash"
        # Terminal failure is journaled exactly once.
        records, _ = JobJournal.replay(config.journal_path)
        terminal = [r for r in records if r.state in JobState.TERMINAL]
        assert len(terminal) == 1 and terminal[0].state == JobState.FAILED


class TestRestartRecovery:
    def test_received_jobs_resume_and_running_jobs_fail(self, tmp_path):
        config = make_config(tmp_path)
        # A previous daemon journaled one queued job and one mid-run job,
        # then died.
        journal = JobJournal(config.journal_path)
        queued = make_request(id="queued")
        journal.record(
            "t/queued", "t", JobState.RECEIVED,
            request=queued.to_dict(), degrade=False,
        )
        journal.record("t/inflight", "t", JobState.RECEIVED)
        journal.record("t/inflight", "t", JobState.RUNNING, attempt=1)
        journal.close()

        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                await asyncio.wait_for(service._queue.join(), timeout=60)
                return dict(service.resolved)

            resolved = run_service(config, scenario)
        # The queued job re-ran to completion; the in-flight one could not
        # be trusted and was failed cleanly.
        assert resolved["t/queued"] == JobStatus.COMPLETED
        assert resolved["t/inflight"] == JobStatus.FAILED
        assert registry.counter("service.jobs.resumed").value == 1
        assert registry.counter("service.jobs.recovered_failed").value == 1
        last, _ = JobJournal.recover(config.journal_path)
        assert last["t/queued"].state == JobState.COMPLETED
        assert last["t/inflight"].state == JobState.FAILED
        assert last["t/inflight"].extra["error"] == "daemon-restart"

    def test_resumed_jobs_charge_tenant_quota(self, tmp_path):
        # Recovery must charge the tenant like admit() does, so the
        # resumed job's completion releases a slot it actually holds.
        config = make_config(tmp_path)
        journal = JobJournal(config.journal_path)
        journal.record(
            "t/queued", "t", JobState.RECEIVED,
            request=make_request(id="queued").to_dict(), degrade=False,
        )
        journal.close()

        with use_registry(MetricsRegistry()):
            async def scenario():
                service = CCProfService(config)
                service._recover_previous_run()
                charged = (
                    service.admission.queued,
                    service.admission.tenant_load("t"),
                )
                # Drain the resumed job by hand (no workers started) and
                # check the counters come back to zero, not negative.
                job = service._queue.get_nowait()
                service.admission.job_started()
                service._resolve_failed(job, ServiceError("test drain"))
                released = (
                    service.admission.queued,
                    service.admission.tenant_load("t"),
                    service.admission.running,
                )
                if service.journal is not None:
                    service.journal.close()
                return charged, released

            charged, released = asyncio.run(scenario())
        assert charged == (1, 1)
        assert released == (0, 0, 0)


class TestMisbehavingClients:
    def test_slow_client_is_dropped(self, tmp_path):
        config = make_config(tmp_path, read_timeout=0.2)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                reader, writer = await asyncio.open_unix_connection(
                    config.socket_path
                )
                writer.write(b'{"id": "stall"')  # never finishes the line
                await writer.drain()
                eof = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                return eof

            eof = run_service(config, scenario)
        assert eof == b""  # server hung up on us
        assert registry.counter("service.clients.slow_dropped").value == 1

    def test_oversized_line_rejected(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                reader, writer = await asyncio.open_unix_connection(
                    config.socket_path
                )
                writer.write(b"x" * (MAX_LINE_BYTES + 1024) + b"\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                writer.close()
                return JobResponse.decode(line.rstrip(b"\n"))

            response = run_service(config, scenario)
        assert response.status == JobStatus.REJECTED
        assert "exceeds" in response.error["message"]
        assert registry.counter("service.requests.oversized").value == 1

    def test_malformed_json_rejected_connection_survives(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                reader, writer = await asyncio.open_unix_connection(
                    config.socket_path
                )
                writer.write(b"this is not json\n")
                writer.write(make_request().encode())
                await writer.drain()
                first = JobResponse.decode(
                    (await reader.readline()).rstrip(b"\n")
                )
                second = JobResponse.decode(
                    (await asyncio.wait_for(reader.readline(), timeout=60)).rstrip(b"\n")
                )
                writer.close()
                return first, second

            first, second = run_service(config, scenario)
        assert first.status == JobStatus.REJECTED
        assert first.error["reason"] == "protocol"
        # The same connection still serves the valid follow-up request.
        assert second.status == JobStatus.COMPLETED
        assert registry.counter("service.requests.malformed").value == 1


class TestBackpressure:
    def test_rejection_carries_retry_after(self, tmp_path):
        config = make_config(
            tmp_path,
            workers=1,
            admission=AdmissionConfig(max_queue_depth=64, tenant_quota=1),
        )
        with use_registry(MetricsRegistry()):
            async def scenario(service):
                first = asyncio.create_task(
                    submit_raw(config.socket_path, make_blocker(job_id="a"))
                )
                await asyncio.sleep(0.05)
                over_quota = await submit_raw(
                    config.socket_path, make_request(id="b")
                )
                await first
                return over_quota

            response = run_service(config, scenario)
        assert response.status == JobStatus.REJECTED
        assert response.retry_after_ms >= 1
        assert response.error["reason"] == "admission-rejected"


class _RecordingWriter:
    """Stands in for a StreamWriter so _write can be tested directly."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        pass


class TestOversizedResponses:
    def test_oversized_result_answered_with_minimal_failure(self):
        # A result too big for one wire line must still produce *an*
        # answer — a minimal failure — not a silently dropped reply that
        # leaves the client waiting out the read timeout.
        big = JobResponse(
            id="big", tenant="t", status=JobStatus.COMPLETED,
            result={"blob": "x" * (MAX_LINE_BYTES + 1)},
        )
        with use_registry(MetricsRegistry()) as registry:
            async def scenario():
                writer = _RecordingWriter()
                await CCProfService._write(writer, asyncio.Lock(), big)
                return writer.chunks

            chunks = asyncio.run(scenario())
        assert len(chunks) == 1
        reply = JobResponse.decode(chunks[0].rstrip(b"\n"))
        assert reply.status == JobStatus.FAILED
        assert reply.id == "big" and reply.tenant == "t"
        assert reply.error["family"] == "service"
        assert reply.error["reason"] == "oversized-response"
        assert registry.counter("service.responses.oversized").value == 1


class _CrashOnReleaseExecutor(JobExecutor):
    """Blocks in execute() until released, then crashes — lets a test
    stage a worker crash inside the shutdown grace window."""

    def __init__(self):
        super().__init__()
        self.started = threading.Event()
        self.release = threading.Event()

    def execute(self, request, *, degrade=False):
        self.started.set()
        if not self.release.wait(timeout=30):
            raise WorkerCrashError("release never came")
        raise WorkerCrashError("injected crash during shutdown")


class TestShutdown:
    def test_crash_during_shutdown_resolves_instead_of_requeueing(
        self, tmp_path
    ):
        # A job that crashes while stop() is waiting out the grace period
        # must not be requeued (workers are about to be cancelled): it is
        # failed cleanly, so it still resolves exactly once and stop()
        # returns without burning the full grace loop.
        config = make_config(tmp_path, workers=1, max_attempts=3)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario():
                executor = _CrashOnReleaseExecutor()
                service = CCProfService(config, executor=executor)
                await service.start()
                pending = asyncio.create_task(
                    submit_raw(config.socket_path, make_request())
                )
                await asyncio.to_thread(executor.started.wait, 10)
                stop_task = asyncio.create_task(service.stop())
                await asyncio.sleep(0.05)  # stop() has drained the queue
                executor.release.set()  # crash lands in the grace window
                await asyncio.wait_for(stop_task, timeout=5)
                response = await asyncio.wait_for(pending, timeout=5)
                return service, response

            service, response = asyncio.run(scenario())
        assert response.status == JobStatus.FAILED
        assert response.error["family"] == "service"
        assert "shutting down" in response.error["message"]
        assert service.resolved["t/j1"] == JobStatus.FAILED
        assert service.admission.running == 0
        assert registry.counter("service.jobs.retried").value == 0
        assert registry.counter("service.jobs.duplicate_resolutions").value == 0

    def test_stop_fails_queued_jobs_cleanly(self, tmp_path):
        config = make_config(tmp_path, workers=1)
        with use_registry(MetricsRegistry()):
            async def scenario():
                service = CCProfService(config)
                await service.start()
                # Pin the worker, then queue a job we will never run.
                blocker = asyncio.create_task(
                    submit_raw(config.socket_path, make_blocker())
                )
                await asyncio.sleep(0.05)
                victim = asyncio.create_task(
                    submit_raw(
                        config.socket_path, make_blocker(job_id="victim")
                    )
                )
                await asyncio.sleep(0.05)
                await service.stop()
                responses = await asyncio.gather(
                    blocker, victim, return_exceptions=True
                )
                return service, responses

            service, responses = asyncio.run(scenario())
        statuses = sorted(
            r.status for r in responses if isinstance(r, JobResponse)
        )
        # The running job finished in the grace period; the queued one was
        # failed cleanly rather than dropped.
        assert service.resolved["t/blocker"] == JobStatus.COMPLETED
        assert service.resolved["t/victim"] == JobStatus.FAILED
        assert JobStatus.FAILED in statuses or len(responses) == 2


class TestEngineSelection:
    """Profile jobs carry an engine field, validated against the registry."""

    def test_profile_job_with_explicit_engine(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(
                    config.socket_path,
                    make_request(
                        kind="profile", engine="scalar", deadline_ms=60_000
                    ),
                )

            response = run_service(config, scenario)
        assert response.status == JobStatus.COMPLETED
        # The backend mix is visible in the daemon's telemetry.
        assert registry.counter("service.engine.scalar").value == 1
        assert registry.counter("service.engine.batched").value == 0

    def test_profile_job_defaults_to_batched(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(
                    config.socket_path,
                    make_request(kind="profile", deadline_ms=60_000),
                )

            response = run_service(config, scenario)
        assert response.status == JobStatus.COMPLETED
        assert registry.counter("service.engine.batched").value == 1

    def test_unknown_engine_fails_cleanly(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(
                    config.socket_path,
                    make_request(kind="profile", engine="warp"),
                )

            response = run_service(config, scenario)
        assert response.status == JobStatus.FAILED
        assert response.error is not None
        assert response.error["family"] == "sampling"
        assert "warp" in response.error["message"]
        # The job resolved exactly once and released its slots.
        assert registry.counter("service.jobs.failed").value == 1


class TestWindowedJobs:
    """profile jobs with a streaming window attach a wire timeline."""

    def windowed_request(self, **overrides):
        record = dict(
            kind="profile", workload="gemm", params={"n": 64},
            period=97, window=64,
        )
        record.update(overrides)
        return make_request(**record)

    def test_profile_with_window_returns_timeline(self):
        with use_registry(MetricsRegistry()) as registry:
            result = JobExecutor().execute(self.windowed_request())
        assert result.status == JobStatus.COMPLETED
        timeline = result.result["timeline"]
        assert timeline["version"] == 1
        assert timeline["window"] == 64
        assert timeline["total_samples"] == result.result["samples"]
        completed = registry.counter("service.jobs.window.completed").value
        assert completed >= len(timeline["windows"]) > 0

    def test_window_conflict_telemetry(self):
        with use_registry(MetricsRegistry()) as registry:
            result = JobExecutor().execute(self.windowed_request())
        conflicts = sum(
            1 for w in result.result["timeline"]["windows"] if w["conflict"]
        )
        counted = registry.counter("service.jobs.window.conflicts").value
        assert counted >= conflicts

    def test_timeline_fits_the_wire(self):
        # A long-running profile must still encode under MAX_LINE_BYTES:
        # the executor coalesces wire timelines far below the line cap.
        from repro.service.protocol import JobResponse

        with use_registry(MetricsRegistry()):
            result = JobExecutor().execute(
                self.windowed_request(window=1)  # worst case: 1 window/sample
            )
        response = JobResponse(
            id="j1", tenant="t", status=result.status, result=result.result
        )
        assert len(response.encode()) < 64 * 1024
        assert len(result.result["timeline"]["windows"]) <= 64

    def test_profile_without_window_has_no_timeline(self):
        with use_registry(MetricsRegistry()):
            result = JobExecutor().execute(
                make_request(kind="profile", workload="gemm",
                             params={"n": 64}, period=97)
            )
        assert "timeline" not in result.result

    def test_daemon_round_trips_windowed_profile(self, tmp_path):
        config = make_config(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            async def scenario(service):
                return await submit_raw(
                    config.socket_path, self.windowed_request()
                )

            response = run_service(config, scenario)
        assert response.status == JobStatus.COMPLETED
        assert response.result["timeline"]["windows"]
        assert registry.counter("service.jobs.window.completed").value > 0
