"""Tests for repro.service.journal (crash-safe write-ahead job log)."""

import pytest

from repro.errors import JournalError
from repro.service.journal import JobJournal, JobState, JournalStats


def fixed_clock():
    return 1700000000.0


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path, clock=fixed_clock)
        journal.record("t/j1", "t", JobState.RECEIVED, degrade=False)
        journal.record("t/j1", "t", JobState.RUNNING, attempt=1)
        journal.record("t/j1", "t", JobState.COMPLETED, status="completed")
        journal.close()
        records, stats = JobJournal.replay(path)
        assert [r.state for r in records] == [
            "received", "running", "completed",
        ]
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[0].extra == {"degrade": False}
        assert not stats.salvaged

    def test_sequence_continues_across_reopen(self, tmp_path):
        path = tmp_path / "jobs.journal"
        JobJournal(path).record("t/j1", "t", JobState.RECEIVED)
        journal = JobJournal(path)  # new process, same file
        entry = journal.record("t/j2", "t", JobState.RECEIVED)
        assert entry.seq == 2

    def test_unknown_state_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        with pytest.raises(JournalError, match="unknown journal state"):
            journal.record("t/j1", "t", "vaporized")

    def test_empty_file_replays_empty(self, tmp_path):
        path = tmp_path / "empty"
        path.write_text("")
        records, stats = JobJournal.replay(path)
        assert records == [] and not stats.salvaged

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("NOT-A-JOURNAL\n")
        with pytest.raises(JournalError, match="magic"):
            JobJournal.replay(path)


class TestTornWrites:
    def _journal(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.record("t/j1", "t", JobState.RECEIVED)
        journal.record("t/j1", "t", JobState.RUNNING)
        journal.close()
        return path

    def test_missing_final_newline_quarantined(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('deadbeef {"torn": tru')  # killed mid-write
        records, stats = JobJournal.replay(path)
        assert [r.state for r in records] == ["received", "running"]
        assert stats.truncated_tail and stats.salvaged

    def test_crc_mismatch_on_final_line_quarantined(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('00000000 {"seq":3,"job":"x"}\n')
        records, stats = JobJournal.replay(path)
        assert len(records) == 2
        assert stats.records_quarantined == 1
        assert stats.truncated_tail

    def test_mid_file_damage_quarantines_only_that_record(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = "garbage " + lines[1][40:]  # corrupt record 1, keep 2
        path.write_text("\n".join(lines) + "\n")
        records, stats = JobJournal.replay(path)
        assert [r.state for r in records] == ["running"]
        assert stats.records_quarantined == 1
        assert not stats.truncated_tail  # damage was not at the tail

    def test_append_after_torn_tail_continues_sequence(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("deadbeef torn")
        journal = JobJournal(path)
        entry = journal.record("t/j2", "t", JobState.RECEIVED)
        assert entry.seq == 3  # continues from the intact prefix


class TestRecovery:
    def test_unresolved_reports_non_terminal_jobs(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.record("t/done", "t", JobState.RECEIVED)
        journal.record("t/done", "t", JobState.COMPLETED)
        journal.record("t/queued", "t", JobState.RECEIVED)
        journal.record("t/inflight", "t", JobState.RUNNING)
        journal.record("t/crashed", "t", JobState.CRASHED)
        journal.close()
        unresolved = JobJournal.unresolved(path)
        assert set(unresolved) == {"t/queued", "t/inflight", "t/crashed"}
        assert unresolved["t/queued"].state == JobState.RECEIVED

    def test_recover_keeps_last_state_per_job(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.record("t/j1", "t", JobState.RECEIVED)
        journal.record("t/j1", "t", JobState.RUNNING)
        journal.record("t/j1", "t", JobState.DEGRADED)
        journal.close()
        last, _ = JobJournal.recover(path)
        assert last["t/j1"].state == JobState.DEGRADED

    def test_stats_salvaged_property(self):
        assert not JournalStats().salvaged
        assert JournalStats(records_quarantined=1).salvaged
        assert JournalStats(truncated_tail=True).salvaged
