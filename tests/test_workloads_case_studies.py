"""Tests for the six case-study workloads (small configurations).

Each test asserts the *paper's shape*: the original variant suffers more L1
misses than the optimized one, and the access patterns carry the documented
conflict signatures.
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.workloads.adi import AdiWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.himeno import HimenoWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.symmetrization import SymmetrizationWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload


def l1_misses(workload):
    return workload.l1_stats().misses


class TestSymmetrization:
    def test_padding_reduces_misses_substantially(self):
        original = l1_misses(SymmetrizationWorkload.original(n=128, sweeps=2))
        padded = l1_misses(SymmetrizationWorkload.padded(n=128, sweeps=2))
        assert padded < original * 0.5  # paper: up to 91.4% at L2

    def test_column_walk_is_the_culprit(self, paper_l1):
        workload = SymmetrizationWorkload.original(n=128, sweeps=1)
        cache = SetAssociativeCache(paper_l1)
        cache.run_trace(workload.trace())
        misses_by_ip = cache.stats.ip_misses
        assert misses_by_ip[workload.ip_col] > 2 * misses_by_ip[workload.ip_row]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SymmetrizationWorkload(n=0)


class TestNeedlemanWunsch:
    def test_padding_reduces_misses(self):
        original = l1_misses(NeedlemanWunschWorkload.original(n=128))
        padded = l1_misses(NeedlemanWunschWorkload.padded(n=128))
        assert padded < original

    def test_eleven_table4_loops_declared(self):
        workload = NeedlemanWunschWorkload.original(n=64)
        for line in (128, 138, 147, 159, 189, 199, 208, 220, 273, 289, 320):
            assert workload.loop_name(line) == f"needle.cpp:{line}"
        with pytest.raises(KeyError):
            workload.loop_name(999)

    def test_matrices_adjacent_on_heap(self):
        workload = NeedlemanWunschWorkload.original(n=64)
        reference = workload.allocator.by_label("reference")
        itemsets = workload.allocator.by_label("input_itemsets")
        assert itemsets.start - reference.end < 64  # alignment slack only

    def test_tile_size_constraint(self):
        with pytest.raises(ValueError, match="multiple"):
            NeedlemanWunschWorkload(n=100)


class TestAdi:
    def test_padding_reduces_misses(self):
        original = l1_misses(AdiWorkload.original(n=128))
        padded = l1_misses(AdiWorkload.padded(n=128))
        assert padded < original

    def test_power_of_two_pitch_aliases(self, paper_l1):
        workload = AdiWorkload.original(n=128)
        # 128 doubles = 1024 B pitch: rows cycle only 4 of 64 sets.
        assert workload.u.pitch == 1024
        assert workload.u.pitch * 4 % paper_l1.mapping_period == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdiWorkload(n=2)


class TestFft:
    def test_padding_reduces_misses(self):
        original = l1_misses(Fft2dWorkload.original(n=64))
        padded = l1_misses(Fft2dWorkload.padded(n=64))
        assert padded < original * 0.5

    def test_anonymous_image(self):
        workload = Fft2dWorkload.original(n=16)
        function = workload.image.function_named("mkl_fft2d")
        assert function.locations == {}

    def test_loop_names_are_anonymous_blocks(self):
        from repro.program.symbols import Symbolizer

        workload = Fft2dWorkload.original(n=16)
        info = Symbolizer(workload.image).resolve(workload.ip_col)
        assert info.loop_name.startswith("mkl_fft2d@0x")

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            Fft2dWorkload(n=96)


class TestTinyDnn:
    def test_padding_reduces_misses(self):
        original = l1_misses(TinyDnnFcWorkload.original(in_size=256, out_size=128))
        padded = l1_misses(TinyDnnFcWorkload.padded(in_size=256, out_size=128))
        assert padded < original

    def test_weight_walk_dominates_misses(self, paper_l1):
        workload = TinyDnnFcWorkload.original(in_size=256, out_size=128)
        cache = SetAssociativeCache(paper_l1)
        cache.run_trace(workload.trace())
        top_ip, _count = cache.stats.top_miss_ips(1)[0]
        assert top_ip == workload.ip_mac

    def test_validation(self):
        with pytest.raises(ValueError):
            TinyDnnFcWorkload(in_size=0)


class TestKripke:
    def test_row_order_transform_reduces_misses(self):
        original = l1_misses(KripkeWorkload.original(zones=64, sweeps=1))
        optimized = l1_misses(KripkeWorkload.optimized(zones=64, sweeps=1))
        assert optimized < original * 0.5  # paper: 94.6x speedup territory

    def test_column_order_psi_stride_aliases(self, paper_l1):
        workload = KripkeWorkload.original()
        g_stride = workload.psi.addr(1, 0, 0) - workload.psi.addr(0, 0, 0)
        assert g_stride % paper_l1.mapping_period == 0

    def test_same_access_count_both_orders(self):
        original = KripkeWorkload.original(zones=16, sweeps=1)
        optimized = KripkeWorkload.optimized(zones=16, sweeps=1)
        # The transform reorders, it does not change psi work.
        assert (
            sum(1 for a in original.trace() if a.ip == original.ip_psi)
            == sum(1 for a in optimized.trace() if a.ip == optimized.ip_psi)
        )


class TestHimeno:
    def test_dimension_padding_reduces_misses(self):
        original = l1_misses(HimenoWorkload.original(dims=(16, 16, 16)))
        padded = l1_misses(HimenoWorkload.padded(dims=(16, 16, 16)))
        assert padded < original

    def test_planes_alias_without_padding(self, paper_l1):
        workload = HimenoWorkload.original(dims=(16, 32, 32))
        assert workload.a.addr(1, 0, 0, 0) - workload.a.addr(0, 0, 0, 0) == (
            16 * 32 * 32 * 4
        )
        assert (16 * 32 * 32 * 4) % paper_l1.mapping_period == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HimenoWorkload(dims=(2, 2, 2))
