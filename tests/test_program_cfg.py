"""Tests for repro.program.cfg."""

import random

import pytest

from repro.errors import ProgramImageError
from repro.program.builder import ImageBuilder
from repro.program.cfg import BasicBlock, ControlFlowGraph


def diamond() -> ControlFlowGraph:
    """entry -> {left, right} -> join."""
    cfg = ControlFlowGraph()
    for _ in range(4):
        cfg.new_block()
    cfg.entry = 0
    cfg.add_edge(0, 1)
    cfg.add_edge(0, 2)
    cfg.add_edge(1, 3)
    cfg.add_edge(2, 3)
    return cfg


class TestConstruction:
    def test_new_block_assigns_dense_ids(self):
        cfg = ControlFlowGraph()
        assert cfg.new_block().block_id == 0
        assert cfg.new_block().block_id == 1

    def test_duplicate_id_rejected(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock(5))
        with pytest.raises(ProgramImageError, match="duplicate"):
            cfg.add_block(BasicBlock(5))

    def test_edge_to_unknown_block_rejected(self):
        cfg = ControlFlowGraph()
        cfg.new_block()
        with pytest.raises(ProgramImageError, match="unknown block"):
            cfg.add_edge(0, 99)

    def test_duplicate_edge_ignored(self):
        cfg = diamond()
        cfg.add_edge(0, 1)
        assert list(cfg.successors(0)).count(1) == 1

    def test_block_lookup_missing(self):
        cfg = ControlFlowGraph()
        with pytest.raises(ProgramImageError):
            cfg.block(3)

    def test_bad_ip_range_rejected(self):
        with pytest.raises(ProgramImageError, match="precedes"):
            BasicBlock(0, start_ip=10, end_ip=5)


class TestTopology:
    def test_successors_and_predecessors(self):
        cfg = diamond()
        assert set(cfg.successors(0)) == {1, 2}
        assert set(cfg.predecessors(3)) == {1, 2}

    def test_len_iter_contains(self):
        cfg = diamond()
        assert len(cfg) == 4
        assert 0 in cfg and 9 not in cfg
        assert {block.block_id for block in cfg} == {0, 1, 2, 3}

    def test_validate_accepts_diamond(self):
        diamond().validate()

    def test_validate_rejects_missing_entry(self):
        cfg = ControlFlowGraph()
        cfg.new_block()
        cfg.entry = 42
        with pytest.raises(ProgramImageError, match="entry"):
            cfg.validate()


class TestOrders:
    def test_dfs_preorder_starts_at_entry(self):
        order, number = diamond().depth_first_order()
        assert order[0] == 0
        assert number[0] == 0
        assert len(order) == 4

    def test_rpo_entry_first_join_last(self):
        rpo = diamond().reverse_postorder()
        assert rpo[0] == 0
        assert rpo[-1] == 3

    def test_unreachable_blocks_excluded(self):
        cfg = diamond()
        cfg.new_block()  # block 4, unreachable
        assert 4 not in cfg.reachable_blocks()
        assert 4 not in cfg.reverse_postorder()

    def test_rpo_respects_dependencies(self):
        # In any RPO of a DAG, a node precedes all its successors.
        cfg = diamond()
        rpo = cfg.reverse_postorder()
        position = {node: index for index, node in enumerate(rpo)}
        for node in rpo:
            for successor in cfg.successors(node):
                assert position[node] < position[successor]


class TestIpLookup:
    def test_block_at_ip(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock(0, start_ip=0x100, end_ip=0x110))
        assert cfg.block_at_ip(0x108).block_id == 0
        assert cfg.block_at_ip(0x110) is None

    def test_empty_cfg(self):
        assert ControlFlowGraph().block_at_ip(0x100) is None

    def test_empty_blocks_never_match(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock(0, start_ip=0x100, end_ip=0x100))
        assert cfg.block_at_ip(0x100) is None

    def test_boundaries(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock(0, start_ip=0x100, end_ip=0x110))
        cfg.add_block(BasicBlock(1, start_ip=0x120, end_ip=0x130))
        assert cfg.block_at_ip(0x0FF) is None
        assert cfg.block_at_ip(0x100).block_id == 0
        assert cfg.block_at_ip(0x10F).block_id == 0
        assert cfg.block_at_ip(0x110) is None  # gap between blocks
        assert cfg.block_at_ip(0x11F) is None
        assert cfg.block_at_ip(0x120).block_id == 1
        assert cfg.block_at_ip(0x12F).block_id == 1
        assert cfg.block_at_ip(0x130) is None

    def test_index_invalidated_by_insertion(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock(0, start_ip=0x100, end_ip=0x110))
        assert cfg.block_at_ip(0x200) is None  # index built here
        cfg.add_block(BasicBlock(1, start_ip=0x200, end_ip=0x210))
        assert cfg.block_at_ip(0x200).block_id == 1

    def test_index_invalidated_by_range_mutation(self):
        # The builder mutates start_ip/end_ip of already-inserted blocks;
        # callers must invalidate, and lookups must then see the new range.
        cfg = ControlFlowGraph()
        block = cfg.add_block(BasicBlock(0, start_ip=0x100, end_ip=0x110))
        assert cfg.block_at_ip(0x108).block_id == 0
        block.start_ip = 0x300
        block.end_ip = 0x310
        cfg.invalidate_ip_index()
        assert cfg.block_at_ip(0x108) is None
        assert cfg.block_at_ip(0x308).block_id == 0

    def test_randomized_against_linear_scan(self):
        # Bisect lookup must agree with the reference linear scan on
        # randomized non-overlapping layouts with gaps and empty blocks.
        rng = random.Random(1234)
        for _trial in range(25):
            cfg = ControlFlowGraph()
            cursor = rng.randrange(0, 0x1000)
            probe_ips = []
            for block_id in range(rng.randrange(1, 40)):
                cursor += rng.randrange(0, 64)  # random gap (possibly none)
                size = rng.choice([0, 4, 4, 8, 16, 64])  # some empty blocks
                cfg.add_block(
                    BasicBlock(block_id, start_ip=cursor, end_ip=cursor + size)
                )
                probe_ips += [cursor - 1, cursor, cursor + size - 1,
                              cursor + size, cursor + size // 2]
                cursor += size
            for ip in probe_ips:
                assert cfg.block_at_ip(ip) is cfg._block_at_ip_linear(ip), hex(ip)

    def test_builder_image_resolves_statement_ips(self):
        # End to end through the builder, whose add_statement mutates block
        # ranges after insertion: every statement IP must resolve to a block
        # containing it, identically to the linear scan.
        builder = ImageBuilder()
        fn = builder.function("kernel", file="kernel.c")
        fn.begin_loop(line=10)
        ips = [fn.add_statement(line=11, count=3)]
        fn.begin_loop(line=20)
        ips.append(fn.add_statement(line=21))
        ips.append(fn.add_statement(line=22))
        fn.end_loop()
        ips.append(fn.add_statement(line=30))
        fn.end_loop()
        fn.finish()
        image = builder.build()
        cfg = image.functions[0].cfg
        for ip in ips:
            block = cfg.block_at_ip(ip)
            assert block is not None and block.contains_ip(ip)
            assert block is cfg._block_at_ip_linear(ip)
