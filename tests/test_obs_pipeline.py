"""Observability of the profiling pipeline: counters, spans, budgets.

The contracts under test:

- the scalar and batched engines charge *identical* pipeline counters
  (aggregate flushing makes instrumentation engine-agnostic);
- watchdog budgets surface machine-readably (gauges for limits, a
  ``pmu.budget.tripped.<limit>`` counter for the one that fired);
- ``CCProf.run`` attaches the online phase's RawProfile so downstream
  consumers (compare, manifests) never re-profile;
- the disabled obs layer is output-invisible: reports render bit-for-bit
  identically with the registry/tracer on or off.
"""

import pytest

from repro.core.profiler import CCProf
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, use_registry
from repro.obs.overhead import measure_self_overhead
from repro.obs.tracing import NULL_TRACER, Tracer, use_tracer
from repro.robustness.budget import SamplingBudget
from repro.robustness.faults import FaultPipeline
from repro.workloads import SymmetrizationWorkload


def run_with_obs(engine: str = "batched", **profiler_kwargs):
    """One pipeline run under a fresh registry/tracer; returns all three."""
    registry = MetricsRegistry()
    tracer = Tracer()
    with use_registry(registry), use_tracer(tracer):
        profiler = CCProf(seed=1, engine=engine, **profiler_kwargs)
        report = profiler.run(SymmetrizationWorkload(n=96))
    return report, registry, tracer


class TestEngineDifferentialCounters:
    def test_scalar_and_batched_charge_identical_counters(self):
        _, batched_registry, _ = run_with_obs(engine="batched")
        _, scalar_registry, _ = run_with_obs(engine="scalar")
        batched = batched_registry.snapshot()["counters"]
        scalar = scalar_registry.snapshot()["counters"]
        compared = {
            name
            for name in set(batched) | set(scalar)
            if name.startswith(("cache.", "pmu.", "core."))
        }
        assert compared  # the run actually charged pipeline counters
        for name in sorted(compared):
            assert batched.get(name) == scalar.get(name), name

    def test_cache_counters_match_simulation_totals(self):
        report, registry, _ = run_with_obs()
        counters = registry.snapshot()["counters"]
        stats = report.raw_profile.sampling.cache_stats
        assert counters["cache.accesses"] == stats.accesses
        assert counters["cache.misses"] == stats.misses
        assert counters["cache.hits"] == stats.hits
        assert counters["pmu.events"] == report.total_events
        assert counters["pmu.samples_emitted"] == report.total_samples


class TestSpans:
    def test_pipeline_stages_are_traced(self):
        _, _, tracer = run_with_obs()
        timings = tracer.stage_timings()
        for stage in ("profile", "sample", "analyze"):
            assert stage in timings
            assert timings[stage] > 0.0

    def test_sample_nested_under_profile(self):
        _, _, tracer = run_with_obs()
        profile_span = next(r for r in tracer.roots if r.name == "profile")
        assert any(c.name == "sample" for c in profile_span.children)


class TestBudgetObservability:
    def test_tripped_budget_named_in_counters(self):
        report, registry, _ = run_with_obs(
            budget=SamplingBudget(max_events=50)
        )
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["pmu.budget.max_events"] == 50
        assert snapshot["counters"]["pmu.budget.tripped.max_events"] == 1
        assert snapshot["counters"]["pmu.truncated_runs"] == 1
        assert report.raw_profile.sampling.truncated

    def test_untripped_budget_sets_gauge_only(self):
        _, registry, _ = run_with_obs(
            budget=SamplingBudget(max_events=10_000_000)
        )
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["pmu.budget.max_events"] == 10_000_000
        assert not any(
            name.startswith("pmu.budget.tripped.")
            for name in snapshot["counters"]
        )


class TestRawProfileAttachment:
    def test_run_attaches_raw_profile(self):
        report, _, _ = run_with_obs()
        assert report.raw_profile is not None
        assert report.raw_profile.sampling.total_events == report.total_events

    def test_cache_stats_ride_on_the_sampling_result(self):
        report, _, _ = run_with_obs()
        stats = report.raw_profile.sampling.cache_stats
        assert stats is not None
        assert stats.accesses == report.raw_profile.sampling.total_accesses

    def test_sampler_cache_stats_match_standalone_simulation(self, paper_l1):
        # The compare path substitutes these stats for a fresh l1_stats
        # simulation; they must be the same numbers.
        report, _, _ = run_with_obs()
        standalone = SymmetrizationWorkload(n=96).l1_stats(paper_l1)
        riding = report.raw_profile.sampling.cache_stats
        assert riding.misses == standalone.misses
        assert riding.accesses == standalone.accesses


class TestFaultAccounting:
    def test_dropped_samples_counted(self):
        report, registry, _ = run_with_obs(
            inject=FaultPipeline.parse("drop:0.5", seed=3)
        )
        counters = registry.snapshot()["counters"]
        fault_report = report.raw_profile.fault_report
        lost = fault_report.records_in - fault_report.records_out
        assert lost > 0
        assert counters["pmu.samples_dropped"] == lost


class TestDisabledObsInvisible:
    def test_report_bit_identical_with_obs_off(self):
        enabled_report, _, _ = run_with_obs()
        with use_registry(NULL_REGISTRY), use_tracer(NULL_TRACER):
            disabled_report = CCProf(seed=1).run(SymmetrizationWorkload(n=96))
        assert disabled_report.render() == enabled_report.render()

    def test_no_state_recorded_when_disabled(self):
        with use_registry(NULL_REGISTRY), use_tracer(NULL_TRACER):
            CCProf(seed=1).run(SymmetrizationWorkload(n=96))
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert NULL_TRACER.roots == []


class TestTraceBatchMetrics:
    def test_batch_aggregates_recorded(self):
        from repro.trace.batch import iter_batches
        from tests.conftest import make_load

        registry = MetricsRegistry()
        stream = (make_load(i * 64) for i in range(1000))
        with use_registry(registry):
            batches = list(iter_batches(stream, batch_size=256))
        assert len(batches) == 4
        snapshot = registry.snapshot()
        assert snapshot["counters"]["trace.batch.batches"] == 4
        assert snapshot["counters"]["trace.batch.records"] == 1000
        histogram = snapshot["histograms"]["trace.batch.size"]
        assert histogram["count"] == 4
        assert histogram["sum"] == 1000


class TestAnalysisPassCacheMetrics:
    def test_hits_and_runs_counted(self):
        from repro.analysis import (
            AnalysisCache,
            ConflictPredictionAnalysis,
            StaticModel,
        )
        from repro.workloads import GemmWorkload

        registry = MetricsRegistry()
        with use_registry(registry):
            cache = AnalysisCache(StaticModel.from_workload(GemmWorkload()))
            cache.request(ConflictPredictionAnalysis)
            cache.request(ConflictPredictionAnalysis)  # served from cache
        counters = registry.snapshot()["counters"]
        assert counters["analysis.pass_cache.runs"] == cache.stats.runs
        assert counters["analysis.pass_cache.hits"] == cache.stats.hits
        assert counters["analysis.pass_cache.hits"] >= 1


class TestSelfOverhead:
    def test_tiny_measurement_produces_sane_report(self):
        report = measure_self_overhead(accesses=2000, repeats=1)
        assert report.workload == "lru_stream"
        assert report.accesses == 2000
        assert report.bare_seconds > 0
        assert report.instrumented_seconds > 0
        record = report.as_dict()
        assert set(record) == {
            "workload", "accesses", "repeats", "bare_seconds",
            "instrumented_seconds", "ratio", "overhead", "target",
            "within_target",
        }
        assert record["ratio"] == pytest.approx(
            report.instrumented_seconds / report.bare_seconds
        )

    def test_render_names_the_verdict(self):
        report = measure_self_overhead(accesses=2000, repeats=1)
        rendered = report.render()
        assert "lru_stream" in rendered
        assert "within" in rendered or "EXCEEDS" in rendered
