"""Tests for repro.obs.tracing."""

import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    use_tracer,
)


class FakeClock:
    """Deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step
        return reading


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner_a", "inner_b"]

    def test_attributes_and_annotate(self):
        tracer = Tracer()
        with tracer.span("stage", workload="adi") as span:
            span.annotate(records=7)
        assert tracer.roots[0].attributes == {"workload": "adi", "records": 7}

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        # Clock readings: outer start=0, inner start=1, inner end=2,
        # outer end=3.
        assert inner.duration == 1.0
        assert outer.duration == 3.0

    def test_exception_marks_error_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current is None  # fully unwound
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.status == "error"
        assert "boom" in inner.error
        assert outer.status == "error"

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
        assert tracer.current is None


class TestTracerQueries:
    def test_stage_timings_total_per_name(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("work"):
            pass
        with tracer.span("work"):
            pass
        assert tracer.stage_timings() == {"work": 2.0}

    def test_render_tree(self):
        tracer = Tracer()
        with tracer.span("outer", workload="adi"):
            with tracer.span("inner"):
                pass
        rendered = tracer.render()
        assert "outer" in rendered
        assert "  inner" in rendered
        assert "workload=adi" in rendered

    def test_render_empty(self):
        assert Tracer().render() == "(no spans recorded)"

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [(r["name"], r["depth"]) for r in records] == [
            ("outer", 0), ("inner", 1),
        ]

    def test_root_cap_drops_oldest(self):
        tracer = Tracer(max_roots=3)
        with pytest.warns(RuntimeWarning, match="root-span cap"):
            for index in range(5):
                with tracer.span(f"span{index}"):
                    pass
        assert [root.name for root in tracer.roots] == [
            "span2", "span3", "span4",
        ]
        assert tracer.dropped_roots == 2
        assert "2 older spans dropped" in tracer.render()

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.stage_timings() == {}


class TestDisabledTracer:
    def test_span_is_shared_null_context(self):
        first = NULL_TRACER.span("a", workload="x")
        second = NULL_TRACER.span("b")
        assert first is second
        with first as span:
            span.annotate(anything=1)  # no-op, no error
        assert NULL_TRACER.roots == []

    def test_use_tracer_installs_and_restores(self):
        before = get_tracer()
        injected = Tracer()
        with use_tracer(injected):
            assert get_tracer() is injected
        assert get_tracer() is before


class TestRootCapObservability:
    """The cap is no longer silent: counter + one-time warning."""

    def run_over_cap(self, tracer, spans=5):
        for index in range(spans):
            with tracer.span(f"span{index}"):
                pass

    def test_overflow_counts_dropped_roots(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry(enabled=True)
        tracer = Tracer(max_roots=3)
        with use_registry(registry):
            with pytest.warns(RuntimeWarning, match="root-span cap"):
                self.run_over_cap(tracer, spans=5)
        assert registry.counter("obs.trace.roots_dropped").value == 2

    def test_warning_fires_once_per_tracer(self):
        import warnings

        tracer = Tracer(max_roots=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self.run_over_cap(tracer, spans=6)
        cap_warnings = [
            w for w in caught if "root-span cap" in str(w.message)
        ]
        assert len(cap_warnings) == 1

    def test_reset_rearms_the_warning(self):
        tracer = Tracer(max_roots=2)
        with pytest.warns(RuntimeWarning, match="root-span cap"):
            self.run_over_cap(tracer, spans=3)
        tracer.reset()
        with pytest.warns(RuntimeWarning, match="root-span cap"):
            self.run_over_cap(tracer, spans=3)

    def test_under_cap_stays_silent(self):
        import warnings

        tracer = Tracer(max_roots=8)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self.run_over_cap(tracer, spans=8)
        assert not caught
        assert tracer.dropped_roots == 0
