"""Tests for repro.robustness.faults."""

import random

import pytest

from repro.errors import SamplingError
from repro.pmu.sampler import AddressSample
from repro.robustness.faults import (
    FAULT_NAMES,
    BitflipInjector,
    BurstDropInjector,
    DropInjector,
    DuplicateInjector,
    FaultPipeline,
    JitterInjector,
    SkidInjector,
    TruncateInjector,
    default_pipeline,
    make_injector,
    parse_fault_specs,
)
from tests.conftest import make_load


def samples(count):
    return [
        AddressSample(ip=0x1000 + i, address=0x2000 + 64 * i,
                      event_index=i, access_index=i)
        for i in range(count)
    ]


class TestDropInjector:
    def test_drops_about_the_requested_fraction(self):
        out, dropped = DropInjector(0.3).apply(samples(2000), random.Random(1))
        assert dropped == 2000 - len(out)
        assert 0.2 < dropped / 2000 < 0.4

    def test_zero_probability_is_identity(self):
        records = samples(50)
        out, dropped = DropInjector(0.0).apply(records, random.Random(1))
        assert out == records and dropped == 0

    def test_bad_probability_rejected(self):
        with pytest.raises(SamplingError):
            DropInjector(1.5)


class TestBurstDropInjector:
    def test_drops_contiguous_runs(self):
        records = samples(500)
        out, dropped = BurstDropInjector(0.02, burst=16).apply(
            records, random.Random(7)
        )
        assert dropped == 500 - len(out)
        assert dropped > 0
        # Survivors keep their original relative order.
        indices = [record.event_index for record in out]
        assert indices == sorted(indices)

    def test_burst_length_validated(self):
        with pytest.raises(SamplingError):
            BurstDropInjector(0.1, burst=0)


class TestSkidInjector:
    def test_ips_move_forward_only(self):
        records = samples(200)
        out, skidded = SkidInjector(3).apply(records, random.Random(2))
        assert len(out) == len(records)
        for before, after in zip(records, out):
            assert before.ip <= after.ip <= before.ip + 3
            assert after.address == before.address
        assert skidded == sum(
            1 for b, a in zip(records, out) if a.ip != b.ip
        )

    def test_zero_skid_is_identity(self):
        records = samples(10)
        out, skidded = SkidInjector(0).apply(records, random.Random(2))
        assert out == records and skidded == 0


class TestBitflipInjector:
    def test_flips_exactly_one_bit_when_it_fires(self):
        records = samples(400)
        out, corrupted = BitflipInjector(0.5).apply(records, random.Random(3))
        changed = [
            (b, a) for b, a in zip(records, out) if a.address != b.address
        ]
        assert len(changed) == corrupted > 0
        for before, after in changed:
            assert bin(before.address ^ after.address).count("1") == 1


class TestDuplicateInjector:
    def test_duplicates_are_adjacent(self):
        records = samples(300)
        out, duplicated = DuplicateInjector(0.2).apply(records, random.Random(4))
        assert len(out) == len(records) + duplicated > len(records)
        seen_twice = sum(
            1 for i in range(1, len(out)) if out[i] is out[i - 1]
        )
        assert seen_twice == duplicated


class TestTruncateInjector:
    def test_keeps_exact_prefix(self):
        records = samples(100)
        out, removed = TruncateInjector(0.6).apply(records, random.Random(5))
        assert out == records[:60] and removed == 40

    def test_keep_fraction_validated(self):
        with pytest.raises(SamplingError):
            TruncateInjector(0.0)


class TestJitterInjector:
    def test_reorders_only_within_windows(self):
        records = samples(64)
        out, displaced = JitterInjector(8).apply(records, random.Random(6))
        assert sorted(out) == sorted(records)
        assert displaced > 0
        for start in range(0, 64, 8):
            assert set(out[start : start + 8]) == set(records[start : start + 8])


class TestFaultPipeline:
    def test_parse_spec_builds_ordered_injectors(self):
        pipeline = FaultPipeline.parse("drop:0.2,skid:1")
        assert [inj.name for inj in pipeline.injectors] == ["drop", "skid"]

    def test_deterministic_under_fixed_seed(self):
        records = samples(500)
        first = FaultPipeline.parse("drop:0.3,skid:2,bitflip:0.1", seed=9)
        second = FaultPipeline.parse("drop:0.3,skid:2,bitflip:0.1", seed=9)
        assert first.apply(records) == second.apply(records)

    def test_different_seeds_differ(self):
        records = samples(500)
        a = FaultPipeline.parse("drop:0.3", seed=1).apply(records)
        b = FaultPipeline.parse("drop:0.3", seed=2).apply(records)
        assert a != b

    def test_report_accounts_for_stream_delta(self):
        pipeline = FaultPipeline.parse("drop:0.25,dup:0.1", seed=0)
        out = pipeline.apply(samples(1000))
        report = pipeline.last_report
        assert report.records_in == 1000
        assert report.records_out == len(out)
        assert set(report.injected) == {"drop", "dup"}
        assert (
            1000 - report.injected["drop"] + report.injected["dup"]
            == len(out)
        )

    def test_works_on_memory_access_streams_too(self):
        trace = [make_load(0x1000 + 64 * i) for i in range(100)]
        out = FaultPipeline.parse("drop:0.5,skid:1", seed=0).apply(trace)
        assert 0 < len(out) < 100

    def test_every_registered_fault_has_a_default(self):
        for name in FAULT_NAMES:
            pipeline = default_pipeline(name)
            out = pipeline.apply(samples(200))
            assert isinstance(out, list)
            assert name in pipeline.last_report.injected

    def test_unknown_fault_rejected(self):
        with pytest.raises(SamplingError, match="unknown fault"):
            make_injector("cosmic-ray")

    def test_bad_parameter_rejected(self):
        with pytest.raises(SamplingError, match="bad fault parameter"):
            parse_fault_specs("drop:lots")

    def test_empty_spec_rejected(self):
        with pytest.raises(SamplingError, match="empty fault spec"):
            parse_fault_specs(" , ")

    def test_describe_mentions_counts(self):
        pipeline = FaultPipeline.parse("drop:0.5", seed=0)
        pipeline.apply(samples(100))
        assert "drop=" in pipeline.last_report.describe()
