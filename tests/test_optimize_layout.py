"""Tests for repro.optimize.layout."""

from repro.cache.geometry import CacheGeometry
from repro.optimize.layout import diagnose_stride, sets_covered_by_stride


class TestSetsCovered:
    def test_mapping_period_stride_covers_one_set(self, paper_l1):
        assert sets_covered_by_stride(4096, paper_l1) == 1
        assert sets_covered_by_stride(8192, paper_l1) == 1

    def test_line_stride_covers_all_sets(self, paper_l1):
        assert sets_covered_by_stride(64, paper_l1) == 64

    def test_half_period_covers_two(self, paper_l1):
        assert sets_covered_by_stride(2048, paper_l1) == 2

    def test_odd_stride_covers_all(self, paper_l1):
        assert sets_covered_by_stride(2052, paper_l1) == 64

    def test_negative_stride_same_as_positive(self, paper_l1):
        assert sets_covered_by_stride(-4096, paper_l1) == 1


class TestDiagnosis:
    def test_kripke_signature_recommends_reorder(self, paper_l1):
        # 32 KiB stride = psi's g-stride: 8 mapping periods per step.
        addresses = [0x10000000 + i * 32768 for i in range(64)]
        diagnosis = diagnose_stride(addresses, paper_l1)
        assert diagnosis.aliases_sets
        assert diagnosis.recommendation == "reorder-loops"

    def test_column_walk_recommends_padding(self, paper_l1):
        # Stride exactly one aliasing row pitch (ADI's u matrix).
        addresses = [0x20000000 + i * 4096 for i in range(64)]
        diagnosis = diagnose_stride(addresses, paper_l1, row_pitch_hint=4096)
        assert diagnosis.recommendation == "pad-rows"

    def test_sequential_walk_is_fine(self, paper_l1):
        addresses = [0x30000000 + i * 64 for i in range(64)]
        diagnosis = diagnose_stride(addresses, paper_l1)
        assert not diagnosis.aliases_sets
        assert diagnosis.recommendation == "none"

    def test_random_addresses_no_dominant_stride(self, paper_l1):
        import random

        rng = random.Random(0)
        addresses = [rng.randrange(1 << 30) for _ in range(100)]
        diagnosis = diagnose_stride(addresses, paper_l1)
        assert diagnosis.recommendation == "none"

    def test_too_few_samples(self, paper_l1):
        assert diagnose_stride([1, 2], paper_l1).recommendation == "none"

    def test_all_same_address(self, paper_l1):
        diagnosis = diagnose_stride([5, 5, 5, 5], paper_l1)
        assert diagnosis.dominant_stride is None
        assert diagnosis.recommendation == "none"

    def test_share_reported(self, paper_l1):
        addresses = [i * 4096 for i in range(10)]
        diagnosis = diagnose_stride(addresses, paper_l1)
        assert diagnosis.dominant_share == 1.0
