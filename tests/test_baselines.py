"""Tests for repro.baselines — DProf, MST, and the analytical model."""

import pytest

from repro.baselines.analytical import (
    minimal_conflict_free_pad,
    predict_column_walk_conflict,
)
from repro.baselines.dprof import DprofDetector
from repro.baselines.mst import MissClassificationTable
from repro.cache.classify import ThreeCClassifier
from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.pmu.sampler import AddressSample
from tests.conftest import make_load


def sample_at(address, index=0):
    return AddressSample(ip=0, address=address, event_index=index, access_index=index)


class TestDprof:
    def test_static_hot_set_detected(self, paper_l1):
        samples = [
            sample_at((i % 16) * paper_l1.mapping_period, i) for i in range(1000)
        ]
        verdict = DprofDetector(paper_l1).analyze(samples)
        assert verdict.has_conflict
        assert 0 in verdict.hot_sets

    def test_balanced_traffic_clean(self, paper_l1):
        samples = [sample_at((i % 64) * 64, i) for i in range(1000)]
        verdict = DprofDetector(paper_l1).analyze(samples)
        assert not verdict.has_conflict
        assert verdict.imbalance == pytest.approx(1.0, abs=0.1)

    def test_moving_conflict_escapes_dprof(self, paper_l1):
        # The paper's critique: a victim set that rotates leaves balanced
        # totals.  Each phase hammers one set; over 64 phases the per-set
        # histogram is flat.
        samples = []
        index = 0
        for phase in range(64):
            victim = phase % 64
            for i in range(30):
                samples.append(
                    sample_at(victim * 64 + (i % 16) * paper_l1.mapping_period, index)
                )
                index += 1
        verdict = DprofDetector(paper_l1).analyze(samples)
        assert not verdict.has_conflict  # false negative, by construction

    def test_abstains_below_min_samples(self, paper_l1):
        samples = [sample_at(0, i) for i in range(10)]
        verdict = DprofDetector(paper_l1, min_samples=32).analyze(samples)
        assert not verdict.has_conflict

    def test_bad_multiple(self, paper_l1):
        with pytest.raises(AnalysisError):
            DprofDetector(paper_l1, hot_multiple=1.0)


class TestMst:
    def test_conflict_pattern_classified(self, paper_l1):
        mst = MissClassificationTable(paper_l1)
        for _ in range(30):
            for i in range(9):
                mst.access(i * paper_l1.mapping_period)
        assert mst.counts.conflict_fraction > 0.9

    def test_streaming_not_classified(self, paper_l1):
        mst = MissClassificationTable(paper_l1)
        mst.run_trace([make_load(i * 64) for i in range(4096)])
        assert mst.counts.conflict_fraction == 0.0

    def test_single_entry_misses_wide_rotation(self, paper_l1):
        # 10 lines rotating through one set overwrite the single evicted-tag
        # register before re-reference: MST's recall collapses, while the
        # three-C ground truth still sees conflicts.
        def trace():
            for _ in range(30):
                for i in range(10):
                    yield make_load(i * paper_l1.mapping_period)

        mst = MissClassificationTable(paper_l1, entries=1)
        mst.run_trace(trace())
        truth = ThreeCClassifier(paper_l1)
        truth.run_trace(trace())
        assert truth.counts.conflict_fraction() > 0.9
        assert mst.counts.conflict_fraction < 0.5 * truth.counts.conflict_fraction()

    def test_more_entries_recover_recall(self, paper_l1):
        def run(entries):
            mst = MissClassificationTable(paper_l1, entries=entries)
            for _ in range(30):
                for i in range(10):
                    mst.access(i * paper_l1.mapping_period)
            return mst.counts.conflict_fraction

        assert run(4) > run(1)

    def test_hits_tallied(self, paper_l1):
        mst = MissClassificationTable(paper_l1)
        mst.access(0)
        mst.access(0)
        assert mst.counts.hits == 1


class TestAnalytical:
    def test_aliased_pitch_predicts_conflict(self, paper_l1):
        prediction = predict_column_walk_conflict(4096, rows=256, geometry=paper_l1)
        assert prediction.predicted_conflict
        assert prediction.sets_used == 1
        assert prediction.steady_state_miss_ratio == 1.0

    def test_coprime_pitch_predicts_clean(self, paper_l1):
        prediction = predict_column_walk_conflict(4104, rows=256, geometry=paper_l1)
        assert not prediction.predicted_conflict
        assert prediction.sets_used == 64

    def test_figure2_pitch(self, paper_l1):
        # Symmetrization's 1024-byte pitch: 4 sets, 32 lines each.
        prediction = predict_column_walk_conflict(1024, rows=128, geometry=paper_l1)
        assert prediction.predicted_conflict
        assert prediction.sets_used == 4
        assert prediction.lines_per_set == 32.0

    def test_few_rows_fit_in_associativity(self, paper_l1):
        prediction = predict_column_walk_conflict(4096, rows=8, geometry=paper_l1)
        assert not prediction.predicted_conflict

    def test_prediction_matches_simulation(self, paper_l1):
        # Cross-validate the static model against actual simulation for a
        # spread of pitches.
        from repro.cache.set_assoc import SetAssociativeCache

        rows = 128
        for pitch in (1024, 2048, 4096, 1032, 4104, 2056):
            prediction = predict_column_walk_conflict(pitch, rows, paper_l1)
            cache = SetAssociativeCache(paper_l1)
            misses = 0
            laps = 20
            for _ in range(laps):
                for row in range(rows):
                    if cache.access(0x100000 + row * pitch).miss:
                        misses += 1
            steady_ratio = misses / (laps * rows)
            if prediction.predicted_conflict:
                assert steady_ratio > 0.8, pitch
            else:
                assert steady_ratio < 0.2, pitch

    def test_minimal_pad_agrees_with_advisor(self, paper_l1):
        from repro.workloads.padding import recommend_row_pad

        for cols, elem in ((128, 8), (512, 8), (256, 4)):
            analytical = minimal_conflict_free_pad(cols, elem, rows=256, geometry=paper_l1)
            advisor = recommend_row_pad(cols, elem, paper_l1, alignment=8)
            # Both de-conflict; the analytical pad is never larger than one
            # line beyond the advisor's.
            assert abs(analytical - advisor) <= paper_l1.line_size

    def test_validation(self, paper_l1):
        with pytest.raises(AnalysisError):
            predict_column_walk_conflict(0, 10, paper_l1)
