"""Tests for repro.stats.logistic."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats.logistic import LogisticModel, fit_logistic


class TestFit:
    def test_separable_data_classified_perfectly(self):
        features = [0.1, 0.15, 0.2, 0.7, 0.8, 0.9]
        labels = [0, 0, 0, 1, 1, 1]
        model = fit_logistic(features, labels)
        assert list(model.predict(features)) == labels

    def test_positive_slope_for_increasing_relation(self):
        model = fit_logistic([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1])
        assert model.slope > 0

    def test_decision_boundary_between_classes(self):
        model = fit_logistic([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1])
        assert 0.2 < model.decision_boundary() < 0.8

    def test_noisy_data_still_converges(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(0, 1, 200)
        labels = (features + rng.normal(0, 0.2, 200) > 0.5).astype(int)
        model = fit_logistic(features, labels)
        assert model.converged
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.8

    def test_probabilities_monotone_in_feature(self):
        model = fit_logistic([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1])
        probabilities = model.predict_proba([0.0, 0.25, 0.5, 0.75, 1.0])
        assert list(probabilities) == sorted(probabilities)

    def test_multifeature(self):
        features = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        labels = [0, 0, 1, 1]  # depends on the first feature only
        model = fit_logistic(features, labels)
        assert list(model.predict(features)) == labels


class TestValidation:
    def test_empty_data(self):
        with pytest.raises(ModelError, match="empty"):
            fit_logistic([], [])

    def test_length_mismatch(self):
        with pytest.raises(ModelError, match="mismatch"):
            fit_logistic([1.0, 2.0], [0])

    def test_non_binary_labels(self):
        with pytest.raises(ModelError, match="binary"):
            fit_logistic([1.0, 2.0], [0, 2])

    def test_single_class(self):
        with pytest.raises(ModelError, match="single class"):
            fit_logistic([1.0, 2.0], [1, 1])

    def test_slope_of_multifeature_model_rejected(self):
        features = np.array([[0, 0], [1, 1], [0, 1], [1, 0]], dtype=float)
        model = fit_logistic(features, [0, 1, 0, 1])
        with pytest.raises(ModelError, match="one-feature"):
            _ = model.slope

    def test_predict_feature_count_mismatch(self):
        model = fit_logistic([0.1, 0.9], [0, 1])
        with pytest.raises(ModelError, match="expected"):
            model.predict_proba(np.array([[1.0, 2.0]]))


class TestNumericalStability:
    def test_extreme_separation_does_not_overflow(self):
        features = [0.0] * 50 + [1.0] * 50
        labels = [0] * 50 + [1] * 50
        model = fit_logistic(features, labels)
        probabilities = model.predict_proba([0.0, 1.0])
        assert 0.0 <= probabilities[0] < 0.5 < probabilities[1] <= 1.0
        assert np.all(np.isfinite(model.coefficients))
