"""Tests for repro.perf.watch — the trajectory regression gate."""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.errors import WatchError, WatchRegressionError
from repro.perf.watch import (
    TrajectoryPoint,
    WatchThresholds,
    load_trajectory,
    regression_error,
    render_bench,
    watch,
    watch_trajectory,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def engine_record(speedup: float = 1.0, **extra) -> dict:
    record = {
        "seconds": 0.5 / speedup,
        "accesses_per_sec": 2000.0 * speedup,
        "speedup": speedup,
        "match": True,
    }
    record.update(extra)
    return record


def bench(revision: str, speedup: float = 20.0, **extra) -> dict:
    """A minimal valid v2 BENCH record with a configurable headline."""
    result = {
        "schema_version": 2,
        "revision": revision,
        "batch_size": 65536,
        "quick": False,
        "engine_workers": 4,
        "workloads": [
            {
                "name": "matrix",
                "kind": "cache",
                "accesses": 1000,
                "scalar_seconds": 0.5,
                "batched_seconds": 0.5 / speedup,
                "scalar_accesses_per_sec": 2000.0,
                "batched_accesses_per_sec": 2000.0 * speedup,
                "speedup": speedup,
                "match": True,
                "engines": {
                    "scalar": engine_record(1.0),
                    "batched": engine_record(speedup),
                },
                "min_speedup": 10.0,
                "gate_met": speedup >= 10.0,
            }
        ],
        "headline": {
            "workload": "matrix",
            "speedup": speedup,
            "target_speedup": 10.0,
            "target_met": speedup >= 10.0,
            "all_match": True,
        },
    }
    result.update(extra)
    return result


def timeline(conflict_fraction: float = 0.0, victim_sets=()) -> dict:
    """A minimal valid manifest timeline section."""
    conflict = conflict_fraction > 0
    return {
        "version": 1,
        "window": 64,
        "min_window": 32,
        "rcd_threshold": 3,
        "cf_boundary": 0.25,
        "engine": "batched",
        "total_samples": 64,
        "conflict_fraction": conflict_fraction,
        "transitions": [],
        "coalesced": False,
        "windows": [
            {
                "index": 0,
                "first_sample": 0,
                "samples": 64,
                "cf": 0.5 if conflict else 0.0,
                "conflict": conflict,
                "victim_sets": sorted(victim_sets),
                "rcd_observations": 10,
                "short_rcds": 5 if conflict else 0,
                "sets_touched": 4,
                "merged_from": 1,
            }
        ],
    }


def manifest(revision: str, timeline_record=None) -> dict:
    record = {
        "command": "perf",
        "config": {},
        "created": 1786000000,
        "data_quality": None,
        "engine": "",
        "geometry": {},
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "outputs": {},
        "period": 0.0,
        "revision": revision,
        "sampling": {},
        "seed": 0,
        "stage_timings": {},
        "version": 1,
        "workload": "matrix",
    }
    if timeline_record is not None:
        record["timeline"] = timeline_record
    return record


def point(revision: str, speedup: float = 20.0, **extra) -> TrajectoryPoint:
    return TrajectoryPoint(revision=revision, bench=bench(revision, speedup, **extra))


def regressions(report):
    return {(f.transition, f.dimension) for f in report.regressions()}


class TestThresholds:
    def test_defaults_are_the_documented_gates(self):
        thresholds = WatchThresholds()
        assert thresholds.max_headline_drop == 0.15
        assert thresholds.max_workload_drop == 0.30
        assert thresholds.max_obs_overhead == 0.05

    def test_negative_threshold_rejected(self):
        with pytest.raises(WatchError, match="max_headline_drop"):
            WatchThresholds(max_headline_drop=-0.1)


class TestPairChecks:
    def test_improvement_passes(self):
        report = watch_trajectory([point("aaa", 10.0), point("bbb", 20.0)])
        assert report.ok
        assert any(f.dimension == "headline" for f in report.findings)

    def test_small_headline_drop_is_info(self):
        report = watch_trajectory([point("aaa", 20.0), point("bbb", 18.0)])
        assert report.ok
        headline = next(f for f in report.findings if f.dimension == "headline")
        assert headline.severity == "info"

    def test_big_headline_drop_regresses(self):
        report = watch_trajectory([point("aaa", 20.0), point("bbb", 10.0)])
        assert ("aaa -> bbb", "headline") in regressions(report)
        error = regression_error(report)
        assert isinstance(error, WatchRegressionError)
        assert error.exit_code == 13
        assert error.regressions

    def test_workload_drop_regresses_beyond_threshold(self):
        before, after = point("aaa", 20.0), point("bbb", 20.0)
        after.bench["workloads"][0]["speedup"] = 10.0  # -50% on 'matrix'
        report = watch_trajectory([before, after])
        assert ("aaa -> bbb", "workload:matrix") in regressions(report)

    def test_workload_set_changes_are_info(self):
        before, after = point("aaa"), point("bbb")
        after.bench["workloads"][0]["name"] = "renamed"
        report = watch_trajectory([before, after])
        assert report.ok
        noted = {f.dimension for f in report.findings if f.severity == "info"}
        assert {"workload:matrix", "workload:renamed"} <= noted

    def test_screen_clear_to_suspect_regresses(self):
        screening = {
            "workload": "matrix",
            "verdict": "clear",
            "screen_seconds": 0.01,
            "simulate_seconds": 1.0,
            "speedup": 100.0,
        }
        before = point("aaa", screening=screening)
        after = point("bbb", screening=dict(screening, verdict="suspect"))
        report = watch_trajectory([before, after])
        assert ("aaa -> bbb", "screen") in regressions(report)
        # The reverse flip is informational, not a regression.
        assert watch_trajectory([after, before]).ok

    def test_timeline_conflict_growth_regresses(self):
        from repro.obs.manifest import RunManifest

        before = TrajectoryPoint(
            revision="aaa",
            manifest=RunManifest.from_dict(manifest("aaa", timeline(0.0))),
        )
        after = TrajectoryPoint(
            revision="bbb",
            manifest=RunManifest.from_dict(
                manifest("bbb", timeline(0.6, victim_sets=[0, 7]))
            ),
        )
        report = watch_trajectory([before, after])
        assert ("aaa -> bbb", "timeline") in regressions(report)
        infos = [f for f in report.findings if f.severity == "info"]
        assert any("victim" in f.message for f in infos)


class TestPointChecks:
    def test_missed_headline_target_regresses(self):
        bad = point("ccc", 8.0)  # under the 10x target
        report = watch_trajectory([point("aaa", 20.0), bad])
        assert ("ccc", "gate") in regressions(report)

    def test_engine_mismatch_regresses(self):
        bad = point("ccc")
        bad.bench["headline"]["all_match"] = False
        report = watch_trajectory([point("aaa"), bad])
        assert ("ccc", "gate") in regressions(report)

    def test_workload_floor_miss_regresses(self):
        bad = point("ccc")
        bad.bench["workloads"][0]["gate_met"] = False
        report = watch_trajectory([point("aaa"), bad])
        assert ("ccc", "gate:matrix") in regressions(report)

    def test_sharded_miss_only_regresses_when_enforced(self):
        sharded = {
            "workers": 4,
            "speedup_vs_batched": 1.2,
            "target": 2.0,
            "target_met": False,
            "enforced": False,
        }
        soft = point("ccc")
        soft.bench["headline"]["sharded"] = dict(sharded)
        assert watch_trajectory([point("aaa"), soft]).ok
        hard = point("ddd")
        hard.bench["headline"]["sharded"] = dict(sharded, enforced=True)
        report = watch_trajectory([point("aaa"), hard])
        assert ("ddd", "gate:sharded") in regressions(report)

    def test_obs_overhead_budget(self):
        overhead = {
            "workload": "matrix",
            "accesses": 1000,
            "repeats": 3,
            "bare_seconds": 1.0,
            "instrumented_seconds": 1.08,
            "ratio": 1.08,
            "overhead": 0.08,
            "target": 0.05,
            "within_target": False,
        }
        bad = point("ccc", obs_overhead=overhead)
        report = watch_trajectory([point("aaa"), bad])
        assert ("ccc", "obs_overhead") in regressions(report)

    def test_ipc_pipe_baseline(self):
        bad = point("ccc")
        bad.bench["headline"]["sharded"] = {
            "workers": 4,
            "speedup_vs_batched": 2.5,
            "target": 2.0,
            "target_met": True,
            "enforced": True,
            "ipc": {
                "bytes_shipped": 1 << 20,
                "bytes_mapped": 1 << 20,
                "bytes_shipped_per_access": 24.0,
            },
        }
        report = watch_trajectory([point("aaa"), bad])
        assert ("ccc", "ipc") in regressions(report)

    def test_single_point_rejected(self):
        with pytest.raises(WatchError, match="at least 2"):
            watch_trajectory([point("aaa")])


class TestLoading:
    def write(self, tmp_path, name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return path

    def test_explicit_files_keep_given_order(self, tmp_path):
        newer = self.write(tmp_path, "BENCH_bbb.json", bench("bbb", 25.0))
        older = self.write(tmp_path, "BENCH_aaa.json", bench("aaa", 20.0))
        points = load_trajectory([older, newer])
        assert [p.revision for p in points] == ["aaa", "bbb"]

    def test_same_revision_pair_merges_into_one_point(self, tmp_path):
        self.write(tmp_path, "BENCH_aaa.json", bench("aaa"))
        self.write(tmp_path, "MANIFEST_aaa.json", manifest("aaa", timeline()))
        self.write(tmp_path, "BENCH_bbb.json", bench("bbb"))
        points = load_trajectory(
            [
                tmp_path / "BENCH_aaa.json",
                tmp_path / "MANIFEST_aaa.json",
                tmp_path / "BENCH_bbb.json",
            ]
        )
        assert len(points) == 2
        assert points[0].bench is not None
        assert points[0].timeline is not None
        assert len(points[0].sources) == 2

    def test_directory_outside_git_orders_by_mtime(self, tmp_path):
        import os

        newer = self.write(tmp_path, "BENCH_aaa.json", bench("aaa"))
        older = self.write(tmp_path, "BENCH_bbb.json", bench("bbb"))
        now = time.time()
        os.utime(older, (now - 100, now - 100))
        os.utime(newer, (now, now))
        points = load_trajectory([tmp_path])
        # 'bbb' is the older file despite sorting after 'aaa' by name.
        assert [p.revision for p in points] == ["bbb", "aaa"]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(WatchError, match="no such artifact"):
            load_trajectory([tmp_path / "BENCH_zzz.json"])

    def test_free_form_name_rejected(self, tmp_path):
        stray = self.write(tmp_path, "notes.json", bench("aaa"))
        with pytest.raises(WatchError, match="not a trajectory artifact"):
            load_trajectory([stray, stray])

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(WatchError, match="no BENCH"):
            load_trajectory([tmp_path])

    def test_invalid_bench_rejected(self, tmp_path):
        broken = bench("aaa")
        del broken["headline"]
        stray = self.write(tmp_path, "BENCH_aaa.json", broken)
        with pytest.raises(WatchError, match="headline"):
            load_trajectory([stray, stray])


class TestReport:
    def test_report_json_round_trip(self, tmp_path):
        report = watch_trajectory([point("aaa", 20.0), point("bbb", 5.0)])
        target = tmp_path / "out" / "watch.json"
        report.save(target)
        record = json.loads(target.read_text())
        assert record["ok"] is False
        assert record["revisions"] == ["aaa", "bbb"]
        assert record["headline"] == {"aaa": 20.0, "bbb": 5.0}
        assert any(
            f["severity"] == "regression" for f in record["findings"]
        )

    def test_render_shows_trend_and_verdict(self):
        report = watch_trajectory([point("aaa", 20.0), point("bbb", 5.0)])
        text = report.render()
        assert "aaa -> bbb" in text
        assert "headline  20.00x" in text
        assert "regression(s)" in text
        clean = watch_trajectory([point("aaa", 10.0), point("bbb", 20.0)])
        assert clean.render().endswith("verdict: ok")

    def test_watch_saves_report_even_on_regression(self, tmp_path):
        for revision, speedup in (("aaa", 20.0), ("bbb", 5.0)):
            (tmp_path / f"BENCH_{revision}.json").write_text(
                json.dumps(bench(revision, speedup))
            )
        target = tmp_path / "report.json"
        report = watch(
            [tmp_path / "BENCH_aaa.json", tmp_path / "BENCH_bbb.json"],
            report_path=target,
        )
        assert not report.ok
        assert json.loads(target.read_text())["ok"] is False


class TestCommittedTrajectory:
    """The repo's own artifacts are the canonical no-regression case."""

    def test_repo_trajectory_passes(self):
        report = watch([REPO_ROOT])
        assert report.ok, report.render()
        assert [p.revision for p in report.points] == [
            "468f2a7",
            "2a5ed55",
            "e5d8e80",
        ]

    def test_repo_trajectory_mixes_v1_and_v2(self):
        report = watch([REPO_ROOT])
        versions = {p.bench["schema_version"] for p in report.points if p.bench}
        assert versions == {1, 2}

    def test_render_bench_on_committed_artifact(self):
        from repro.perf.schema import load_result

        text = render_bench(load_result(REPO_ROOT / "BENCH_e5d8e80.json"))
        assert "headline" in text
        assert "sharded" in text
        assert "B/access" in text
        assert "obs overhead" in text
