"""Tests for repro.robustness.retry and the monitor's flaky-attach path."""

import random

import pytest

from repro.errors import RetryExhaustedError, SamplingError
from repro.pmu.monitor import MonitorSession
from repro.pmu.periods import FixedPeriod
from repro.robustness.retry import RetryPolicy, retry_with_backoff
from tests.conftest import make_load


class TestRetryPolicy:
    def test_first_attempt_has_no_delay(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.delay_before(1, random.Random(0)) == 0.0

    def test_delays_grow_exponentially_up_to_cap(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0,
            max_attempts=10,
        )
        rng = random.Random(0)
        delays = [policy.delay_before(n, rng) for n in range(2, 7)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.25)
        rng = random.Random(1)
        for _ in range(100):
            delay = policy.delay_before(2, rng)
            assert 0.75 <= delay <= 1.25

    def test_invalid_config_rejected(self):
        with pytest.raises(SamplingError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SamplingError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(SamplingError):
            RetryPolicy(jitter=1.0)


class TestRetryWithBackoff:
    def test_returns_on_first_success(self):
        calls = []
        result = retry_with_backoff(lambda: calls.append(1) or "ok",
                                    sleep=lambda _d: None)
        assert result == "ok" and len(calls) == 1

    def test_retries_until_success(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise SamplingError("transient")
            return attempts["n"]

        assert retry_with_backoff(flaky, sleep=lambda _d: None) == 3

    def test_exhaustion_raises_with_cause_and_counts(self):
        def always_fails():
            raise SamplingError("busy")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetryExhaustedError) as info:
            retry_with_backoff(always_fails, policy=policy, sleep=lambda _d: None)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, SamplingError)
        assert isinstance(info.value.__cause__, SamplingError)
        assert info.value.code == "retry"

    def test_unexpected_errors_propagate_immediately(self):
        def boom():
            raise ValueError("programming mistake")

        with pytest.raises(ValueError):
            retry_with_backoff(boom, sleep=lambda _d: None)

    def test_sleeps_between_attempts_follow_policy(self):
        slept = []

        def always_fails():
            raise SamplingError("busy")

        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.0
        )
        with pytest.raises(RetryExhaustedError):
            retry_with_backoff(always_fails, policy=policy, sleep=slept.append)
        assert slept == [0.1, 0.2, 0.4]

    def test_on_retry_observer_sees_each_failure(self):
        events = []

        def flaky():
            if len(events) < 2:
                raise SamplingError("transient")
            return "done"

        retry_with_backoff(
            flaky,
            sleep=lambda _d: None,
            on_retry=lambda attempt, error, delay: events.append(attempt),
        )
        assert events == [1, 2]


class TestMonitorFlakyAttach:
    def trace(self):
        return [make_load(0x1000 + 64 * i) for i in range(256)]

    def test_clean_session_never_attaches_flakily(self):
        session = MonitorSession(period=FixedPeriod(7))
        profile = session.profile(iter(self.trace()))
        assert session.attach_attempts == 0
        assert profile.sampling.total_accesses == 256

    def test_flaky_attach_retries_and_succeeds(self):
        session = MonitorSession(
            period=FixedPeriod(7), attach_failure_rate=0.5, seed=3
        )
        profile = session.profile(iter(self.trace()))
        assert session.attach_attempts >= 1
        assert profile.sampling.total_accesses == 256

    def test_hopeless_attach_exhausts_retries(self):
        session = MonitorSession(
            period=FixedPeriod(7),
            attach_failure_rate=1.0,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(RetryExhaustedError):
            session.profile(iter(self.trace()))
        assert session.attach_attempts == 3

    def test_attach_failure_rate_validated(self):
        with pytest.raises(SamplingError):
            MonitorSession(attach_failure_rate=2.0)

    def test_flakiness_does_not_perturb_sampling(self):
        clean = MonitorSession(period=FixedPeriod(7), seed=5)
        flaky = MonitorSession(
            period=FixedPeriod(7), seed=5, attach_failure_rate=0.5
        )
        assert (
            clean.profile(iter(self.trace())).sampling.samples
            == flaky.profile(iter(self.trace())).sampling.samples
        )


class TestReproducibleJitter:
    """Chaos runs must replay exactly: the jitter RNG is injectable."""

    def _schedule(self, rng):
        policy = RetryPolicy(
            base_delay=0.05, multiplier=2.0, max_delay=1.0, jitter=0.25,
            max_attempts=8,
        )
        return [policy.delay_before(n, rng) for n in range(2, 9)]

    def test_same_injected_rng_same_delay_sequence(self):
        assert self._schedule(random.Random(42)) == self._schedule(
            random.Random(42)
        )

    def test_different_seeds_differ(self):
        assert self._schedule(random.Random(1)) != self._schedule(
            random.Random(2)
        )

    def test_retry_with_backoff_rng_matches_seed_shorthand(self):
        """``rng=Random(s)`` and ``seed=s`` walk the same jitter stream."""

        def run(**rng_kwargs):
            sleeps = []
            calls = [0]

            def flaky():
                calls[0] += 1
                if calls[0] < 4:
                    raise SamplingError("transient")
                return "ok"

            result = retry_with_backoff(
                flaky,
                policy=RetryPolicy(max_attempts=5, jitter=0.5),
                retry_on=(SamplingError,),
                sleep=sleeps.append,
                **rng_kwargs,
            )
            assert result == "ok"
            return sleeps

        assert run(rng=random.Random(7)) == run(seed=7)

    def test_injected_rng_is_consumed_not_reseeded(self):
        """The driver must use the caller's RNG object itself: advancing
        it externally changes the schedule (proof it is not re-seeded)."""
        rng = random.Random(9)
        first = self._schedule(rng)
        second = self._schedule(rng)  # same object, advanced state
        assert first != second
