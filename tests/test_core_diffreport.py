"""Tests for repro.core.diffreport."""

from repro.core.diffreport import ReportDiff
from repro.core.report import ConflictReport, LoopReport


def loop(name, cf, flagged):
    return LoopReport(
        loop_name=name,
        sample_count=100,
        miss_contribution=0.5,
        contribution_factor=cf,
        sets_utilized=10,
        has_conflict=flagged,
    )


def report(name, loops):
    return ConflictReport(
        workload_name=name,
        mean_sampling_period=100,
        total_samples=100,
        total_events=1000,
        rcd_threshold=8,
        loops=loops,
    )


class TestCompare:
    def test_cured_loop_detected(self):
        before = report("orig", [loop("a.c:1", 0.9, True)])
        after = report("padded", [loop("a.c:1", 0.1, False)])
        diff = ReportDiff.compare(before, after)
        assert [d.loop_name for d in diff.cured_loops()] == ["a.c:1"]
        assert diff.is_successful

    def test_regression_detected(self):
        before = report("orig", [loop("a.c:1", 0.1, False)])
        after = report("worse", [loop("a.c:1", 0.9, True)])
        diff = ReportDiff.compare(before, after)
        assert diff.regressed_loops()
        assert not diff.is_successful

    def test_no_change(self):
        r = report("same", [loop("a.c:1", 0.1, False)])
        diff = ReportDiff.compare(r, r)
        assert not diff.cured_loops()
        assert not diff.regressed_loops()
        assert not diff.is_successful  # nothing cured either

    def test_vanished_loop(self):
        before = report("orig", [loop("a.c:1", 0.9, True)])
        after = report("padded", [])
        diff = ReportDiff.compare(before, after)
        (delta,) = diff.deltas
        assert delta.after is None
        assert delta.cured  # flagged before, not flagged after

    def test_appeared_loop(self):
        before = report("orig", [])
        after = report("new", [loop("b.c:2", 0.8, True)])
        diff = ReportDiff.compare(before, after)
        (delta,) = diff.deltas
        assert delta.before is None
        assert delta.regressed

    def test_cf_delta(self):
        before = report("orig", [loop("a.c:1", 0.9, True)])
        after = report("padded", [loop("a.c:1", 0.2, False)])
        (delta,) = ReportDiff.compare(before, after).deltas
        assert delta.cf_delta == -0.7


class TestRendering:
    def test_render_mentions_cure(self):
        before = report("orig", [loop("a.c:1", 0.9, True)])
        after = report("padded", [loop("a.c:1", 0.1, False)])
        text = ReportDiff.compare(before, after).render()
        assert "CURED" in text
        assert "1 cured, 0 regressed" in text

    def test_describe_handles_missing_sides(self):
        before = report("orig", [loop("a.c:1", 0.9, True)])
        after = report("padded", [])
        (delta,) = ReportDiff.compare(before, after).deltas
        assert "->" in delta.describe()
