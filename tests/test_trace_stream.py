"""Tests for repro.trace.stream."""

import pytest

from repro.trace.stream import (
    concat_traces,
    count_accesses,
    filter_by_ip,
    filter_by_range,
    filter_loads,
    interleave_round_robin,
    map_accesses,
    materialize,
    relocate,
    take,
    windowed,
)
from tests.conftest import make_load, make_store


def addresses(stream):
    return [access.address for access in stream]


class TestConcatAndTake:
    def test_concat_preserves_order(self):
        first = [make_load(1), make_load(2)]
        second = [make_load(3)]
        assert addresses(concat_traces(first, second)) == [1, 2, 3]

    def test_take_limits(self):
        stream = [make_load(i) for i in range(10)]
        assert addresses(take(stream, 3)) == [0, 1, 2]

    def test_take_beyond_length(self):
        assert addresses(take([make_load(1)], 5)) == [1]

    def test_take_negative_raises(self):
        with pytest.raises(ValueError):
            list(take([], -1))


class TestFilters:
    def test_filter_by_ip(self):
        stream = [make_load(1, ip=10), make_load(2, ip=20), make_load(3, ip=10)]
        assert addresses(filter_by_ip(stream, [10])) == [1, 3]

    def test_filter_by_range(self):
        stream = [make_load(a) for a in (5, 10, 15, 20)]
        assert addresses(filter_by_range(stream, 10, 20)) == [10, 15]

    def test_filter_by_range_empty_raises(self):
        with pytest.raises(ValueError):
            list(filter_by_range([], 10, 5))

    def test_filter_loads_drops_stores(self):
        stream = [make_load(1), make_store(2), make_load(3)]
        assert addresses(filter_loads(stream)) == [1, 3]


class TestTransforms:
    def test_relocate_shifts_addresses(self):
        stream = [make_load(100), make_load(200)]
        assert addresses(relocate(stream, 0x1000)) == [100 + 0x1000, 200 + 0x1000]

    def test_relocate_preserves_other_fields(self):
        original = make_store(100, ip=42, size=4)
        (moved,) = list(relocate([original], 8))
        assert moved.ip == 42 and moved.size == 4 and moved.is_store

    def test_map_accesses(self):
        stream = [make_load(1)]
        doubled = map_accesses(stream, lambda a: a._replace(address=a.address * 2))
        assert addresses(doubled) == [2]


class TestInterleave:
    def test_round_robin_chunk1(self):
        a = [make_load(i) for i in (1, 2)]
        b = [make_load(i) for i in (10, 20)]
        assert addresses(interleave_round_robin([a, b])) == [1, 10, 2, 20]

    def test_round_robin_chunked(self):
        a = [make_load(i) for i in (1, 2, 3, 4)]
        b = [make_load(i) for i in (10, 20)]
        result = addresses(interleave_round_robin([a, b], chunk=2))
        assert result == [1, 2, 10, 20, 3, 4]

    def test_uneven_streams_drain(self):
        a = [make_load(1)]
        b = [make_load(i) for i in (10, 20, 30)]
        assert sorted(addresses(interleave_round_robin([a, b]))) == [1, 10, 20, 30]

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            list(interleave_round_robin([[]], chunk=0))


class TestWindowed:
    def test_even_windows(self):
        stream = [make_load(i) for i in range(6)]
        windows = list(windowed(stream, 2))
        assert [len(w) for w in windows] == [2, 2, 2]

    def test_ragged_tail(self):
        stream = [make_load(i) for i in range(5)]
        windows = list(windowed(stream, 2))
        assert [len(w) for w in windows] == [2, 2, 1]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            list(windowed([], 0))


class TestUtilities:
    def test_materialize_and_count(self):
        stream = (make_load(i) for i in range(4))
        materialized = materialize(stream)
        assert len(materialized) == 4
        assert count_accesses(iter(materialized)) == 4
