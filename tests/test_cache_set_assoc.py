"""Tests for repro.cache.set_assoc."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from tests.conftest import make_load


class TestBasics:
    def test_first_access_is_cold_miss(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        result = cache.access(0x1000)
        assert result.miss and result.cold

    def test_second_access_hits(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0x1000)
        assert cache.access(0x1000).hit

    def test_same_line_different_offset_hits(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0x1000)
        assert cache.access(0x1030).hit

    def test_contains(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0x1000)
        assert cache.contains(0x1008)
        assert not cache.contains(0x2000)

    def test_reset_flushes(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0x1000)
        cache.reset()
        assert not cache.contains(0x1000)
        assert cache.stats.accesses == 0


class TestConflictEviction:
    def test_n_plus_one_lines_in_one_set_evict(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        period = paper_l1.mapping_period
        # Fill all 8 ways of set 0, then a 9th line evicts the LRU (first).
        for i in range(9):
            cache.access(i * period)
        result = cache.access(0)  # first line was evicted
        assert result.miss and not result.cold

    def test_exactly_n_ways_all_hit_on_reuse(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        period = paper_l1.mapping_period
        for i in range(8):
            cache.access(i * period)
        for i in range(8):
            assert cache.access(i * period).hit

    def test_eviction_reports_evicted_tag(self, tiny_cache):
        cache = SetAssociativeCache(tiny_cache)
        period = tiny_cache.mapping_period
        cache.access(0)
        cache.access(period)
        result = cache.access(2 * period)
        assert result.evicted_tag == tiny_cache.tag(0)

    def test_different_sets_do_not_interfere(self, tiny_cache):
        cache = SetAssociativeCache(tiny_cache)
        for set_index in range(tiny_cache.num_sets):
            cache.access(set_index * tiny_cache.line_size)
        assert all(
            cache.access(s * tiny_cache.line_size).hit
            for s in range(tiny_cache.num_sets)
        )


class TestLruOrdering:
    def test_lru_evicts_least_recent(self, tiny_cache):
        cache = SetAssociativeCache(tiny_cache, policy="lru")
        period = tiny_cache.mapping_period
        cache.access(0)           # A
        cache.access(period)      # B (set full: 2 ways)
        cache.access(0)           # touch A -> B is LRU
        cache.access(2 * period)  # evicts B
        assert cache.contains(0)
        assert not cache.contains(period)

    def test_fifo_ignores_touch(self, tiny_cache):
        cache = SetAssociativeCache(tiny_cache, policy="fifo")
        period = tiny_cache.mapping_period
        cache.access(0)
        cache.access(period)
        cache.access(0)           # touch does not refresh under FIFO
        cache.access(2 * period)  # evicts the oldest fill: A
        assert not cache.contains(0)
        assert cache.contains(period)


class TestPolicies:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_all_policies_track_hits(self, paper_l1, policy):
        cache = SetAssociativeCache(paper_l1, policy=policy)
        cache.access(0x1000)
        assert cache.access(0x1000).hit

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_capacity_never_exceeded(self, tiny_cache, policy):
        cache = SetAssociativeCache(tiny_cache, policy=policy)
        for i in range(100):
            cache.access(i * tiny_cache.line_size)
        for set_index in range(tiny_cache.num_sets):
            assert len(cache.resident_tags(set_index)) <= tiny_cache.ways


class TestStatsCollection:
    def test_counts_add_up(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        for i in range(10):
            cache.access(i * 64)
        for i in range(10):
            cache.access(i * 64)
        stats = cache.stats
        assert stats.accesses == 20
        assert stats.misses == 10 and stats.hits == 10
        assert stats.cold_misses == 10

    def test_per_set_misses(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0)      # set 0
        cache.access(64)     # set 1
        cache.access(64)     # hit
        assert cache.stats.set_misses[0] == 1
        assert cache.stats.set_misses[1] == 1

    def test_ip_attribution(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0, ip=0xAA)
        cache.access(0, ip=0xAA)  # hit: not counted
        cache.access(4096, ip=0xBB)
        assert cache.stats.ip_misses[0xAA] == 1
        assert cache.stats.ip_misses[0xBB] == 1


class TestRecordInterface:
    def test_straddling_record_touches_two_lines(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        results = cache.access_record(make_load(60, size=8))
        assert len(results) == 2

    def test_run_trace_returns_stats(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        stats = cache.run_trace([make_load(i * 64) for i in range(5)])
        assert stats.accesses == 5 and stats.misses == 5
