"""Tests for repro.program.image and repro.program.builder."""

import pytest

from repro.errors import ProgramImageError
from repro.program.builder import ImageBuilder
from repro.program.image import ProgramImage, SourceLocation


def build_nested_image():
    builder = ImageBuilder()
    function = builder.function("kern", file="k.c")
    function.begin_loop(line=10)
    outer_ip = function.add_statement(line=11)
    function.begin_loop(line=12)
    inner_ip = function.add_statement(line=13)
    function.end_loop()
    after_ip = function.add_statement(line=15)
    function.end_loop()
    function.finish()
    return builder.build(), outer_ip, inner_ip, after_ip


class TestBuilder:
    def test_statement_ips_distinct(self):
        image, outer_ip, inner_ip, after_ip = build_nested_image()
        assert len({outer_ip, inner_ip, after_ip}) == 3

    def test_end_loop_without_begin(self):
        function = ImageBuilder().function("f")
        with pytest.raises(ProgramImageError, match="end_loop"):
            function.end_loop()

    def test_finish_with_open_loop(self):
        function = ImageBuilder().function("f")
        function.begin_loop(line=1)
        with pytest.raises(ProgramImageError, match="open loops"):
            function.finish()

    def test_statement_after_finish(self):
        function = ImageBuilder().function("f")
        function.finish()
        with pytest.raises(ProgramImageError, match="finished"):
            function.add_statement(line=1)

    def test_duplicate_function_name(self):
        builder = ImageBuilder()
        builder.function("f").finish()
        with pytest.raises(ProgramImageError, match="duplicate"):
            builder.function("f")

    def test_begin_loop_returns_report_name(self):
        function = ImageBuilder().function("f", file="a.c")
        assert function.begin_loop(line=7) == "a.c:7"

    def test_current_loop_name(self):
        function = ImageBuilder().function("f", file="a.c")
        assert function.current_loop_name() is None
        function.begin_loop(line=3)
        assert function.current_loop_name() == "a.c:3"

    def test_zero_statement_count_rejected(self):
        function = ImageBuilder().function("f")
        with pytest.raises(ProgramImageError, match="positive"):
            function.add_statement(line=1, count=0)


class TestLoopRecovery:
    """The image must let Havlak *rediscover* the declared loops."""

    def test_forest_shape(self):
        image, *_ = build_nested_image()
        forest = image.loop_forest("kern")
        assert len(forest) == 2
        assert forest.max_depth() == 2

    def test_innermost_loop_at_ip(self):
        image, outer_ip, inner_ip, after_ip = build_nested_image()
        assert image.innermost_loop_at_ip(inner_ip).depth == 2
        assert image.innermost_loop_at_ip(outer_ip).depth == 1
        # Statements after an inner loop are still in the outer loop.
        assert image.innermost_loop_at_ip(after_ip).depth == 1

    def test_loop_names_use_header_lines(self):
        image, outer_ip, inner_ip, _ = build_nested_image()
        function = image.function_named("kern")
        inner = image.innermost_loop_at_ip(inner_ip)
        assert image.loop_name(function, inner) == "k.c:12"

    def test_anonymous_function_loop_names(self):
        builder = ImageBuilder()
        function = builder.function("mkl", file="<mkl>", anonymous=True)
        function.begin_loop(line=1)
        ip = function.add_statement(line=2)
        function.end_loop()
        function.finish()
        image = builder.build()
        loop = image.innermost_loop_at_ip(ip)
        name = image.loop_name(image.function_named("mkl"), loop)
        assert name.startswith("mkl@0x")


class TestImageLookups:
    def test_resolve_ip(self):
        image, outer_ip, *_ = build_nested_image()
        function, block = image.resolve_ip(outer_ip)
        assert function.name == "kern"
        assert block.contains_ip(outer_ip)

    def test_resolve_unknown_ip(self):
        image, *_ = build_nested_image()
        assert image.resolve_ip(0x1) is None

    def test_function_named_missing(self):
        image, *_ = build_nested_image()
        with pytest.raises(ProgramImageError):
            image.function_named("ghost")

    def test_source_locations_recorded(self):
        image, outer_ip, *_ = build_nested_image()
        function, block = image.resolve_ip(outer_ip)
        assert function.location_of_block(block.block_id) == SourceLocation("k.c", 11)

    def test_address_range(self):
        image, *_ = build_nested_image()
        low, high = image.function_named("kern").address_range()
        assert low < high

    def test_multiple_functions_disjoint_ips(self):
        builder = ImageBuilder()
        f1 = builder.function("f1")
        ip1 = f1.add_statement(line=1)
        f1.finish()
        f2 = builder.function("f2")
        ip2 = f2.add_statement(line=1)
        f2.finish()
        image = builder.build()
        assert image.resolve_ip(ip1)[0].name == "f1"
        assert image.resolve_ip(ip2)[0].name == "f2"
