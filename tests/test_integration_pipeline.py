"""Integration tests: the whole CCProf story on real workloads.

These are the end-to-end claims of the paper exercised on (small
configurations of) the actual case-study workloads:

1. CCProf flags the conflicting variant and clears the optimized one.
2. Sampled RCD agrees with exact (simulator) RCD on the conflict verdict.
3. The padding advisor derives a fix that actually works.
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.contribution import contribution_factor
from repro.core.profiler import CCProf
from repro.core.rcd import RcdAnalysis
from repro.optimize.padding_advisor import recommend_pads_for_report
from repro.pmu.periods import FixedPeriod
from repro.workloads.adi import AdiWorkload
from repro.workloads.symmetrization import SymmetrizationWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload


@pytest.fixture
def profiler(paper_l1):
    return CCProf(geometry=paper_l1, period=FixedPeriod(29), seed=3)


class TestDetectThenVerifyOptimized:
    def test_adi_before_and_after(self, profiler):
        before = profiler.run(AdiWorkload.original(n=128))
        after = profiler.run(AdiWorkload.padded(n=128))
        assert before.has_conflicts
        before_cf = max(l.contribution_factor for l in before.loops if l.sample_count > 50)
        after_cf = max(l.contribution_factor for l in after.loops if l.sample_count > 50)
        assert after_cf < before_cf

    def test_tinydnn_before_and_after(self, profiler):
        before = profiler.run(TinyDnnFcWorkload.original(in_size=256, out_size=128))
        after = profiler.run(TinyDnnFcWorkload.padded(in_size=256, out_size=128))
        assert before.has_conflicts
        assert not after.loop(before.conflicting_loops()[0].loop_name).has_conflict


class TestSampledAgreesWithExact:
    def test_symmetrization_cf_consistency(self, paper_l1):
        workload = SymmetrizationWorkload.original(n=128, sweeps=2)
        # Exact: every L1 miss through the simulator.
        cache = SetAssociativeCache(paper_l1)
        exact_sets = []
        for access in workload.trace():
            if cache.access(access.address, access.ip).miss:
                exact_sets.append(paper_l1.set_index(access.address))
        exact_cf = contribution_factor(
            RcdAnalysis.from_set_sequence(exact_sets, paper_l1.num_sets)
        )
        # Sampled: the profiler's view at a modest period.
        profiler = CCProf(geometry=paper_l1, period=FixedPeriod(17), seed=5)
        report = profiler.run(workload)
        sampled_cf = max(loop.contribution_factor for loop in report.loops)
        # Both sides must land on the same side of the decision boundary.
        assert exact_cf > 0.3 and sampled_cf > 0.3

    def test_clean_workload_consistent_too(self, paper_l1):
        workload = SymmetrizationWorkload.padded(n=128, sweeps=2)
        profiler = CCProf(geometry=paper_l1, period=FixedPeriod(17), seed=5)
        report = profiler.run(workload)
        assert not report.has_conflicts


class TestAdvisorClosesTheLoop:
    def test_advised_pad_fixes_adi(self, paper_l1, profiler):
        workload = AdiWorkload.original(n=128)
        report = profiler.run(workload)
        arrays = [workload.u, workload.v, workload.p, workload.q]
        advice = recommend_pads_for_report(report, arrays, paper_l1)
        assert advice, "the advisor must implicate at least one array"
        pad = max(entry.pad_bytes for entry in advice)
        assert pad > 0
        fixed = AdiWorkload(n=128, pad_bytes=pad)
        before_misses = workload.l1_stats().misses
        after_misses = fixed.l1_stats().misses
        assert after_misses < before_misses

    def test_profile_serialization_round_trip_preserves_verdict(
        self, paper_l1, profiler, tmp_path
    ):
        from repro.pmu.monitor import RawProfile

        workload = AdiWorkload.original(n=128)
        profile = profiler.profile(workload)
        path = tmp_path / "adi.jsonl"
        profile.dump_samples(path)
        loaded = RawProfile.load_samples(path)
        # Reanalyze from disk (no image: loops collapse to one bucket, but
        # the contribution factor and verdict survive).
        report = profiler.analyze(loaded, workload_name="adi-from-disk")
        assert report.has_conflicts


class TestDetectorOnHashedHardware:
    """The note in repro.cache.hashing: if the hardware hashes its set
    index, CCProf's plain-geometry set attribution is wrong in detail but
    the verdicts survive, because hashing permutes sets per line without
    changing the balance of the miss stream."""

    def test_verdicts_survive_hashed_hardware(self, paper_l1):
        from repro.cache.hashing import XorFoldedGeometry
        from repro.core.contribution import contribution_factor
        from repro.core.rcd import RcdAnalysis
        from repro.pmu.sampler import AddressSampler
        from repro.workloads.rodinia import make_rodinia_workload
        from repro.workloads.tinydnn import TinyDnnFcWorkload

        hashed_hardware = XorFoldedGeometry(fold_levels=1)

        def sampled_cf(workload):
            # Hardware (the sampler's cache) hashes; the analyzer
            # attributes sets with the documented plain geometry.
            sampler = AddressSampler(hashed_hardware, period=FixedPeriod(13))
            result = sampler.run(workload.trace())
            analysis = RcdAnalysis.from_addresses(
                (s.address for s in result.samples), paper_l1
            )
            return contribution_factor(analysis)

        # Balanced workloads still read clean through the mismatch.
        assert sampled_cf(make_rodinia_workload("hotspot")) < 0.3
        # A conflict the hashing does NOT dissolve (stride walk whose
        # folded index still collides: same line reused cyclically beyond
        # associativity within one hashed set) remains detectable.  The
        # tiny-dnn weight walk survives hashing only partially, so use the
        # residual: whatever misses remain must still classify consistently
        # with a plain-hardware run of the padded (clean) variant.
        clean_cf = sampled_cf(TinyDnnFcWorkload.padded(in_size=256, out_size=128))
        assert clean_cf < 0.3
