"""Tests for repro.perfmodel."""

import pytest

from repro.cache.hierarchy import HierarchyResult, LevelStats
from repro.errors import AnalysisError
from repro.perfmodel.machine import BROADWELL, SKYLAKE
from repro.perfmodel.timing import estimate_cycles, speedup


def result(accesses, l1_misses, l2_misses, llc_misses):
    return HierarchyResult(
        levels=[
            LevelStats("L1", accesses, accesses - l1_misses, l1_misses),
            LevelStats("L2", l1_misses, l1_misses - l2_misses, l2_misses),
            LevelStats("LLC", l2_misses, l2_misses - llc_misses, llc_misses),
        ]
    )


class TestMachineSpecs:
    def test_paper_thread_counts(self):
        assert BROADWELL.threads == 28
        assert SKYLAKE.threads == 8

    def test_hierarchies_differ_in_llc(self):
        broadwell_llc = BROADWELL.hierarchy().levels[2].geometry.capacity
        skylake_llc = SKYLAKE.hierarchy().levels[2].geometry.capacity
        assert broadwell_llc > skylake_llc

    def test_latencies_increase_with_depth(self):
        for machine in (BROADWELL, SKYLAKE):
            latencies = machine.level_latencies()
            assert list(latencies) == sorted(latencies)


class TestCycleEstimation:
    def test_all_hits_cheapest(self):
        cheap = estimate_cycles(result(1000, 0, 0, 0), BROADWELL)
        expensive = estimate_cycles(result(1000, 1000, 1000, 1000), BROADWELL)
        assert expensive.total > cheap.total

    def test_decomposition_adds_up(self):
        estimate = estimate_cycles(result(100, 10, 5, 2), BROADWELL)
        assert estimate.total == pytest.approx(
            estimate.compute_cycles
            + estimate.l1_cycles
            + estimate.l2_cycles
            + estimate.llc_cycles
            + estimate.memory_cycles
        )

    def test_memory_bound_fraction(self):
        hit_only = estimate_cycles(result(100, 0, 0, 0), BROADWELL)
        assert hit_only.memory_bound_fraction == 0.0
        missy = estimate_cycles(result(100, 100, 100, 100), BROADWELL)
        assert missy.memory_bound_fraction > 0.5

    def test_missing_level_rejected(self):
        partial = HierarchyResult(levels=[LevelStats("L1", 1, 1, 0)])
        with pytest.raises(AnalysisError):
            estimate_cycles(partial, BROADWELL)


class TestSpeedup:
    def test_fewer_misses_speed_up(self):
        before = result(1000, 500, 400, 300)
        after = result(1000, 100, 50, 20)
        assert speedup(before, after, BROADWELL) > 1.5

    def test_identical_runs_speedup_one(self):
        run = result(1000, 100, 50, 20)
        assert speedup(run, run, BROADWELL) == pytest.approx(1.0)

    def test_llc_misses_dominate(self):
        # Removing LLC misses matters more than removing the same number of
        # L1 misses, because DRAM latency dwarfs L2 latency.
        base = result(1000, 200, 100, 100)
        fewer_l1 = result(1000, 100, 100, 100)
        fewer_llc = result(1000, 200, 100, 0)
        assert speedup(base, fewer_llc, BROADWELL) > speedup(base, fewer_l1, BROADWELL)

    def test_machine_dependence(self):
        before = result(1000, 500, 400, 300)
        after = result(1000, 100, 50, 20)
        # Different latency profiles give different (but both >1) speedups.
        assert speedup(before, after, BROADWELL) > 1.0
        assert speedup(before, after, SKYLAKE) > 1.0
