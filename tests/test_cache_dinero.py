"""Tests for repro.cache.dinero."""

import pytest

from repro.cache.dinero import (
    DineroConfig,
    format_dinero_report,
    parse_size,
    simulate_dinero_trace,
)
from repro.errors import TraceError
from repro.trace.tracefile import write_dinero_trace
from tests.conftest import make_load


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("512") == 512

    def test_suffixes(self):
        assert parse_size("32k") == 32 * 1024
        assert parse_size("8M") == 8 * 1024 * 1024
        assert parse_size("1g") == 1024**3

    def test_garbage(self):
        with pytest.raises(TraceError):
            parse_size("lots")


class TestConfigSpec:
    def test_paper_l1_spec(self):
        config = DineroConfig.from_spec("32k:64:8")
        assert config.geometry.num_sets == 64
        assert config.geometry.ways == 8
        assert config.policy == "lru"

    def test_policy_suffix(self):
        assert DineroConfig.from_spec("32k:64:8:plru").policy == "plru"

    def test_bad_spec(self):
        with pytest.raises(TraceError, match="bad cache spec"):
            DineroConfig.from_spec("32k-64-8")

    def test_build(self):
        cache = DineroConfig.from_spec("1k:16:2").build()
        assert cache.geometry.capacity == 1024


class TestSimulateTrace:
    def test_end_to_end(self, tmp_path):
        path = tmp_path / "t.din"
        write_dinero_trace(path, [make_load(i * 64) for i in range(16)])
        stats = simulate_dinero_trace(path, spec="32k:64:8")
        assert stats.accesses == 16
        assert stats.misses == 16  # all cold

    def test_report_format(self, tmp_path):
        path = tmp_path / "t.din"
        write_dinero_trace(path, [make_load(0), make_load(0)])
        stats = simulate_dinero_trace(path)
        report = format_dinero_report(stats, title="unit")
        assert "Fetches" in report and "Misses" in report
        assert "unit" in report
