"""Tests for repro.cache.victim."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.victim import VictimCachedL1
from repro.errors import GeometryError
from tests.conftest import make_load


class TestVictimCache:
    def test_main_hit_path(self, paper_l1):
        cache = VictimCachedL1(paper_l1)
        cache.access(0x1000)
        assert cache.access(0x1000) == "main"
        assert cache.stats.main_hits == 1

    def test_conflict_evictions_absorbed(self, paper_l1):
        cache = VictimCachedL1(paper_l1, victim_lines=8)
        period = paper_l1.mapping_period
        # 9 lines on one set: one eviction per lap; the victim buffer holds it.
        outcomes = []
        for _ in range(20):
            for i in range(9):
                outcomes.append(cache.access(i * period))
        assert cache.stats.victim_hits > 0
        assert cache.stats.absorbed_fraction > 0.9

    def test_capacity_misses_not_absorbed(self, paper_l1):
        cache = VictimCachedL1(paper_l1, victim_lines=8)
        total_lines = paper_l1.num_sets * paper_l1.ways
        # Stream 4x the cache: reuse distances dwarf the victim buffer.
        for _ in range(2):
            for i in range(4 * total_lines):
                cache.access(i * paper_l1.line_size)
        assert cache.stats.absorbed_fraction < 0.05

    def test_victim_buffer_capacity_respected(self, paper_l1):
        cache = VictimCachedL1(paper_l1, victim_lines=2)
        period = paper_l1.mapping_period
        # Evict many lines quickly; buffer keeps only the 2 most recent.
        for i in range(16):
            cache.access(i * period)
        assert len(cache._victim) <= 2

    def test_small_buffer_absorbs_less(self, paper_l1):
        def run(victim_lines):
            cache = VictimCachedL1(paper_l1, victim_lines=victim_lines)
            period = paper_l1.mapping_period
            for _ in range(20):
                for i in range(12):  # 4 lines beyond associativity
                    cache.access(i * period)
            return cache.stats.absorbed_fraction

        assert run(8) > run(1)

    def test_zero_lines_rejected(self, paper_l1):
        with pytest.raises(GeometryError):
            VictimCachedL1(paper_l1, victim_lines=0)

    def test_run_trace(self, paper_l1):
        cache = VictimCachedL1(paper_l1)
        stats = cache.run_trace([make_load(i * 64) for i in range(10)])
        assert stats.accesses == 10
        assert stats.misses == 10

    def test_promoted_line_leaves_buffer(self, paper_l1):
        cache = VictimCachedL1(paper_l1, victim_lines=4)
        period = paper_l1.mapping_period
        for i in range(9):
            cache.access(i * period)
        # Line 0 was evicted into the buffer; touching it promotes it out.
        assert cache.access(0) == "victim"
        line0 = paper_l1.line_number(0)
        assert line0 not in cache._victim
