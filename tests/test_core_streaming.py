"""Tests for repro.core.streaming — incremental windowed RCD analysis.

The load-bearing suite here is the differential one: every verdict the
streaming analyzer emits must be bit-identical to the batch
:class:`~repro.core.phases.PhaseAnalyzer` on the same samples, including
the trailing ``min_window`` fold and every contribution-factor float.
"""

import itertools
import json

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.phases import PhaseAnalyzer
from repro.core.streaming import (
    StreamingPhaseAnalyzer,
    WindowSummary,
    iter_address_chunks,
)
from repro.engine import get_backend
from repro.errors import AnalysisError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from tests.conftest import make_load


def sampled(trace, geometry, period=5, policy="lru"):
    sampler = AddressSampler(
        geometry, period=FixedPeriod(period), policy=policy
    )
    return sampler.run(trace).samples


def conflict_phase(geometry, laps=300):
    for _ in range(laps):
        for i in range(12):
            yield make_load(0x1000_0000 + i * geometry.mapping_period)


def clean_phase(geometry, laps=8):
    lines = 4 * geometry.num_sets * geometry.ways
    for _ in range(laps):
        for i in range(lines):
            yield make_load(0x4000_0000 + i * geometry.line_size)


def mixed_trace(geometry):
    return itertools.chain(
        clean_phase(geometry, laps=6),
        conflict_phase(geometry, laps=120),
        clean_phase(geometry, laps=6),
    )


def stream_verdicts(samples, geometry, **kwargs):
    analyzer = StreamingPhaseAnalyzer(geometry, **kwargs)
    analyzer.feed(samples)
    return analyzer.finish()


class TestBitIdentity:
    """Streaming == batch, field for field, float for float."""

    @pytest.mark.parametrize("policy", ["lru", "plru"])
    @pytest.mark.parametrize(
        "make_trace", [conflict_phase, clean_phase, mixed_trace]
    )
    def test_matches_batch_oracle(self, paper_l1, policy, make_trace):
        samples = sampled(make_trace(paper_l1), paper_l1, policy=policy)
        assert samples  # the workload must actually produce misses
        batch = PhaseAnalyzer(paper_l1, window=128).analyze(samples)
        streamed = stream_verdicts(samples, paper_l1, window=128)
        assert streamed.to_phased() == batch

    @pytest.mark.parametrize(
        "window,min_window",
        [(1, 1), (4, 2), (16, 16), (64, 10), (600, 600), (600, 32)],
    )
    def test_matches_across_window_settings(self, paper_l1, window, min_window):
        samples = sampled(mixed_trace(paper_l1), paper_l1)
        batch = PhaseAnalyzer(
            paper_l1, window=window, min_window=min_window
        ).analyze(samples)
        streamed = stream_verdicts(
            samples, paper_l1, window=window, min_window=min_window
        )
        assert streamed.to_phased() == batch

    @pytest.mark.parametrize("length", [0, 1, 31, 32, 33, 255, 256, 257, 513])
    def test_matches_at_fold_edges(self, paper_l1, length):
        # Lengths straddling the window and min_window boundaries hit
        # every branch of the trailing-fold logic, including window >
        # trace (length < 256 -> a single undersized window) and a
        # mid-window cut (length % window != 0).
        samples = sampled(conflict_phase(paper_l1), paper_l1)[:length]
        batch = PhaseAnalyzer(paper_l1, window=256).analyze(samples)
        streamed = stream_verdicts(samples, paper_l1, window=256)
        assert streamed.to_phased() == batch

    def test_mid_window_budget_cut_matches(self, paper_l1):
        # A sampling budget that fires mid-run truncates the stream at an
        # arbitrary window offset; the truncated stream must still agree.
        from repro.robustness.budget import SamplingBudget

        sampler = AddressSampler(
            paper_l1,
            period=FixedPeriod(5),
            budget=SamplingBudget(max_samples=333),
        )
        result = sampler.run(conflict_phase(paper_l1))
        assert result.truncated
        samples = result.samples
        batch = PhaseAnalyzer(paper_l1, window=128).analyze(samples)
        assert stream_verdicts(samples, paper_l1, window=128).to_phased() == batch

    def test_chunk_size_invariance(self, paper_l1):
        samples = sampled(mixed_trace(paper_l1), paper_l1)
        whole = stream_verdicts(samples, paper_l1, window=64)
        ragged = StreamingPhaseAnalyzer(paper_l1, window=64)
        cursor, step = 0, 1
        while cursor < len(samples):
            ragged.feed(samples[cursor:cursor + step])
            cursor += step
            step = step % 97 + 7  # ragged, never window-aligned
        assert ragged.finish().to_phased() == whole.to_phased()

    def test_feed_addresses_matches_feed(self, paper_l1):
        samples = sampled(mixed_trace(paper_l1), paper_l1)
        by_record = stream_verdicts(samples, paper_l1, window=64)
        by_column = StreamingPhaseAnalyzer(paper_l1, window=64)
        column = np.array([s.address for s in samples], dtype=np.uint64)
        for chunk in iter_address_chunks(column, chunk_size=100):
            by_column.feed_addresses(chunk)
        assert by_column.finish().to_phased() == by_record.to_phased()


class TestBoundedState:
    def test_peak_tracked_is_o_window(self, paper_l1):
        window = 64
        samples = sampled(conflict_phase(paper_l1, laps=2000), paper_l1)
        assert len(samples) >= 10 * window  # long stream, small window
        analysis = stream_verdicts(samples, paper_l1, window=window)
        # Tracked state: the in-progress window's raw set buffer (<=
        # window) plus two trackers of <= 2*window dict entries each.
        assert analysis.peak_tracked <= 5 * window
        assert analysis.total_samples == len(samples)

    def test_peak_does_not_grow_with_stream_length(self, paper_l1):
        short = sampled(conflict_phase(paper_l1, laps=200), paper_l1)
        long = sampled(conflict_phase(paper_l1, laps=2000), paper_l1)
        assert len(long) > 5 * len(short)
        peak_short = stream_verdicts(short, paper_l1, window=64).peak_tracked
        peak_long = stream_verdicts(long, paper_l1, window=64).peak_tracked
        assert peak_long <= peak_short + 64  # bounded, not proportional


class TestWindowSummary:
    def summary(self, **kwargs):
        base = dict(
            index=0,
            first_sample=0,
            sample_count=100,
            contribution_factor=0.1,
            has_conflict=False,
            victim_sets=[1],
            rcd_observations=40,
            short_rcds=10,
            sets_touched=8,
        )
        base.update(kwargs)
        return WindowSummary(**base)

    def test_merge_adds_counts_and_recomputes_cf(self):
        left = self.summary()
        right = self.summary(
            index=1, first_sample=100, short_rcds=30,
            contribution_factor=0.3, victim_sets=[2, 3],
        )
        merged = left.merge(right, cf_boundary=0.25)
        assert merged.sample_count == 200
        assert merged.short_rcds == 40
        assert merged.contribution_factor == 40 / 200
        assert merged.victim_sets == [1, 2, 3]
        assert merged.rcd_observations == 80
        assert merged.merged_from == 2
        assert merged.first_sample == 0 and merged.index == 0

    def test_merge_conflict_is_sticky(self):
        left = self.summary(has_conflict=True, contribution_factor=0.9)
        right = self.summary(index=1, first_sample=100, short_rcds=0)
        assert left.merge(right, cf_boundary=0.25).has_conflict

    def test_merge_rejects_out_of_order(self):
        later = self.summary(index=1, first_sample=100)
        with pytest.raises(AnalysisError, match="later window"):
            later.merge(self.summary(), cf_boundary=0.25)

    def test_to_phase_report_round_trip(self):
        report = self.summary().to_phase_report()
        assert report.sample_count == 100
        assert report.victim_sets == [1]


class TestTimeline:
    def test_timeline_record_coalesces_to_cap(self, paper_l1):
        samples = sampled(conflict_phase(paper_l1, laps=2000), paper_l1)
        analysis = stream_verdicts(samples, paper_l1, window=64)
        assert len(analysis.summaries) > 16
        record = analysis.timeline_record(max_windows=16)
        assert record["coalesced"] is True
        assert 1 <= len(record["windows"]) <= 16
        # Coalescing never loses samples or conflicts.
        assert sum(w["samples"] for w in record["windows"]) == len(samples)
        assert any(w["conflict"] for w in record["windows"])
        assert sum(w["merged_from"] for w in record["windows"]) == len(
            analysis.summaries
        )

    def test_timeline_record_validates_against_manifest_schema(self, paper_l1):
        from repro.obs.manifest import validate_timeline

        samples = sampled(mixed_trace(paper_l1), paper_l1)
        record = stream_verdicts(samples, paper_l1, window=64).timeline_record()
        validate_timeline(record)  # must not raise
        assert record["version"] == 1
        assert record["total_samples"] == len(samples)

    def test_timeline_record_rejects_bad_cap(self, paper_l1):
        analysis = stream_verdicts([], paper_l1)
        with pytest.raises(AnalysisError, match="max_windows"):
            analysis.timeline_record(max_windows=0)

    def test_transitions_and_victims(self, paper_l1):
        samples = sampled(mixed_trace(paper_l1), paper_l1)
        analysis = stream_verdicts(samples, paper_l1, window=64)
        flips = analysis.transitions()
        assert flips  # clean -> conflict -> clean flips at least once
        assert 0 < analysis.conflict_fraction < 1
        assert 0 in analysis.victim_sets()  # conflict lines map to set 0

    def test_export_jsonl(self, tmp_path, paper_l1):
        samples = sampled(mixed_trace(paper_l1), paper_l1)
        analysis = stream_verdicts(samples, paper_l1, window=64)
        path = tmp_path / "timeline.jsonl"
        count = analysis.export_jsonl(path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert count == len(records) == len(analysis.summaries)
        assert [r["index"] for r in records] == list(range(count))


class TestObservability:
    def test_metrics_emitted(self, paper_l1):
        registry = MetricsRegistry(enabled=True)
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        with use_registry(registry):
            analysis = stream_verdicts(samples, paper_l1, window=64)
        emitted = registry.counter("analysis.window.emitted").value
        assert emitted == len(analysis.summaries)
        assert registry.counter("analysis.window.conflicts").value == len(
            analysis.conflict_windows()
        )
        assert (
            registry.gauge("analysis.window.peak_tracked").value
            == analysis.peak_tracked
        )

    def test_trailing_fold_counted(self, paper_l1):
        registry = MetricsRegistry(enabled=True)
        samples = sampled(conflict_phase(paper_l1), paper_l1)[:300]
        with use_registry(registry):
            analysis = stream_verdicts(
                samples, paper_l1, window=256, min_window=64
            )
        assert analysis.folded
        assert registry.counter("analysis.window.folds").value == 1
        assert analysis.summaries[-1].sample_count == 300

    def test_window_spans_never_land_as_roots(self, paper_l1):
        tracer = Tracer(enabled=True)
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        with use_tracer(tracer):
            stream_verdicts(samples, paper_l1, window=64)
        assert tracer.roots == []  # would flood the root cap otherwise

    def test_window_spans_nest_under_enclosing_span(self, paper_l1):
        tracer = Tracer(enabled=True)
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        with use_tracer(tracer):
            with tracer.span("stage"):
                analysis = stream_verdicts(samples, paper_l1, window=64)
        (root,) = tracer.roots
        window_spans = [
            child for child in root.children if child.name == "analysis.window"
        ]
        assert len(window_spans) == len(analysis.summaries)

    def test_on_window_callback_sees_every_window_in_order(self, paper_l1):
        seen = []
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        analyzer = StreamingPhaseAnalyzer(
            paper_l1, window=64, on_window=seen.append
        )
        analyzer.feed(samples)
        analysis = analyzer.finish()
        assert seen == analysis.summaries


class TestValidation:
    def test_rejects_bad_window(self, paper_l1):
        with pytest.raises(AnalysisError, match="window"):
            StreamingPhaseAnalyzer(paper_l1, window=0)

    def test_rejects_bad_min_window(self, paper_l1):
        with pytest.raises(AnalysisError, match="min_window"):
            StreamingPhaseAnalyzer(paper_l1, window=16, min_window=17)

    def test_rejects_bad_threshold(self, paper_l1):
        with pytest.raises(AnalysisError, match="threshold"):
            StreamingPhaseAnalyzer(paper_l1, rcd_threshold=0)

    def test_feed_after_finish_rejected(self, paper_l1):
        analyzer = StreamingPhaseAnalyzer(paper_l1)
        analyzer.finish()
        with pytest.raises(AnalysisError, match="finished"):
            analyzer.feed_sets([0])

    def test_finish_is_idempotent(self, paper_l1):
        analyzer = StreamingPhaseAnalyzer(paper_l1)
        analyzer.feed_sets([0, 1, 2])
        assert analyzer.finish() is analyzer.finish()

    def test_iter_address_chunks_rejects_bad_chunk(self):
        with pytest.raises(AnalysisError, match="chunk_size"):
            list(iter_address_chunks(np.array([1], dtype=np.uint64), 0))

    def test_iter_address_chunks_buffers_records(self, paper_l1):
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        chunks = list(iter_address_chunks(iter(samples), chunk_size=100))
        assert sum(chunk.size for chunk in chunks) == len(samples)
        assert all(chunk.size <= 100 for chunk in chunks[:-1])


class TestEngineHook:
    """windowed_phases on every registered backend matches the oracle."""

    def test_backend_matches_batch(self, engine_backend, paper_l1):
        samples = sampled(mixed_trace(paper_l1), paper_l1)
        column = np.array([s.address for s in samples], dtype=np.uint64)
        batch = PhaseAnalyzer(paper_l1, window=64).analyze(samples)
        analysis = engine_backend.windowed_phases(
            column, paper_l1, window=64
        )
        assert analysis.to_phased() == batch

    def test_backend_accepts_record_stream(self, engine_backend, paper_l1):
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        batch = PhaseAnalyzer(paper_l1, window=64).analyze(samples)
        analysis = engine_backend.windowed_phases(samples, paper_l1, window=64)
        assert analysis.to_phased() == batch

    def test_scalar_and_batched_are_native(self, paper_l1):
        for name in ("scalar", "batched"):
            backend = get_backend(name)
            assert "windowed" in backend.capabilities
            samples = sampled(conflict_phase(paper_l1), paper_l1)
            analysis = backend.windowed_phases(samples, paper_l1, window=64)
            assert analysis.engine == name
            assert analysis.fallback_from is None

    def test_sharded_falls_back_and_records_it(self, paper_l1):
        backend = get_backend("sharded")
        assert "windowed" not in backend.capabilities
        registry = MetricsRegistry(enabled=True)
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        with use_registry(registry):
            analysis = backend.windowed_phases(samples, paper_l1, window=64)
        assert analysis.engine == "batched"
        assert analysis.fallback_from == "sharded"
        assert registry.counter("engine.sharded.windowed_fallback").value == 1
        assert analysis.timeline_record()["fallback_from"] == "sharded"
        batch = PhaseAnalyzer(paper_l1, window=64).analyze(samples)
        assert analysis.to_phased() == batch
