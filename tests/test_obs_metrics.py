"""Tests for repro.obs.metrics."""

import pytest

from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc()
        assert registry.counter("c").value == 2


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestHistogramBuckets:
    """The fixed log2 layout: bucket k holds [2^(k-1), 2^k)."""

    def test_zero_lands_in_bucket_zero(self):
        assert Histogram.bucket_index(0) == 0

    def test_negative_lands_in_bucket_zero(self):
        assert Histogram.bucket_index(-7) == 0

    def test_one_lands_in_bucket_one(self):
        assert Histogram.bucket_index(1) == 1

    def test_powers_of_two_open_their_bucket(self):
        for k in range(1, 62):
            assert Histogram.bucket_index(2**k) == k + 1
            assert Histogram.bucket_index(2**k - 1) == k

    def test_int64_extremes(self):
        # 2^63 - 1 (INT64_MAX) still fits a value bucket; 2^63 and
        # anything larger clamp into the final overflow bucket.
        assert Histogram.bucket_index(2**63 - 1) == 63
        assert Histogram.bucket_index(2**63) == HISTOGRAM_BUCKETS - 1
        assert Histogram.bucket_index(2**200) == HISTOGRAM_BUCKETS - 1

    def test_observe_keeps_exact_moments(self):
        histogram = Histogram("h")
        for value in (0, 1, 5, 2**63):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 6 + 2**63
        assert histogram.min == 0
        assert histogram.max == 2**63
        assert histogram.mean == (6 + 2**63) / 4

    def test_as_dict_sparse_buckets(self):
        histogram = Histogram("h")
        histogram.observe(0)
        histogram.observe(3)
        histogram.observe(3)
        record = histogram.as_dict()
        assert record["buckets"] == {"0": 1, "2": 2}
        assert record["count"] == 3

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.as_dict() == {
            "count": 0, "sum": 0, "min": None, "max": None, "buckets": {},
        }


class TestDisabledRegistry:
    def test_hands_out_noop_instruments(self):
        NULL_REGISTRY.counter("c").inc(100)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(7)
        snapshot = NULL_REGISTRY.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_noop_instruments_are_shared(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")


class TestRegistry:
    def test_snapshot_layout(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc()
        registry.gauge("g").set(3.5)
        registry.histogram("h").observe(9)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"]["b"] == 2
        assert snapshot["gauges"] == {"g": 3.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_use_registry_installs_and_restores(self):
        before = get_registry()
        injected = MetricsRegistry()
        with use_registry(injected):
            assert get_registry() is injected
            get_registry().counter("inside").inc()
        assert get_registry() is before
        assert injected.counter("inside").value == 1

    def test_use_registry_restores_on_exception(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        original = get_registry()
        injected = MetricsRegistry()
        previous = set_registry(injected)
        try:
            assert previous is original
            assert get_registry() is injected
        finally:
            set_registry(original)
