"""Tests for repro.robustness.budget and the sampler watchdog."""

import itertools

import pytest

from repro.errors import SamplingError
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.robustness.budget import SamplingBudget
from tests.conftest import make_load


def endless_trace():
    """An infinite conflict trace — the runaway target a watchdog exists for.

    Sixteen lines folding onto one 8-way set, so every access past warm-up
    is an L1 miss and the event counter keeps climbing.
    """
    mapping_period = 64 * 64  # line_size * num_sets of the default geometry
    for i in itertools.count():
        yield make_load(0x1000 + (i % 16) * mapping_period)


class TestSamplingBudget:
    def test_unlimited_by_default(self):
        assert SamplingBudget().unlimited

    def test_invalid_limits_rejected(self):
        with pytest.raises(SamplingError):
            SamplingBudget(max_events=0)
        with pytest.raises(SamplingError):
            SamplingBudget(deadline_seconds=0.0)

    def test_tracker_latches_first_reason(self):
        tracker = SamplingBudget(max_events=10, max_accesses=10).tracker()
        assert tracker.exhausted_after(10, 3, 0) is not None
        first = tracker.reason
        # Later calls keep reporting the original cause.
        assert tracker.exhausted_after(10_000, 10_000, 10_000) == first


class TestSamplerWatchdog:
    def test_event_budget_truncates_run(self):
        sampler = AddressSampler(
            period=FixedPeriod(5), budget=SamplingBudget(max_events=100)
        )
        result = sampler.run(endless_trace())
        assert result.truncated
        assert "event budget" in result.truncation_reason
        assert result.total_events == 100
        assert result.samples  # the prefix profile is still usable

    def test_access_budget_truncates_run(self):
        sampler = AddressSampler(period=FixedPeriod(5))
        result = sampler.run(
            endless_trace(), budget=SamplingBudget(max_accesses=5000)
        )
        assert result.truncated
        assert result.total_accesses == 5000

    def test_sample_budget_truncates_run(self):
        result = AddressSampler(period=FixedPeriod(5)).run(
            endless_trace(), budget=SamplingBudget(max_samples=7)
        )
        assert result.truncated
        assert len(result.samples) == 7

    def test_deadline_uses_injected_clock(self):
        ticks = iter(x * 0.25 for x in itertools.count())
        budget = SamplingBudget(
            deadline_seconds=0.5, clock=lambda: next(ticks)
        )
        result = AddressSampler(period=FixedPeriod(5)).run(
            endless_trace(), budget=budget
        )
        assert result.truncated
        assert "deadline" in result.truncation_reason

    def test_finite_trace_within_budget_is_not_truncated(self):
        trace = [make_load(0x1000 + 64 * i) for i in range(100)]
        result = AddressSampler(period=FixedPeriod(5)).run(
            iter(trace), budget=SamplingBudget(max_events=10_000)
        )
        assert not result.truncated
        assert result.truncation_reason is None
        assert result.total_accesses == 100

    def test_unlimited_budget_short_circuits(self):
        trace = [make_load(0x1000 + 64 * i) for i in range(50)]
        with_budget = AddressSampler(period=FixedPeriod(5)).run(
            iter(trace), budget=SamplingBudget()
        )
        without = AddressSampler(period=FixedPeriod(5)).run(iter(trace))
        assert with_budget.samples == without.samples

    def test_truncation_survives_profile_round_trip(self, tmp_path):
        from repro.pmu.monitor import MonitorSession, RawProfile

        session = MonitorSession(
            period=FixedPeriod(5), budget=SamplingBudget(max_events=50)
        )
        profile = session.profile(endless_trace())
        assert profile.sampling.truncated
        path = tmp_path / "truncated.jsonl"
        profile.dump_samples(path)
        loaded = RawProfile.load_samples(path)
        assert loaded.sampling.truncated
        assert loaded.sampling.truncation_reason == (
            profile.sampling.truncation_reason
        )


class TestConcurrentSessionBudgets:
    """Two live MonitorSessions sharing the default registry must not
    bleed budget telemetry into each other: each session's truncation
    reflects its own budget, and the per-limit trip counters attribute
    one trip to each session's limit — not two to either."""

    def _session(self, budget, seed):
        from repro.pmu.monitor import MonitorSession

        return MonitorSession(
            period=FixedPeriod(3), seed=seed, budget=budget
        )

    def test_no_cross_session_counter_bleed(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as registry:
            # Both sessions exist before either runs — the service daemon's
            # worker pool does exactly this.
            by_events = self._session(SamplingBudget(max_events=32), seed=1)
            by_samples = self._session(SamplingBudget(max_samples=4), seed=2)

            profile_a = by_events.profile(
                itertools.islice(endless_trace(), 100_000)
            )
            profile_b = by_samples.profile(
                itertools.islice(endless_trace(), 100_000)
            )

            # Each run latched its own limit...
            assert profile_a.sampling.truncated
            assert "event budget" in profile_a.sampling.truncation_reason
            assert profile_b.sampling.truncated
            assert "sample budget" in profile_b.sampling.truncation_reason
            # ...and tripped exactly its own counter, once.
            counters = registry.snapshot()["counters"]
            assert counters.get("pmu.budget.tripped.max_events") == 1
            assert counters.get("pmu.budget.tripped.max_samples") == 1
            assert "pmu.budget.tripped.deadline_seconds" not in counters
            assert "pmu.budget.tripped.max_accesses" not in counters

    def test_gauges_reflect_each_configured_limit(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as registry:
            self._session(SamplingBudget(max_events=32), seed=1).profile(
                itertools.islice(endless_trace(), 50_000)
            )
            self._session(SamplingBudget(max_samples=4), seed=2).profile(
                itertools.islice(endless_trace(), 50_000)
            )
            gauges = registry.snapshot()["gauges"]
            # Both limits were published; neither overwrote the other's
            # gauge (they are distinct per-limit names).
            assert gauges.get("pmu.budget.max_events") == 32
            assert gauges.get("pmu.budget.max_samples") == 4

    def test_interleaved_scalar_and_batched_engines(self):
        from repro.obs.metrics import MetricsRegistry, use_registry
        from repro.pmu.monitor import MonitorSession

        with use_registry(MetricsRegistry()) as registry:
            scalar = MonitorSession(
                period=FixedPeriod(3), seed=3, engine="scalar",
                budget=SamplingBudget(max_events=16),
            )
            batched = MonitorSession(
                period=FixedPeriod(3), seed=3, engine="batched",
                budget=SamplingBudget(max_events=16),
            )
            a = scalar.profile(itertools.islice(endless_trace(), 50_000))
            b = batched.profile(itertools.islice(endless_trace(), 50_000))
            assert a.sampling.truncated and b.sampling.truncated
            counters = registry.snapshot()["counters"]
            assert counters.get("pmu.budget.tripped.max_events") == 2
