"""Tests for repro.trace.synthetic."""

from collections import Counter

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import TraceError
from repro.trace.synthetic import (
    markov_trace,
    uniform_trace,
    zipf_trace,
    zipf_weights,
)


class TestUniform:
    def test_count_and_bounds(self):
        trace = list(uniform_trace(1000, working_set_lines=64, seed=1))
        assert len(trace) == 1000
        lines = {(a.address - trace[0].address % 64) // 64 for a in trace}
        assert all(0 <= a.address for a in trace)

    def test_deterministic(self):
        first = [a.address for a in uniform_trace(100, 32, seed=7)]
        second = [a.address for a in uniform_trace(100, 32, seed=7)]
        assert first == second

    def test_covers_working_set(self):
        lines = {a.address for a in uniform_trace(5000, 16, seed=2)}
        assert len(lines) == 16

    def test_validation(self):
        with pytest.raises(TraceError):
            list(uniform_trace(10, 0))


class TestZipf:
    def test_weights_normalized_and_decreasing(self):
        weights = zipf_weights(100, 1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_skewed_popularity(self):
        trace = list(zipf_trace(20_000, 1024, exponent=1.3, seed=3))
        counts = Counter(a.address for a in trace)
        top = counts.most_common(10)
        top_share = sum(count for _, count in top) / len(trace)
        assert top_share > 0.3  # heavy head

    def test_higher_exponent_more_skew(self):
        def head_share(exponent):
            trace = list(zipf_trace(10_000, 512, exponent=exponent, seed=4))
            counts = Counter(a.address for a in trace)
            return counts.most_common(1)[0][1] / len(trace)

        assert head_share(2.0) > head_share(0.8)

    def test_validation(self):
        with pytest.raises(TraceError):
            zipf_weights(0, 1.0)
        with pytest.raises(TraceError):
            zipf_weights(10, 0.0)


class TestMarkov:
    def test_sequential_runs_visible(self):
        trace = [a.address for a in markov_trace(1000, 4096, run_length=64,
                                                 jump_probability=0.0, seed=5)]
        deltas = Counter(b - a for a, b in zip(trace, trace[1:]))
        assert deltas[8] > 900  # mostly element-sized sequential steps

    def test_jump_probability_one_is_random(self):
        trace = [a.address for a in markov_trace(1000, 4096,
                                                 jump_probability=1.0, seed=6)]
        deltas = Counter(b - a for a, b in zip(trace, trace[1:]))
        assert deltas[8] < 100

    def test_validation(self):
        with pytest.raises(TraceError):
            list(markov_trace(10, 16, jump_probability=1.5))
        with pytest.raises(TraceError):
            list(markov_trace(10, 16, run_length=0))


class TestCacheBehaviourOfModels:
    """Sanity: the three locality models order as expected on a real cache."""

    def test_miss_ratio_ordering(self, paper_l1):
        def miss_ratio(trace):
            cache = SetAssociativeCache(paper_l1)
            return cache.run_trace(trace).miss_ratio

        working_set = 4096  # 8x the cache
        uniform = miss_ratio(uniform_trace(20_000, working_set, seed=8))
        zipf = miss_ratio(zipf_trace(20_000, working_set, exponent=1.3, seed=8))
        markov = miss_ratio(markov_trace(20_000, working_set, seed=8))
        # Zipf's hot head caches well; markov's runs amortize lines; pure
        # uniform over 8x capacity misses the most.
        assert zipf < uniform
        assert markov < uniform

    def test_no_conflict_structure_in_uniform(self, paper_l1):
        from repro.core.contribution import contribution_factor
        from repro.core.rcd import RcdAnalysis

        cache = SetAssociativeCache(paper_l1)
        sets = []
        for access in uniform_trace(30_000, 4096, seed=9):
            if cache.access(access.address).miss:
                sets.append(paper_l1.set_index(access.address))
        analysis = RcdAnalysis.from_set_sequence(sets, paper_l1.num_sets)
        # Random traffic is capacity-bound, not conflict-bound.
        assert contribution_factor(analysis) < 0.2
