"""Tests for repro.pmu.monitor (profiles + serialization)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import SamplingError
from repro.pmu.monitor import MonitorSession, RawProfile
from repro.pmu.periods import FixedPeriod
from tests.conftest import make_load


def simple_trace(geometry):
    for repeat in range(20):
        for i in range(12):
            yield make_load(i * geometry.mapping_period, ip=0x400100)


class TestMonitorSession:
    def test_profile_produces_samples(self, paper_l1, allocator):
        session = MonitorSession(paper_l1, period=FixedPeriod(5))
        profile = session.profile(simple_trace(paper_l1), allocator=allocator)
        assert profile.sampling.sample_count > 0
        assert profile.allocator is allocator

    def test_reproducible_across_sessions(self, paper_l1):
        def samples():
            session = MonitorSession(paper_l1, period=FixedPeriod(5), seed=9)
            return session.profile(simple_trace(paper_l1)).sampling.samples

        assert samples() == samples()


class TestProfileSerialization:
    def test_round_trip(self, paper_l1, tmp_path):
        session = MonitorSession(paper_l1, period=FixedPeriod(5))
        profile = session.profile(simple_trace(paper_l1))
        path = tmp_path / "profile.jsonl"
        written = profile.dump_samples(path)
        assert written == profile.sampling.sample_count

        loaded = RawProfile.load_samples(path)
        assert loaded.sampling.samples == profile.sampling.samples
        assert loaded.sampling.total_events == profile.sampling.total_events
        assert loaded.sampling.geometry == paper_l1

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SamplingError, match="empty"):
            RawProfile.load_samples(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ip": 1, "addr": 2, "event": 0, "access": 0}\n')
        with pytest.raises(SamplingError, match="header"):
            RawProfile.load_samples(path)


class TestCorruptProfiles:
    def test_malformed_header_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(SamplingError, match="malformed header"):
            RawProfile.load_samples(path)

    def test_header_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"header": {"line_size": 64}}\n')
        with pytest.raises(SamplingError, match="missing field"):
            RawProfile.load_samples(path)

    def test_malformed_sample_record(self, tmp_path, paper_l1):
        session = MonitorSession(paper_l1, period=FixedPeriod(5))
        profile = session.profile(simple_trace(paper_l1))
        path = tmp_path / "profile.jsonl"
        profile.dump_samples(path)
        with open(path, "a") as handle:
            handle.write('{"ip": 1}\n')  # missing addr/event/access
        with pytest.raises(SamplingError, match="malformed sample record"):
            RawProfile.load_samples(path)

    def test_blank_lines_tolerated(self, tmp_path, paper_l1):
        session = MonitorSession(paper_l1, period=FixedPeriod(5))
        profile = session.profile(simple_trace(paper_l1))
        path = tmp_path / "profile.jsonl"
        profile.dump_samples(path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        loaded = RawProfile.load_samples(path)
        assert loaded.sampling.samples == profile.sampling.samples
