"""Tests for repro.core.contribution — Equation 1."""

import pytest

from repro.core.contribution import (
    DEFAULT_RCD_THRESHOLD,
    contribution_factor,
    contribution_factors_by_set,
    default_threshold_for,
    short_rcd_share,
)
from repro.core.rcd import RcdAnalysis, compute_rcds
from repro.errors import AnalysisError


class TestContributionFactor:
    def test_pure_conflict_near_one(self):
        analysis = RcdAnalysis.from_set_sequence([0] * 1000, num_sets=64)
        assert contribution_factor(analysis) == pytest.approx(0.999)

    def test_balanced_near_zero(self):
        analysis = RcdAnalysis.from_set_sequence(list(range(64)) * 20, num_sets=64)
        assert contribution_factor(analysis) == 0.0

    def test_mixed(self):
        # Half the misses hammer set 0; half rotate all 64 sets.
        sequence = []
        for _ in range(10):
            sequence.extend([0] * 64)
            sequence.extend(range(64))
        analysis = RcdAnalysis.from_set_sequence(sequence, num_sets=64)
        cf = contribution_factor(analysis)
        assert 0.3 < cf < 0.7

    def test_threshold_validation(self):
        analysis = RcdAnalysis.from_set_sequence([0, 0], num_sets=64)
        with pytest.raises(AnalysisError):
            contribution_factor(analysis, threshold=0)

    def test_default_threshold_is_paper_value(self):
        assert DEFAULT_RCD_THRESHOLD == 8

    def test_threshold_scaling(self):
        assert default_threshold_for(64) == 8
        assert default_threshold_for(512) == 64
        assert default_threshold_for(4) == 1
        with pytest.raises(AnalysisError):
            default_threshold_for(0)


class TestPerSetFactors:
    def test_only_victim_sets_present(self):
        sequence = [0] * 50 + list(range(1, 64)) * 2
        analysis = RcdAnalysis.from_set_sequence(sequence, num_sets=64)
        by_set = contribution_factors_by_set(analysis)
        assert 0 in by_set
        assert by_set[0] > 0.2

    def test_sum_bounded_by_context_factor(self):
        sequence = [0, 1] * 100
        analysis = RcdAnalysis.from_set_sequence(sequence, num_sets=64)
        by_set = contribution_factors_by_set(analysis)
        assert sum(by_set.values()) <= contribution_factor(analysis) + 1e-12

    def test_empty(self):
        analysis = RcdAnalysis.from_set_sequence([], num_sets=64)
        assert contribution_factors_by_set(analysis) == {}


class TestShortRcdShare:
    def test_reads_off_the_cdf(self):
        observations = compute_rcds([0] * 10 + list(range(64)) * 2)
        share = short_rcd_share(observations, threshold=8)
        analysis = RcdAnalysis.from_set_sequence(
            [0] * 10 + list(range(64)) * 2, num_sets=64
        )
        assert share == pytest.approx(
            analysis.cdf().probability_at(7), abs=1e-9
        )

    def test_empty(self):
        assert short_rcd_share([]) == 0.0
