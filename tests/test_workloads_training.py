"""Tests for repro.workloads.training — the §5.2 classifier training set."""

import pytest

from repro.cache.classify import ThreeCClassifier
from repro.cache.geometry import CacheGeometry
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.cache.set_assoc import SetAssociativeCache
from repro.workloads.training import training_loops


@pytest.fixture(scope="module")
def loops():
    return training_loops(CacheGeometry(), repeats=25)


class TestPopulation:
    def test_sixteen_loops_eight_each(self, loops):
        assert len(loops) == 16
        assert sum(1 for loop in loops if loop.has_conflict) == 8

    def test_names_unique(self, loops):
        names = [loop.name for loop in loops]
        assert len(set(names)) == 16

    def test_factories_independent(self, loops):
        first = loops[0].factory()
        second = loops[0].factory()
        assert first is not second
        assert list(first.trace())[:10] == list(second.trace())[:10]


class TestLabelsMatchGroundTruth:
    """Every design label must agree with three-C simulation — the same
    validation the paper performs with Pin + Dinero IV."""

    @pytest.mark.parametrize("index", range(16))
    def test_label(self, loops, index):
        loop = loops[index]
        classifier = ThreeCClassifier(CacheGeometry())
        counts = classifier.run_trace(loop.factory().trace())
        simulated_conflict = counts.conflict_fraction() > 0.3
        assert simulated_conflict == loop.has_conflict, loop.name


class TestSeparability:
    def test_exact_cf_separates_populations(self, loops):
        geometry = CacheGeometry()
        features = {}
        for loop in loops:
            cache = SetAssociativeCache(geometry)
            sets = []
            for access in loop.factory().trace():
                if cache.access(access.address, access.ip).miss:
                    sets.append(geometry.set_index(access.address))
            analysis = RcdAnalysis.from_set_sequence(sets, geometry.num_sets)
            features[loop.name] = (contribution_factor(analysis), loop.has_conflict)
        conflict_cfs = [cf for cf, label in features.values() if label]
        clean_cfs = [cf for cf, label in features.values() if not label]
        # Perfectly separable with exact RCDs (the paper's ground truth).
        assert min(conflict_cfs) > max(clean_cfs)
