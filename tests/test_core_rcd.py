"""Tests for repro.core.rcd — Definition 1 and Observation 2."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.rcd import RcdAnalysis, RcdObservation, compute_rcds
from repro.errors import AnalysisError


class TestComputeRcds:
    def test_figure5_example(self):
        # Consecutive misses on set 1 separated by 3, then 1, then 2
        # intermediate misses (the spirit of the paper's Figure 5).
        sequence = [1, 2, 3, 4, 1, 5, 1, 2, 3, 1]
        observations = [o for o in compute_rcds(sequence) if o.set_index == 1]
        assert [o.rcd for o in observations] == [3, 1, 2]

    def test_first_miss_produces_no_observation(self):
        assert compute_rcds([1]) == []
        assert compute_rcds([1, 2, 3]) == []

    def test_adjacent_repeats_have_rcd_zero(self):
        observations = compute_rcds([7, 7, 7])
        assert [o.rcd for o in observations] == [0, 0]

    def test_positions_are_reuse_points(self):
        observations = compute_rcds([1, 2, 1])
        assert observations == [RcdObservation(set_index=1, rcd=1, position=2)]

    def test_empty_sequence(self):
        assert compute_rcds([]) == []

    def test_round_robin_rcd_equals_period_minus_one(self):
        # Observation 2: perfectly balanced over N sets -> RCD = N - 1
        # intermediate misses (the paper states RCD ~ N; off-by-one is
        # definitional: N-1 misses *between* consecutive same-set misses).
        n = 8
        sequence = list(range(n)) * 5
        observations = compute_rcds(sequence)
        assert {o.rcd for o in observations} == {n - 1}


class TestRcdAnalysis:
    def test_from_addresses_uses_index_bits(self, paper_l1):
        addresses = [0, paper_l1.mapping_period, 2 * paper_l1.mapping_period]
        analysis = RcdAnalysis.from_addresses(addresses, paper_l1)
        # All map to set 0: two observations with RCD 0.
        assert analysis.observation_count == 2
        assert analysis.histogram().counts[0] == 2

    def test_total_misses_counts_everything(self):
        analysis = RcdAnalysis.from_set_sequence([1, 2, 1, 2], num_sets=64)
        assert analysis.total_misses == 4
        assert analysis.observation_count == 2

    def test_contribution_below(self):
        analysis = RcdAnalysis.from_set_sequence([1, 1, 1, 1], num_sets=64)
        # 3 observations, all RCD 0, denominator 4 misses.
        assert analysis.contribution_below(8) == pytest.approx(3 / 4)

    def test_contribution_empty(self):
        analysis = RcdAnalysis.from_set_sequence([], num_sets=64)
        assert analysis.contribution_below(8) == 0.0

    def test_mean_rcd_balanced_near_num_sets(self):
        n = 64
        sequence = list(range(n)) * 4
        analysis = RcdAnalysis.from_set_sequence(sequence, num_sets=n)
        assert analysis.mean_rcd() == pytest.approx(n - 1)

    def test_mean_rcd_conflicting_is_small(self):
        analysis = RcdAnalysis.from_set_sequence([3] * 100, num_sets=64)
        assert analysis.mean_rcd() == 0.0

    def test_mean_rcd_requires_observations(self):
        analysis = RcdAnalysis.from_set_sequence([1, 2], num_sets=64)
        with pytest.raises(AnalysisError):
            analysis.mean_rcd()

    def test_cdf_requires_observations(self):
        analysis = RcdAnalysis.from_set_sequence([1], num_sets=64)
        with pytest.raises(AnalysisError):
            analysis.cdf()

    def test_cdf_of_conflict_sequence_saturates_early(self):
        analysis = RcdAnalysis.from_set_sequence([5, 5, 5, 5, 5], num_sets=64)
        assert analysis.cdf().probability_at(0) == 1.0

    def test_per_set_histograms(self):
        analysis = RcdAnalysis.from_set_sequence([1, 2, 1, 2], num_sets=64)
        histograms = analysis.per_set_histograms()
        assert set(histograms) == {1, 2}
        assert histograms[1].counts[1] == 1

    def test_victim_sets(self):
        # Set 9 is hammered; sets 0..7 rotate with RCD 8 (above threshold).
        sequence = []
        for _ in range(10):
            sequence.extend([9, 0, 1, 2, 3, 4, 5, 6, 7, 9])
        analysis = RcdAnalysis.from_set_sequence(sequence, num_sets=64)
        victims = analysis.victim_sets(threshold=8)
        assert 9 in victims
        assert 0 not in victims

    def test_sets_observed(self):
        analysis = RcdAnalysis.from_set_sequence([1, 2, 3, 1, 2], num_sets=64)
        assert analysis.sets_observed() == 2  # only 1 and 2 repeat


class TestSampledRcdPreservesImbalance:
    """§3.3: RCD computed on a subsample keeps the conflict signature."""

    def test_uniform_sequence_sampled_stays_long(self):
        import random

        n = 64
        full = list(range(n)) * 200
        rng = random.Random(0)
        sampled = [s for s in full if rng.random() < 0.05]
        analysis = RcdAnalysis.from_set_sequence(sampled, num_sets=n)
        # Balanced traffic: mean sampled RCD stays near N, far above T=8.
        assert analysis.mean_rcd() > 30
        assert analysis.contribution_below(8) < 0.25

    def test_conflicting_sequence_sampled_stays_short(self):
        import random

        full = [3] * 6000 + [5] * 6000  # two victim sets back to back
        rng = random.Random(1)
        sampled = [s for s in full if rng.random() < 0.05]
        analysis = RcdAnalysis.from_set_sequence(sampled, num_sets=64)
        assert analysis.mean_rcd() < 2
        assert analysis.contribution_below(8) > 0.8
