"""Tests for repro.trace.allocator."""

import pytest

from repro.errors import AllocationError
from repro.trace.allocator import VirtualAllocator


class TestMalloc:
    def test_returns_nonoverlapping_ranges(self, allocator):
        first = allocator.malloc(100, "a")
        second = allocator.malloc(100, "b")
        assert first.end <= second.start

    def test_respects_alignment(self):
        allocator = VirtualAllocator(alignment=64)
        allocation = allocator.malloc(10, "x")
        assert allocation.start % 64 == 0

    def test_per_call_alignment_override(self, allocator):
        allocation = allocator.malloc(10, "x", align=4096)
        assert allocation.start % 4096 == 0

    def test_guard_gap_separates_allocations(self):
        allocator = VirtualAllocator(guard_gap=32, alignment=1)
        first = allocator.malloc(16, "a")
        second = allocator.malloc(16, "b")
        assert second.start - first.end >= 32

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError, match="positive"):
            allocator.malloc(0, "empty")

    def test_bad_alignment_rejected(self, allocator):
        with pytest.raises(AllocationError, match="power of two"):
            allocator.malloc(8, "x", align=3)

    def test_tight_packing_without_guard(self):
        # Contiguity matters: NW's inter-array conflict needs adjacency.
        allocator = VirtualAllocator(alignment=1, guard_gap=0)
        first = allocator.malloc(100, "a")
        second = allocator.malloc(100, "b")
        assert second.start == first.end


class TestFind:
    def test_finds_covering_allocation(self, allocator):
        allocation = allocator.malloc(64, "arr")
        assert allocator.find(allocation.start) == allocation
        assert allocator.find(allocation.start + 63).label == "arr"

    def test_miss_before_heap(self, allocator):
        allocator.malloc(64, "arr")
        assert allocator.find(0) is None

    def test_miss_in_gap(self):
        allocator = VirtualAllocator(guard_gap=64)
        first = allocator.malloc(16, "a")
        allocator.malloc(16, "b")
        assert allocator.find(first.end + 1) is None

    def test_freed_allocation_still_resolves(self, allocator):
        allocation = allocator.malloc(64, "arr")
        allocator.free(allocation)
        found = allocator.find(allocation.start + 8)
        assert found is not None and found.label == "arr" and found.freed


class TestFree:
    def test_double_free_rejected(self, allocator):
        allocation = allocator.malloc(8, "x")
        allocator.free(allocation)
        with pytest.raises(AllocationError, match="double free"):
            allocator.free(allocation)

    def test_free_unknown_rejected(self, allocator):
        from repro.trace.allocator import Allocation

        with pytest.raises(AllocationError, match="no allocation"):
            allocator.free(Allocation(start=0xDEAD, size=8, label="ghost"))


class TestAllocationRecord:
    def test_contains_and_offset(self, allocator):
        allocation = allocator.malloc(100, "arr")
        assert allocation.contains(allocation.start + 50)
        assert allocation.offset_of(allocation.start + 50) == 50

    def test_offset_outside_raises(self, allocator):
        allocation = allocator.malloc(100, "arr")
        with pytest.raises(AllocationError, match="outside"):
            allocation.offset_of(allocation.end)

    def test_by_label(self, allocator):
        allocator.malloc(8, "first")
        allocator.malloc(8, "second")
        assert allocator.by_label("second").label == "second"

    def test_by_label_missing(self, allocator):
        with pytest.raises(AllocationError, match="no allocation labelled"):
            allocator.by_label("ghost")

    def test_bookkeeping(self, allocator):
        allocator.malloc(100, "a")
        allocator.malloc(50, "b")
        assert allocator.bytes_allocated == 150
        assert len(allocator) == 2
        assert [a.label for a in allocator] == ["a", "b"]


class TestValidation:
    def test_bad_base(self):
        with pytest.raises(AllocationError):
            VirtualAllocator(base=-1)

    def test_bad_default_alignment(self):
        with pytest.raises(AllocationError):
            VirtualAllocator(alignment=0)

    def test_bad_guard_gap(self):
        with pytest.raises(AllocationError):
            VirtualAllocator(guard_gap=-1)
