"""Tests for the Rodinia suite generators (Figure 7 cast)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.event import L1_MISS_EVENT
from repro.pmu.sampler import AddressSampler
from repro.pmu.periods import FixedPeriod
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.rodinia import RODINIA_APPS, make_rodinia_workload


class TestRegistry:
    def test_eighteen_apps(self):
        assert len(RODINIA_APPS) == 18

    def test_nw_included_and_real(self):
        workload = make_rodinia_workload("nw")
        assert isinstance(workload, NeedlemanWunschWorkload)

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown Rodinia app"):
            make_rodinia_workload("doom")

    @pytest.mark.parametrize("app", [a for a in RODINIA_APPS if a != "nw"])
    def test_every_app_produces_a_trace(self, app):
        workload = make_rodinia_workload(app)
        trace = workload.trace()
        first = next(trace)
        assert first.address > 0

    @pytest.mark.parametrize("app", ["bfs", "hotspot", "kmeans", "lud"])
    def test_images_have_a_hot_loop(self, app):
        workload = make_rodinia_workload(app)
        forest = workload.image.loop_forest(f"{app}_kernel")
        assert len(forest) >= 1


class TestBalancedCharacter:
    """The non-NW apps must be conflict-free: low cf at the paper's T=8."""

    @pytest.mark.parametrize(
        "app", ["hotspot", "kmeans", "pathfinder", "bfs", "srad", "lud"]
    )
    def test_low_contribution_factor(self, app, paper_l1):
        workload = make_rodinia_workload(app)
        sampler = AddressSampler(paper_l1, period=FixedPeriod(7), event=L1_MISS_EVENT)
        result = sampler.run(workload.trace())
        if result.sample_count < 20:
            pytest.skip(f"{app} generated too few misses to judge")
        analysis = RcdAnalysis.from_addresses(
            (sample.address for sample in result.samples), paper_l1
        )
        # Paper §5.1: clean Rodinia loops sit at 10-20% below RCD 8.
        assert contribution_factor(analysis) < 0.3
