"""Tests for repro.core.report."""

import pytest

from repro.core.classifier import Implication
from repro.core.report import ConflictReport, DataStructureReport, LoopReport


def make_report():
    conflict_loop = LoopReport(
        loop_name="needle.cpp:189",
        sample_count=900,
        miss_contribution=0.2951,
        contribution_factor=0.88,
        sets_utilized=64,
        mean_rcd=2.5,
        probability=0.97,
        has_conflict=True,
        implication=Implication.STRONG_CONFLICT,
        data_structures=[DataStructureReport("reference", 600, 0.67)],
    )
    clean_loop = LoopReport(
        loop_name="needle.cpp:289",
        sample_count=600,
        miss_contribution=0.192,
        contribution_factor=0.12,
        sets_utilized=64,
        mean_rcd=60.0,
    )
    return ConflictReport(
        workload_name="nw",
        mean_sampling_period=1212,
        total_samples=3000,
        total_events=3_600_000,
        rcd_threshold=8,
        loops=[conflict_loop, clean_loop],
    )


class TestQueries:
    def test_conflicting_loops(self):
        report = make_report()
        assert [loop.loop_name for loop in report.conflicting_loops()] == [
            "needle.cpp:189"
        ]
        assert report.has_conflicts

    def test_loop_lookup(self):
        report = make_report()
        assert report.loop("needle.cpp:289").contribution_factor == 0.12
        with pytest.raises(KeyError):
            report.loop("ghost")

    def test_no_conflicts_case(self):
        report = make_report()
        report.loops = [report.loops[1]]
        assert not report.has_conflicts


class TestRendering:
    def test_render_contains_all_loops(self):
        text = make_report().render()
        assert "needle.cpp:189" in text
        assert "needle.cpp:289" in text

    def test_render_shows_verdicts(self):
        text = make_report().render()
        assert "CONFLICT" in text
        assert "ok" in text

    def test_render_shows_data_structures(self):
        text = make_report().render()
        assert "reference" in text

    def test_render_empty(self):
        report = ConflictReport(
            workload_name="x",
            mean_sampling_period=100,
            total_samples=0,
            total_events=0,
            rcd_threshold=8,
        )
        assert "no hot loops" in report.render()

    def test_loop_describe_handles_missing_metrics(self):
        loop = LoopReport(
            loop_name="l",
            sample_count=1,
            miss_contribution=0.01,
            contribution_factor=0.0,
            sets_utilized=1,
        )
        text = loop.describe()
        assert "ok" in text and "-" in text
