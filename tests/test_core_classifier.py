"""Tests for repro.core.classifier — §3.4's model and Table 1."""

import pytest

from repro.core.classifier import (
    ConflictClassifier,
    Implication,
    TrainingExample,
    implication_for,
)
from repro.errors import ModelError


def paper_like_examples():
    """16 loops, 8 conflicting / 8 clean, cf populations as published:
    conflict loops at 0.37+ (MKL FFT) up to 0.88+ (NW), clean Rodinia loops
    at 0.10-0.20 (§5.1, §6)."""
    clean = [0.10, 0.12, 0.13, 0.15, 0.16, 0.18, 0.19, 0.20]
    conflicting = [0.37, 0.45, 0.55, 0.65, 0.72, 0.80, 0.85, 0.88]
    return [
        *(TrainingExample(cf, False, f"clean{i}") for i, cf in enumerate(clean)),
        *(TrainingExample(cf, True, f"conf{i}") for i, cf in enumerate(conflicting)),
    ]


class TestTable1:
    def test_low_rcd_high_contribution_is_strong_signal(self):
        assert (
            implication_for(rcd_is_low=True, contribution_is_high=True)
            is Implication.STRONG_CONFLICT
        )

    def test_low_rcd_low_contribution_is_insignificant(self):
        assert (
            implication_for(rcd_is_low=True, contribution_is_high=False)
            is Implication.INSIGNIFICANT
        )

    def test_high_rcd_is_no_conflict_either_way(self):
        for contribution in (True, False):
            assert (
                implication_for(rcd_is_low=False, contribution_is_high=contribution)
                is Implication.NO_CONFLICT
            )


class TestClassifier:
    def test_fit_and_predict_published_populations(self):
        classifier = ConflictClassifier().fit(paper_like_examples())
        assert classifier.predict(0.88)        # NW-like
        assert classifier.predict(0.37)        # MKL-FFT-like
        assert not classifier.predict(0.15)    # clean Rodinia-like

    def test_probabilities_ordered(self):
        classifier = ConflictClassifier().fit(paper_like_examples())
        assert classifier.predict_proba(0.9) > classifier.predict_proba(0.5)
        assert classifier.predict_proba(0.5) > classifier.predict_proba(0.1)

    def test_decision_boundary_between_populations(self):
        classifier = ConflictClassifier().fit(paper_like_examples())
        boundary = classifier.decision_boundary()
        assert 0.20 < boundary < 0.37

    def test_cross_validated_f1_is_one_on_separable_data(self):
        classifier = ConflictClassifier().fit(paper_like_examples())
        assert classifier.cross_validated_f1(folds=8, seed=0) == 1.0

    def test_predict_many(self):
        classifier = ConflictClassifier().fit(paper_like_examples())
        verdicts = classifier.predict_many([0.1, 0.9])
        assert verdicts == [False, True]

    def test_training_summary(self):
        classifier = ConflictClassifier().fit(paper_like_examples())
        summary = classifier.training_summary()
        assert len(summary) == 16
        name, cf, label, probability = summary[0]
        assert name == "clean0" and label is False
        assert 0.0 <= probability <= 1.0


class TestClassifierValidation:
    def test_unfitted_prediction_rejected(self):
        with pytest.raises(ModelError, match="not fitted"):
            ConflictClassifier().predict(0.5)

    def test_unfitted_cv_rejected(self):
        with pytest.raises(ModelError):
            ConflictClassifier().cross_validated_f1()

    def test_too_few_examples(self):
        with pytest.raises(ModelError, match="at least 2"):
            ConflictClassifier().fit([TrainingExample(0.5, True)])

    def test_is_fitted_flag(self):
        classifier = ConflictClassifier()
        assert not classifier.is_fitted
        classifier.fit(paper_like_examples())
        assert classifier.is_fitted
