"""Tests for repro.cache.stats."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats


class TestRatios:
    def test_empty_stats(self, paper_l1):
        stats = CacheStats(geometry=paper_l1)
        assert stats.miss_ratio == 0.0
        assert stats.hit_ratio == 0.0

    def test_ratios_after_traffic(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_ratio == 0.5
        assert cache.stats.hit_ratio == 0.5


class TestSetUtilization:
    def test_sets_utilized_counts_missing_sets(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        cache.access(0)      # set 0
        cache.access(64)     # set 1
        cache.access(0)      # hit, no new set
        assert cache.stats.sets_utilized() == 2

    def test_imbalance_balanced(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        for set_index in range(paper_l1.num_sets):
            cache.access(set_index * paper_l1.line_size)
        assert cache.stats.miss_imbalance() == pytest.approx(1.0)

    def test_imbalance_concentrated(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        for i in range(64):
            cache.access(i * paper_l1.mapping_period)  # all set 0
        assert cache.stats.miss_imbalance() == pytest.approx(64.0)

    def test_no_misses_imbalance_is_one(self, paper_l1):
        stats = CacheStats(geometry=paper_l1)
        assert stats.miss_imbalance() == 1.0


class TestMergeAndExport:
    def test_merge_adds_counters(self, paper_l1):
        a = SetAssociativeCache(paper_l1)
        b = SetAssociativeCache(paper_l1)
        a.access(0, ip=1)
        b.access(4096, ip=2)
        merged = a.stats.merge(b.stats)
        assert merged.accesses == 2
        assert merged.misses == 2
        assert merged.set_misses[0] == 2
        assert merged.ip_misses[1] == 1 and merged.ip_misses[2] == 1

    def test_merge_rejects_different_geometry(self, paper_l1, tiny_cache):
        with pytest.raises(ValueError):
            CacheStats(geometry=paper_l1).merge(CacheStats(geometry=tiny_cache))

    def test_as_dict_keys(self, paper_l1):
        data = CacheStats(geometry=paper_l1).as_dict()
        for key in ("accesses", "misses", "miss_ratio", "sets_utilized"):
            assert key in data

    def test_top_miss_ips(self, paper_l1):
        cache = SetAssociativeCache(paper_l1)
        for i in range(3):
            cache.access(i * 4096, ip=0xAA)
        cache.access(9 * 4096, ip=0xBB)
        top = cache.stats.top_miss_ips(1)
        assert top == [(0xAA, 3)]
