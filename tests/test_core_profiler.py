"""Tests for repro.core.profiler — the end-to-end CCProf pipeline."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.classifier import ConflictClassifier, Implication, TrainingExample
from repro.core.profiler import AnalysisSettings, CCProf
from repro.errors import AnalysisError
from repro.pmu.periods import FixedPeriod
from repro.program.builder import ImageBuilder
from repro.trace.allocator import VirtualAllocator
from repro.trace.record import MemoryAccess


class _SyntheticWorkload:
    """One conflict loop + one clean loop, with known data structures."""

    name = "synthetic"

    def __init__(self, geometry: CacheGeometry, repeats: int = 4000):
        self.geometry = geometry
        self.repeats = repeats
        builder = ImageBuilder()
        function = builder.function("kern", file="syn.c")
        function.begin_loop(line=10)
        self.conflict_ip = function.add_statement(line=11)
        function.end_loop()
        function.begin_loop(line=20)
        self.clean_ip = function.add_statement(line=21)
        function.end_loop()
        function.finish()
        self.image = builder.build()
        self.allocator = VirtualAllocator()
        self.conflict_array = self.allocator.malloc(
            16 * geometry.mapping_period, "conflict_array"
        )
        self.clean_array = self.allocator.malloc(
            64 * geometry.mapping_period, "clean_array"
        )

    def trace(self):
        geometry = self.geometry
        for _ in range(self.repeats):
            # Conflict loop: 16 lines all in set 0.
            for i in range(16):
                yield MemoryAccess(
                    ip=self.conflict_ip,
                    address=self.conflict_array.start + i * geometry.mapping_period,
                )
            # Clean loop: sequential lines across all sets.
            for i in range(16):
                yield MemoryAccess(
                    ip=self.clean_ip,
                    address=self.clean_array.start
                    + ((self._clean_cursor() + i) * geometry.line_size)
                    % self.clean_array.size,
                )
            self._cursor = getattr(self, "_cursor", 0) + 16

    def _clean_cursor(self):
        return getattr(self, "_cursor", 0)


@pytest.fixture
def workload(paper_l1):
    return _SyntheticWorkload(paper_l1)


@pytest.fixture
def profiler(paper_l1):
    return CCProf(geometry=paper_l1, period=FixedPeriod(13), seed=1)


class TestPipeline:
    def test_conflict_loop_flagged(self, profiler, workload):
        report = profiler.run(workload)
        assert report.loop("syn.c:10").has_conflict

    def test_clean_loop_not_flagged(self, profiler, workload):
        report = profiler.run(workload)
        assert not report.loop("syn.c:20").has_conflict

    def test_contribution_factors_separate(self, profiler, workload):
        report = profiler.run(workload)
        assert report.loop("syn.c:10").contribution_factor > 0.8
        assert report.loop("syn.c:20").contribution_factor < 0.2

    def test_sets_utilized(self, profiler, workload):
        report = profiler.run(workload)
        assert report.loop("syn.c:10").sets_utilized == 1
        assert report.loop("syn.c:20").sets_utilized > 32

    def test_data_structure_attribution(self, profiler, workload):
        report = profiler.run(workload)
        structures = report.loop("syn.c:10").data_structures
        assert structures and structures[0].label == "conflict_array"

    def test_clean_loop_has_no_data_structures_reported(self, profiler, workload):
        report = profiler.run(workload)
        assert report.loop("syn.c:20").data_structures == []

    def test_implications(self, profiler, workload):
        report = profiler.run(workload)
        assert report.loop("syn.c:10").implication is Implication.STRONG_CONFLICT
        assert report.loop("syn.c:20").implication is Implication.NO_CONFLICT

    def test_report_metadata(self, profiler, workload):
        report = profiler.run(workload)
        assert report.workload_name == "synthetic"
        assert report.total_samples > 0
        assert report.rcd_threshold == 8
        assert report.has_conflicts

    def test_deterministic(self, paper_l1, workload):
        def run():
            profiler = CCProf(geometry=paper_l1, period=FixedPeriod(13), seed=7)
            return profiler.run(_SyntheticWorkload(paper_l1)).render()

        assert run() == run()


class TestClassifierIntegration:
    def test_trained_classifier_supplies_probabilities(self, paper_l1, workload):
        classifier = ConflictClassifier().fit(
            [TrainingExample(cf, False) for cf in (0.1, 0.15, 0.2)]
            + [TrainingExample(cf, True) for cf in (0.5, 0.7, 0.9)]
        )
        profiler = CCProf(
            geometry=paper_l1,
            period=FixedPeriod(13),
            classifier=classifier,
        )
        report = profiler.run(workload)
        conflict = report.loop("syn.c:10")
        assert conflict.probability is not None and conflict.probability > 0.9
        assert conflict.has_conflict


class TestSettings:
    def test_hot_loop_share_threshold(self, paper_l1, workload):
        settings = AnalysisSettings(hot_loop_share=0.99)
        profiler = CCProf(
            geometry=paper_l1, period=FixedPeriod(13), settings=settings
        )
        report = profiler.run(workload)
        # Neither loop owns 99% of samples: nothing is classified.
        assert not report.has_conflicts

    def test_custom_rcd_threshold_recorded(self, paper_l1, workload):
        settings = AnalysisSettings(rcd_threshold=4)
        profiler = CCProf(geometry=paper_l1, period=FixedPeriod(13), settings=settings)
        assert profiler.run(workload).rcd_threshold == 4

    def test_empty_workload_rejected(self, profiler):
        class Empty:
            name = "empty"
            image = None
            allocator = None

            def trace(self):
                return iter(())

        with pytest.raises(AnalysisError, match="no L1 miss events"):
            profiler.run(Empty())
