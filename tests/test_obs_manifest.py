"""Tests for repro.obs.manifest."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    git_revision,
)


def make_manifest(**overrides) -> RunManifest:
    fields = dict(
        command="analyze",
        workload="adi",
        engine="batched",
        seed=3,
        period=1212.0,
        geometry={"num_sets": 64, "ways": 8, "line_size": 64},
        revision="abc1234",
        created=1_700_000_000.0,
        config={"strict": False},
        stage_timings={"profile": 0.25, "analyze": 0.05},
        metrics={"counters": {"pmu.runs": 1}, "gauges": {}, "histograms": {}},
        sampling={"samples": 10, "events": 500, "accesses": 9000},
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        manifest = make_manifest()
        path = manifest.save(tmp_path / "run.manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest

    def test_post_init_fills_revision_and_created(self):
        manifest = RunManifest(command="profile")
        assert manifest.revision  # git short hash or "unknown"
        assert manifest.created > 0

    def test_git_revision_shape(self):
        revision = git_revision()
        assert isinstance(revision, str) and revision


class TestSchemaStrictness:
    def test_missing_command_rejected(self):
        with pytest.raises(ManifestError, match="command"):
            RunManifest.from_dict({"workload": "adi"})

    def test_unknown_field_rejected(self):
        record = make_manifest().to_dict()
        record["surprise"] = 1
        with pytest.raises(ManifestError, match="unknown fields: surprise"):
            RunManifest.from_dict(record)

    def test_version_mismatch_rejected(self):
        record = make_manifest().to_dict()
        record["version"] = MANIFEST_VERSION + 1
        with pytest.raises(ManifestError, match="unsupported manifest version"):
            RunManifest.from_dict(record)

    def test_non_object_rejected(self):
        with pytest.raises(ManifestError, match="JSON object"):
            RunManifest.from_dict([1, 2, 3])

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="unreadable"):
            RunManifest.load(path)

    def test_manifest_error_family(self):
        error = ManifestError("x")
        assert error.code == "manifest"
        assert error.exit_code == 11


class TestRendering:
    def test_render_mentions_the_essentials(self):
        rendered = make_manifest().render()
        assert "analyze adi" in rendered
        assert "abc1234" in rendered
        assert "64 sets x 8 ways x 64 B lines" in rendered
        assert "10 samples of 500 events" in rendered
        assert "profile" in rendered  # stage timings
        assert "pmu.runs" in rendered  # metrics

    def test_render_flags_truncation(self):
        manifest = make_manifest(
            sampling={
                "samples": 1, "events": 2, "accesses": 3,
                "truncated": True, "truncation_reason": "event budget",
            }
        )
        assert "truncated: event budget" in manifest.render()

    def test_render_degraded_quality(self):
        manifest = make_manifest(
            data_quality={"samples_dropped": 4, "warnings": ["lossy channel"]}
        )
        rendered = manifest.render()
        assert "DEGRADED" in rendered
        assert "lossy channel" in rendered


class TestTrippedBudgets:
    def test_names_the_tripped_limit(self):
        manifest = make_manifest(
            metrics={
                "counters": {
                    "pmu.budget.tripped.max_events": 1,
                    "pmu.budget.tripped.deadline_seconds": 0,
                    "pmu.runs": 1,
                },
                "gauges": {},
                "histograms": {},
            }
        )
        assert manifest.tripped_budgets() == ["max_events"]

    def test_empty_without_metrics(self):
        assert make_manifest(metrics={}).tripped_budgets() == []

    def test_on_disk_form_is_plain_json(self, tmp_path):
        path = make_manifest().save(tmp_path / "m.json")
        record = json.loads(path.read_text())
        assert record["version"] == MANIFEST_VERSION
        assert record["command"] == "analyze"
