"""Tests for repro.obs.manifest."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    git_revision,
)


def make_manifest(**overrides) -> RunManifest:
    fields = dict(
        command="analyze",
        workload="adi",
        engine="batched",
        seed=3,
        period=1212.0,
        geometry={"num_sets": 64, "ways": 8, "line_size": 64},
        revision="abc1234",
        created=1_700_000_000.0,
        config={"strict": False},
        stage_timings={"profile": 0.25, "analyze": 0.05},
        metrics={"counters": {"pmu.runs": 1}, "gauges": {}, "histograms": {}},
        sampling={"samples": 10, "events": 500, "accesses": 9000},
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        manifest = make_manifest()
        path = manifest.save(tmp_path / "run.manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest

    def test_post_init_fills_revision_and_created(self):
        manifest = RunManifest(command="profile")
        assert manifest.revision  # git short hash or "unknown"
        assert manifest.created > 0

    def test_git_revision_shape(self):
        revision = git_revision()
        assert isinstance(revision, str) and revision


class TestSchemaStrictness:
    def test_missing_command_rejected(self):
        with pytest.raises(ManifestError, match="command"):
            RunManifest.from_dict({"workload": "adi"})

    def test_unknown_field_rejected(self):
        record = make_manifest().to_dict()
        record["surprise"] = 1
        with pytest.raises(ManifestError, match="unknown fields: surprise"):
            RunManifest.from_dict(record)

    def test_version_mismatch_rejected(self):
        record = make_manifest().to_dict()
        record["version"] = MANIFEST_VERSION + 1
        with pytest.raises(ManifestError, match="unsupported manifest version"):
            RunManifest.from_dict(record)

    def test_non_object_rejected(self):
        with pytest.raises(ManifestError, match="JSON object"):
            RunManifest.from_dict([1, 2, 3])

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="unreadable"):
            RunManifest.load(path)

    def test_manifest_error_family(self):
        error = ManifestError("x")
        assert error.code == "manifest"
        assert error.exit_code == 11


class TestRendering:
    def test_render_mentions_the_essentials(self):
        rendered = make_manifest().render()
        assert "analyze adi" in rendered
        assert "abc1234" in rendered
        assert "64 sets x 8 ways x 64 B lines" in rendered
        assert "10 samples of 500 events" in rendered
        assert "profile" in rendered  # stage timings
        assert "pmu.runs" in rendered  # metrics

    def test_render_flags_truncation(self):
        manifest = make_manifest(
            sampling={
                "samples": 1, "events": 2, "accesses": 3,
                "truncated": True, "truncation_reason": "event budget",
            }
        )
        assert "truncated: event budget" in manifest.render()

    def test_render_degraded_quality(self):
        manifest = make_manifest(
            data_quality={"samples_dropped": 4, "warnings": ["lossy channel"]}
        )
        rendered = manifest.render()
        assert "DEGRADED" in rendered
        assert "lossy channel" in rendered


class TestTrippedBudgets:
    def test_names_the_tripped_limit(self):
        manifest = make_manifest(
            metrics={
                "counters": {
                    "pmu.budget.tripped.max_events": 1,
                    "pmu.budget.tripped.deadline_seconds": 0,
                    "pmu.runs": 1,
                },
                "gauges": {},
                "histograms": {},
            }
        )
        assert manifest.tripped_budgets() == ["max_events"]

    def test_empty_without_metrics(self):
        assert make_manifest(metrics={}).tripped_budgets() == []

    def test_on_disk_form_is_plain_json(self, tmp_path):
        path = make_manifest().save(tmp_path / "m.json")
        record = json.loads(path.read_text())
        assert record["version"] == MANIFEST_VERSION
        assert record["command"] == "analyze"


def make_timeline(**overrides) -> dict:
    record = {
        "version": 1,
        "window": 64,
        "min_window": 32,
        "rcd_threshold": 3,
        "cf_boundary": 0.25,
        "engine": "batched",
        "total_samples": 128,
        "conflict_fraction": 0.5,
        "transitions": [1],
        "coalesced": False,
        "windows": [
            {
                "index": 0,
                "first_sample": 0,
                "samples": 64,
                "cf": 0.0,
                "conflict": False,
                "victim_sets": [],
                "rcd_observations": 10,
                "short_rcds": 0,
                "sets_touched": 4,
                "merged_from": 1,
            },
            {
                "index": 1,
                "first_sample": 64,
                "samples": 64,
                "cf": 0.8,
                "conflict": True,
                "victim_sets": [0, 7],
                "rcd_observations": 50,
                "short_rcds": 40,
                "sets_touched": 2,
                "merged_from": 1,
            },
        ],
    }
    record.update(overrides)
    return record


class TestTimelineSchema:
    def test_valid_timeline_accepted(self):
        from repro.obs.manifest import validate_timeline

        assert validate_timeline(make_timeline()) == make_timeline()

    def test_optional_fallback_from_accepted(self):
        from repro.obs.manifest import validate_timeline

        validate_timeline(make_timeline(fallback_from="sharded"))

    def test_wrong_version_rejected(self):
        from repro.obs.manifest import validate_timeline

        with pytest.raises(ManifestError, match="unsupported timeline version"):
            validate_timeline(make_timeline(version=99))

    def test_unknown_field_rejected(self):
        from repro.obs.manifest import validate_timeline

        with pytest.raises(ManifestError, match="unknown fields: surprise"):
            validate_timeline(make_timeline(surprise=1))

    def test_missing_field_rejected(self):
        from repro.obs.manifest import validate_timeline

        record = make_timeline()
        del record["conflict_fraction"]
        with pytest.raises(ManifestError, match="conflict_fraction"):
            validate_timeline(record)

    def test_bool_is_not_int_in_windows(self):
        from repro.obs.manifest import validate_timeline

        record = make_timeline()
        record["windows"][0]["samples"] = True
        with pytest.raises(ManifestError, match="wrong type"):
            validate_timeline(record)

    def test_non_dict_window_rejected(self):
        from repro.obs.manifest import validate_timeline

        with pytest.raises(ManifestError, match="must be an object"):
            validate_timeline(make_timeline(windows=[[1, 2]]))

    def test_manifest_round_trips_timeline(self, tmp_path):
        manifest = make_manifest(timeline=make_timeline())
        loaded = RunManifest.load(manifest.save(tmp_path / "m.json"))
        assert loaded.timeline == make_timeline()

    def test_manifest_rejects_broken_timeline(self):
        record = make_manifest(timeline=make_timeline(version=2)).to_dict()
        with pytest.raises(ManifestError, match="timeline version"):
            RunManifest.from_dict(record)

    def test_manifest_without_timeline_still_valid(self, tmp_path):
        record = make_manifest().to_dict()
        record.pop("timeline", None)  # pre-timeline artifacts stay loadable
        assert RunManifest.from_dict(record).timeline is None

    def test_render_shows_phase_picture(self):
        rendered = make_manifest(timeline=make_timeline()).render()
        assert "timeline: 2 windows" in rendered
        assert "phases: [.#]" in rendered
        assert "conflict fraction: 0.50" in rendered
        assert "victims" in rendered or "0, 7" in rendered

    def test_render_notes_fallback_engine(self):
        rendered = make_manifest(
            timeline=make_timeline(fallback_from="sharded")
        ).render()
        assert "requested sharded" in rendered
