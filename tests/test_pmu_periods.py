"""Tests for repro.pmu.periods."""

import random

import pytest

from repro.errors import SamplingError
from repro.pmu.periods import (
    FixedPeriod,
    GeometricPeriod,
    UniformJitterPeriod,
    make_period_distribution,
)


class TestFixed:
    def test_constant(self):
        period = FixedPeriod(100)
        rng = random.Random(0)
        assert {period.next_period(rng) for _ in range(10)} == {100}

    def test_mean(self):
        assert FixedPeriod(100).mean_period == 100.0

    def test_zero_rejected(self):
        with pytest.raises(SamplingError):
            FixedPeriod(0)


class TestUniformJitter:
    def test_range(self):
        period = UniformJitterPeriod(100, jitter=0.25)
        rng = random.Random(1)
        draws = [period.next_period(rng) for _ in range(1000)]
        assert min(draws) >= 75
        assert max(draws) <= 125

    def test_mean_close_to_nominal(self):
        period = UniformJitterPeriod(1212)
        rng = random.Random(2)
        draws = [period.next_period(rng) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(1212, rel=0.02)

    def test_small_mean_never_below_one(self):
        period = UniformJitterPeriod(1, jitter=0.5)
        rng = random.Random(3)
        assert all(period.next_period(rng) >= 1 for _ in range(100))

    def test_bad_jitter(self):
        with pytest.raises(SamplingError):
            UniformJitterPeriod(100, jitter=1.0)


class TestGeometric:
    def test_mean_matches(self):
        period = GeometricPeriod(50)
        rng = random.Random(4)
        draws = [period.next_period(rng) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(50, rel=0.05)

    def test_support_starts_at_one(self):
        period = GeometricPeriod(3)
        rng = random.Random(5)
        draws = [period.next_period(rng) for _ in range(1000)]
        assert min(draws) == 1

    def test_mean_one_always_one(self):
        period = GeometricPeriod(1)
        rng = random.Random(6)
        assert {period.next_period(rng) for _ in range(50)} == {1}


class TestFactory:
    @pytest.mark.parametrize("kind", ["fixed", "uniform", "geometric"])
    def test_kinds(self, kind):
        period = make_period_distribution(kind, 100)
        assert period.mean_period == pytest.approx(100, rel=0.01)

    def test_unknown_kind(self):
        with pytest.raises(SamplingError):
            make_period_distribution("poisson", 100)
