"""Analytical conflict screening: math, passes, gating, and acceptance.

Holds this PR's acceptance bar one rung below `test_analysis_validation`:
on the padding suite the birthday/folding screen must reach >= 0.8
precision and >= 0.7 recall against the dynamic profiler — with zero
trace accesses — and a `clear` verdict must demonstrably skip simulation
(`analysis.screen.simulations_skipped` > 0) while `suspect` workloads
stay bit-identical to an unscreened run.
"""

import pytest

from repro.analysis import (
    SCREEN_CLEAR,
    SCREEN_SUSPECT,
    SCREEN_UNKNOWN,
    AnalysisCache,
    ScreeningAnalysis,
    StaticModel,
    StreamPlacementAnalysis,
    asymptotic_collision_probability,
    exact_collision_probability,
    screen_cross_validate,
    screen_workload,
)
from repro.analysis.pressure import SetPressureAnalysis
from repro.analysis.screening import (
    SUSPECT_SCORE,
    WindowEstimate,
    estimate_windows,
    expected_occupancy,
    expected_sets_at_or_above,
    occupancy_pmf,
    occupancy_tail,
    overflow_pvalue,
)
from repro.analysis.screenval import (
    SCREEN_PRECISION_GATE,
    SCREEN_RECALL_GATE,
    LoopScreenValidation,
    ScreenValidationResult,
)
from repro.analysis.validation import (
    VALIDATION_GEOMETRY,
    default_validation_suite,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.hashing import XorFoldedGeometry
from repro.core.profiler import CCProf
from repro.errors import AnalysisError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.pmu.periods import UniformJitterPeriod
from repro.workloads.symmetrization import SymmetrizationWorkload


class TracelessSymmetrization(SymmetrizationWorkload):
    """Booby-trapped trace: the screen must never execute it."""

    def trace(self):
        raise AssertionError("screening must not execute the trace")


class TestBirthdayMath:
    def test_exact_matches_hand_computation(self):
        # k=3, s=4: 1 - (3/4)(2/4) = 0.625
        assert exact_collision_probability(3, 4) == pytest.approx(0.625)

    def test_degenerate_stream_counts(self):
        assert exact_collision_probability(0, 16) == 0.0
        assert exact_collision_probability(1, 16) == 0.0
        assert asymptotic_collision_probability(1, 16) == 0.0

    def test_pigeonhole_certainty(self):
        assert exact_collision_probability(17, 16) == 1.0
        assert exact_collision_probability(100, 16) == 1.0

    def test_asymptotic_tracks_exact(self):
        # The e^{-k(k-1)/2s} approximation is close at cache-sized s.
        for k in (2, 4, 8, 23):
            exact = exact_collision_probability(k, 365)
            approx = asymptotic_collision_probability(k, 365)
            assert approx == pytest.approx(exact, abs=0.05)
        # The classic: 23 birthdays over 365 days pass even odds.
        assert exact_collision_probability(23, 365) > 0.5

    def test_invalid_inputs_raise_typed_error(self):
        with pytest.raises(AnalysisError):
            exact_collision_probability(-1, 16)
        with pytest.raises(AnalysisError):
            exact_collision_probability(3, 0)
        with pytest.raises(AnalysisError):
            asymptotic_collision_probability(3, -4)


class TestOccupancyMath:
    def test_pmf_sums_to_one(self):
        total = sum(occupancy_pmf(8, 16, m) for m in range(0, 9))
        assert total == pytest.approx(1.0)

    def test_pmf_out_of_range_is_zero(self):
        assert occupancy_pmf(8, 16, -1) == 0.0
        assert occupancy_pmf(8, 16, 9) == 0.0

    def test_expected_occupancy(self):
        assert expected_occupancy(8, 16) == 0.5
        with pytest.raises(AnalysisError):
            expected_occupancy(8, 0)

    def test_tail_edges(self):
        assert occupancy_tail(8, 16, 0) == 1.0
        assert occupancy_tail(8, 16, 9) == 0.0
        # P(X >= 1) = 1 - P(X = 0)
        assert occupancy_tail(8, 16, 1) == pytest.approx(
            1.0 - (15 / 16) ** 8
        )

    def test_expected_sets_scales_tail(self):
        assert expected_sets_at_or_above(8, 16, 2) == pytest.approx(
            16 * occupancy_tail(8, 16, 2)
        )

    def test_pvalue_is_clamped_union_bound(self):
        assert overflow_pvalue(8, 16, 0) == 1.0  # trivially exceeded
        assert overflow_pvalue(8, 16, 8) < 1e-6  # all bases in one set
        assert 0.0 <= overflow_pvalue(4, 16, 2) <= 1.0


class TestWindowEstimates:
    def geometry(self):
        return CacheGeometry(line_size=64, num_sets=64, ways=4)

    def windows(self, workload):
        geometry = self.geometry()
        return [
            window
            for access in workload.access_patterns()
            for window in estimate_windows(access, geometry)
        ]

    def test_column_walk_folds_onto_few_sets(self):
        geometry = self.geometry()
        windows = self.windows(SymmetrizationWorkload(n=64, sweeps=1))
        conflicting = [w for w in windows if w.conflicting]
        # 512-byte pitch mod 4096 cycles through 8 sets; the 64 column
        # lines reused across the inner walk land there, 8 deep against
        # 4 ways while the rest of the cache sits idle.
        assert conflicting, "column walk must flag a conflict window"
        worst = max(conflicting, key=lambda w: w.pressure_ratio)
        assert not worst.capacity_like
        assert worst.pressure_ratio > 1.0
        assert worst.est_sets < geometry.num_sets * 0.5
        assert worst.load > geometry.ways

    def test_padded_column_walk_clears(self):
        # One extra line of pitch makes the rows rotate through every
        # set: the same windows, conflict-free.
        windows = self.windows(
            SymmetrizationWorkload(n=64, pad_bytes=64, sweeps=1)
        )
        assert windows
        assert all(not w.conflicting for w in windows)

    def test_describe_marks_kind(self):
        window = WindowEstimate(
            label="A", reuse_dim=0, est_lines=64, est_sets=8, load=8.0,
            utilization=0.125, capacity_like=False, conflicting=True,
            pressure_ratio=2.0,
        )
        assert "CONFLICT" in window.describe()
        window.conflicting, window.capacity_like = False, True
        assert "capacity" in window.describe()


class TestScreeningPass:
    def test_zero_trace_guarantee(self):
        workload = TracelessSymmetrization(n=32, sweeps=2)
        report = screen_workload(workload, geometry=VALIDATION_GEOMETRY)
        assert report.verdict == SCREEN_SUSPECT
        assert report.suspect_loops

    def test_conflicting_vs_padded_verdicts(self):
        conflicted = screen_workload(
            SymmetrizationWorkload(n=32, sweeps=2),
            geometry=VALIDATION_GEOMETRY,
        )
        padded = screen_workload(
            SymmetrizationWorkload(n=32, pad_bytes=64, sweeps=2),
            geometry=VALIDATION_GEOMETRY,
        )
        assert conflicted.verdict == SCREEN_SUSPECT
        assert conflicted.score >= SUSPECT_SCORE
        assert padded.verdict == SCREEN_CLEAR
        assert padded.score < conflicted.score

    def test_undeclared_workload_raises(self):
        class Undeclared:
            name = "undeclared"

        with pytest.raises(AnalysisError):
            screen_workload(Undeclared())

    def test_hashed_geometry_answers_unknown_not_error(self):
        hashed = XorFoldedGeometry(
            line_size=64, num_sets=16, ways=4, fold_levels=1
        )
        report = screen_workload(
            SymmetrizationWorkload(n=32, sweeps=2), geometry=hashed
        )
        assert report.verdict == SCREEN_UNKNOWN
        assert any("hashed" in reason for reason in report.reasons)
        assert all(loop.verdict == SCREEN_UNKNOWN for loop in report.loops)

    def test_degenerate_fold_is_screenable(self):
        unhashed = XorFoldedGeometry(
            line_size=64, num_sets=16, ways=4, fold_levels=0
        )
        report = screen_workload(
            SymmetrizationWorkload(n=32, sweeps=2), geometry=unhashed
        )
        assert report.verdict == SCREEN_SUSPECT

    def test_pass_caching_and_invalidation(self):
        model = StaticModel.from_workload(
            SymmetrizationWorkload(n=32, sweeps=2),
            geometry=VALIDATION_GEOMETRY,
        )
        cache = AnalysisCache(model)
        first = cache.request(ScreeningAnalysis)
        assert cache.request(ScreeningAnalysis) is first
        # Invalidating the placement pass cascades to its dependent.
        evicted = cache.invalidate(StreamPlacementAnalysis)
        assert ScreeningAnalysis in evicted
        again = cache.request(ScreeningAnalysis)
        assert again is not first
        assert again.report.verdict == first.report.verdict

    def test_counters_and_record(self):
        with use_registry(MetricsRegistry()) as registry:
            report = screen_workload(
                SymmetrizationWorkload(n=32, sweeps=2),
                geometry=VALIDATION_GEOMETRY,
            )
        counters = registry.snapshot()["counters"]
        assert counters["analysis.screen.loops_screened"] == len(report.loops)
        assert counters["analysis.screen.verdict.suspect"] == 1
        record = report.to_record()
        assert record["verdict"] == SCREEN_SUSPECT
        for loop_record in record["loops"].values():
            assert set(loop_record) >= {"verdict", "score", "streams"}

    def test_render_mentions_verdict_and_geometry(self):
        report = screen_workload(
            SymmetrizationWorkload(n=32, sweeps=2),
            geometry=VALIDATION_GEOMETRY,
        )
        text = report.render()
        assert "SUSPECT" in text
        assert "16 sets" in text


class TestPressureHashedRefusal:
    """Satellite: SetPressureAnalysis raises typed on hashed geometry."""

    def test_hashed_geometry_raises_analysis_error(self):
        hashed = XorFoldedGeometry(
            line_size=64, num_sets=16, ways=4, fold_levels=1
        )
        model = StaticModel.from_workload(
            SymmetrizationWorkload(n=32, sweeps=2), geometry=hashed
        )
        with pytest.raises(AnalysisError, match="hashes its set index"):
            AnalysisCache(model).request(SetPressureAnalysis)

    def test_modular_indexing_properties(self):
        assert CacheGeometry().modular_indexing is True
        assert XorFoldedGeometry(fold_levels=1).modular_indexing is False
        assert XorFoldedGeometry(fold_levels=0).modular_indexing is True


class TestScreenValScoring:
    def loop(self, verdict, victims):
        return LoopScreenValidation(
            workload_name="w", loop_name="f:1", verdict=verdict,
            score=0.5, measured_victims=victims,
        )

    def test_strict_counting(self):
        result = ScreenValidationResult(loops=[
            self.loop(SCREEN_SUSPECT, 2),   # TP
            self.loop(SCREEN_SUSPECT, 0),   # FP
            self.loop(SCREEN_UNKNOWN, 1),   # FN: unknown buys no recall
            self.loop(SCREEN_CLEAR, 0),     # true clear
            self.loop(SCREEN_CLEAR, 3),     # FN + unsafe skip
        ])
        assert result.true_positives == 1
        assert result.false_positives == 1
        assert result.false_negatives == 2
        assert result.deferred == 1
        assert result.unsafe_skips == 1
        assert result.sim_skip_rate == pytest.approx(2 / 5)
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(1 / 3)
        assert not result.passes_gates()

    def test_empty_result_is_perfect(self):
        result = ScreenValidationResult()
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.sim_skip_rate == 0.0

    def test_render_and_record(self):
        result = ScreenValidationResult(loops=[self.loop(SCREEN_SUSPECT, 2)])
        assert "precision=1.000" in result.render()
        record = result.to_record()
        assert record["gates"]["passed"]
        assert record["loops"][0]["verdict"] == SCREEN_SUSPECT


class TestScreenFirstProfiler:
    def test_clear_workload_skips_simulation(self):
        with use_registry(MetricsRegistry()) as registry:
            profiler = CCProf(
                geometry=VALIDATION_GEOMETRY,
                period=UniformJitterPeriod(7),
                seed=0,
                screen_first=True,
            )
            report = profiler.run(
                SymmetrizationWorkload(n=32, pad_bytes=64, sweeps=2)
            )
        counters = registry.snapshot()["counters"]
        assert counters["analysis.screen.simulations_skipped"] == 1
        assert counters.get("analysis.screen.simulations_run", 0) == 0
        assert report.raw_profile is None
        assert report.screen is not None
        assert report.screen.verdict == SCREEN_CLEAR
        assert any(
            "simulation skipped" in warning
            for warning in report.data_quality.warnings
        )

    def test_suspect_workload_is_bit_identical(self):
        def workload():
            return SymmetrizationWorkload(n=32, sweeps=2)

        kwargs = dict(
            geometry=VALIDATION_GEOMETRY,
            period=UniformJitterPeriod(7),
            seed=0,
        )
        with use_registry(MetricsRegistry()) as registry:
            screened = CCProf(screen_first=True, **kwargs).run(workload())
        baseline = CCProf(**kwargs).run(workload())
        counters = registry.snapshot()["counters"]
        assert counters["analysis.screen.simulations_run"] == 1
        assert counters.get("analysis.screen.simulations_skipped", 0) == 0
        assert screened.screen is not None
        assert screened.screen.verdict == SCREEN_SUSPECT
        # The screen rides along without perturbing the simulation.
        assert screened.render() == baseline.render()
        assert len(screened.raw_profile.sampling.samples) == (
            len(baseline.raw_profile.sampling.samples)
        )

    def test_undeclared_workload_falls_through(self):
        from repro.workloads.rodinia import make_rodinia_workload

        with use_registry(MetricsRegistry()) as registry:
            profiler = CCProf(
                period=UniformJitterPeriod(97), seed=0, screen_first=True
            )
            report = profiler.run(make_rodinia_workload("nn"))
        counters = registry.snapshot()["counters"]
        assert counters["analysis.screen.unavailable"] == 1
        assert report.raw_profile is not None  # simulated normally


class TestExecutorScreenRung:
    def request(self, **overrides):
        from repro.service.protocol import JobRequest

        record = dict(
            id="j1", tenant="t", kind="profile", workload="symmetrization",
            params={"n": 32, "sweeps": 1}, period=64,
        )
        record.update(overrides)
        return JobRequest(**record)

    def test_clear_screen_answers_degraded_job(self):
        from repro.service.executor import (
            SCREEN_CLEAR_CONFIDENCE,
            JobExecutor,
        )
        from repro.service.protocol import JobStatus

        executor = JobExecutor()
        with use_registry(MetricsRegistry()) as registry:
            result = executor.execute(
                self.request(workload="symmetrization:optimized"),
                degrade=True,
            )
        assert result.status == JobStatus.DEGRADED
        assert result.confidence == SCREEN_CLEAR_CONFIDENCE
        assert result.result["has_conflicts"] is False
        assert result.result["trace_accesses_simulated"] == 0
        assert result.result["screen"]["verdict"] == SCREEN_CLEAR
        counters = registry.snapshot()["counters"]
        assert counters["service.jobs.degraded_screen"] == 1
        assert counters.get("service.jobs.degraded_static", 0) == 0

    def test_suspect_screen_falls_through_to_static(self):
        from repro.service.executor import JobExecutor
        from repro.service.protocol import JobStatus

        executor = JobExecutor()
        with use_registry(MetricsRegistry()) as registry:
            # n=128 rows (1024-byte pitch) fold onto few sets at the
            # service's default geometry, so the screen says suspect
            # and refuses to answer the degraded job itself.
            result = executor.execute(
                self.request(params={"n": 128, "sweeps": 1}), degrade=True
            )
        assert result.status == JobStatus.DEGRADED
        counters = registry.snapshot()["counters"]
        assert counters.get("service.jobs.degraded_screen", 0) == 0
        assert counters["service.jobs.degraded_static"] == 1


class TestCli:
    def test_screen_suspect_renders(self, capsys):
        from repro.cli import main

        assert main(["screen", "gemm"]) == 0
        out = capsys.readouterr().out
        assert "SUSPECT" in out

    def test_suspect_exit_flag(self, capsys):
        from repro.cli import main

        assert main(["screen", "gemm", "--suspect-exit"]) == 1
        assert main(["screen", "gemm:optimized", "--suspect-exit"]) == 0

    def test_undeclared_workload_exits_analysis_family(self, capsys):
        from repro.cli import main

        assert main(["screen", "hotspot"]) == AnalysisError.exit_code

    def test_analyze_screen_first_records_skip_in_manifest(
        self, tmp_path, capsys
    ):
        import json

        from repro.cli import main

        manifest = tmp_path / "run.json"
        code = main([
            "analyze", "gemm:optimized", "--screen-first",
            "--manifest", str(manifest),
        ])
        assert code == 0
        config = json.loads(manifest.read_text())["config"]
        assert config["screen_first"] is True
        assert config["screen"]["verdict"] == SCREEN_CLEAR
        assert config["screen"]["simulation_skipped"] is True


class TestPerfSchemaScreening:
    def base_result(self):
        return {
            "schema_version": 1,
            "revision": "test",
            "batch_size": 1,
            "quick": True,
            "workloads": [{
                "name": "w", "kind": "k", "accesses": 1,
                "scalar_seconds": 1.0, "batched_seconds": 1.0,
                "scalar_accesses_per_sec": 1.0,
                "batched_accesses_per_sec": 1.0,
                "speedup": 1.0, "match": True,
            }],
            "headline": {
                "workload": "w", "speedup": 1.0, "target_speedup": 1.0,
                "target_met": True, "all_match": True,
            },
        }

    def test_optional_screening_record_validates(self):
        from repro.perf.schema import validate_result

        result = self.base_result()
        validate_result(result)  # absent: fine
        result["screening"] = {
            "workload": "gemm-padded", "verdict": "clear",
            "screen_seconds": 0.01, "simulate_seconds": 1.0,
            "speedup": 100.0,
        }
        validate_result(result)

    def test_malformed_screening_record_rejected(self):
        from repro.perf.schema import BenchSchemaError, validate_result

        result = self.base_result()
        result["screening"] = {"workload": "gemm-padded"}
        with pytest.raises(BenchSchemaError, match="screening"):
            validate_result(result)
        result["screening"] = "clear"
        with pytest.raises(BenchSchemaError, match="screening"):
            validate_result(result)


class TestAcceptance:
    """ISSUE 9's headline gates, asserted end to end."""

    @pytest.fixture(scope="class")
    def result(self):
        return screen_cross_validate(default_validation_suite())

    def test_precision_gate(self, result):
        assert result.precision >= SCREEN_PRECISION_GATE, result.render()

    def test_recall_gate(self, result):
        assert result.recall >= SCREEN_RECALL_GATE, result.render()

    def test_no_unsafe_skips(self, result):
        # A `clear` on a measured conflict would make --screen-first
        # silently wrong; the suite must show zero.
        assert result.unsafe_skips == 0, result.render()

    def test_suite_covers_both_verdicts(self, result):
        verdicts = {loop.verdict for loop in result.loops}
        assert SCREEN_SUSPECT in verdicts
        assert SCREEN_CLEAR in verdicts
        assert len(result.loops) >= 10

    def test_skip_rate_is_material(self, result):
        # The fleet-scale payoff: a decent share of the suite never
        # needs the simulator at all.
        assert result.sim_skip_rate >= 0.3, result.render()
