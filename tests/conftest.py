"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cache.geometry import CacheGeometry
from repro.trace.allocator import VirtualAllocator
from repro.trace.record import AccessKind, MemoryAccess


@pytest.fixture
def paper_l1() -> CacheGeometry:
    """The paper's evaluation L1: 32 KiB, 8-way, 64 sets, 64 B lines."""
    return CacheGeometry(line_size=64, num_sets=64, ways=8)


@pytest.fixture
def tiny_cache() -> CacheGeometry:
    """A small geometry (4 sets x 2 ways x 16 B lines) for exact-by-hand tests."""
    return CacheGeometry(line_size=16, num_sets=4, ways=2)


@pytest.fixture
def allocator() -> VirtualAllocator:
    """A fresh virtual heap."""
    return VirtualAllocator()


def make_load(address: int, ip: int = 0x1000, size: int = 8) -> MemoryAccess:
    """Helper: one load access."""
    return MemoryAccess(ip=ip, address=address, kind=AccessKind.LOAD, size=size)


def make_store(address: int, ip: int = 0x1000, size: int = 8) -> MemoryAccess:
    """Helper: one store access."""
    return MemoryAccess(ip=ip, address=address, kind=AccessKind.STORE, size=size)
