"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cache.geometry import CacheGeometry
from repro.engine import backend_names, get_backend
from repro.errors import SamplingError
from repro.trace.allocator import VirtualAllocator
from repro.trace.record import AccessKind, MemoryAccess


def differential_backend(name: str):
    """The registered backend ``name``, configured for differential runs.

    Parallel backends are configured with a small worker pool and no
    small-trace fallback so the tests exercise the genuinely parallel
    path (the registered default would route the suite's tiny traces to
    ``batched`` and prove nothing); backends without those knobs are
    used as registered.
    """
    backend = get_backend(name)
    if "parallel" in backend.capabilities:
        try:
            backend = backend.configure(workers=3, crossover=0, rcd_crossover=0)
        except SamplingError:
            backend = backend.configure(workers=3)
    return backend


@pytest.fixture(params=backend_names())
def engine_backend(request):
    """Every registered engine backend, one test instance per backend.

    Parametrizing over the live registry means a newly registered
    backend is picked up by the whole differential suite with no test
    edits — registering it *is* opting into the bit-identity contract.
    """
    return differential_backend(request.param)


@pytest.fixture
def paper_l1() -> CacheGeometry:
    """The paper's evaluation L1: 32 KiB, 8-way, 64 sets, 64 B lines."""
    return CacheGeometry(line_size=64, num_sets=64, ways=8)


@pytest.fixture
def tiny_cache() -> CacheGeometry:
    """A small geometry (4 sets x 2 ways x 16 B lines) for exact-by-hand tests."""
    return CacheGeometry(line_size=16, num_sets=4, ways=2)


@pytest.fixture
def allocator() -> VirtualAllocator:
    """A fresh virtual heap."""
    return VirtualAllocator()


def make_load(address: int, ip: int = 0x1000, size: int = 8) -> MemoryAccess:
    """Helper: one load access."""
    return MemoryAccess(ip=ip, address=address, kind=AccessKind.LOAD, size=size)


def make_store(address: int, ip: int = 0x1000, size: int = 8) -> MemoryAccess:
    """Helper: one store access."""
    return MemoryAccess(ip=ip, address=address, kind=AccessKind.STORE, size=size)
