"""Columnar trace batches: construction, round-trips, IO, stream adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.batch import (
    DEFAULT_BATCH_SIZE,
    TRACE_DTYPE,
    TraceBatch,
    as_batches,
    iter_batches,
)
from repro.trace.record import AccessKind, MemoryAccess
from repro.trace.stream import (
    batched,
    concat_batch_streams,
    filter_batches_by_ip,
    take_batches,
    unbatched,
)
from repro.trace.tracefile import (
    TraceReadStats,
    read_binary_trace,
    read_binary_trace_batches,
    write_binary_trace,
    write_binary_trace_batches,
)

from .conftest import make_load, make_store


def mixed_trace(count: int = 100) -> list:
    """A deterministic trace exercising every record field."""
    return [
        MemoryAccess(
            ip=0x400000 + (i % 7) * 16,
            address=0x6000_0000 + i * 24,
            kind=AccessKind.STORE if i % 3 == 0 else AccessKind.LOAD,
            size=1 + (i % 16),
            thread_id=i % 4,
        )
        for i in range(count)
    ]


class TestTraceBatch:
    def test_round_trip_preserves_every_field(self):
        trace = mixed_trace()
        batch = TraceBatch.from_accesses(trace)
        assert len(batch) == len(trace)
        assert list(batch.to_accesses()) == trace

    def test_empty_batch(self):
        batch = TraceBatch.empty()
        assert len(batch) == 0
        assert not batch
        assert list(batch.to_accesses()) == []

    def test_from_arrays_broadcasts_scalars(self):
        batch = TraceBatch.from_arrays(
            ip=[1, 2, 3], address=[64, 128, 192], kind=int(AccessKind.LOAD)
        )
        assert batch.ip.tolist() == [1, 2, 3]
        assert batch.size.tolist() == [8, 8, 8]
        assert batch.is_load.all()

    def test_slicing_and_masking(self):
        batch = TraceBatch.from_accesses(mixed_trace(10))
        head = batch[:4]
        assert len(head) == 4
        assert list(head.to_accesses()) == mixed_trace(10)[:4]
        mask = batch.is_store
        stores = batch[mask]
        assert all(access.is_store for access in stores.to_accesses())

    def test_concat(self):
        trace = mixed_trace(30)
        parts = [TraceBatch.from_accesses(trace[i : i + 10]) for i in (0, 10, 20)]
        assert list(TraceBatch.concat(parts).to_accesses()) == trace

    def test_columns_are_views_of_one_structured_array(self):
        batch = TraceBatch.from_accesses(mixed_trace(5))
        assert batch.records.dtype == TRACE_DTYPE
        assert batch.address.base is batch.records or batch.address.base is None

    def test_validate_rejects_bad_kind_and_size(self):
        records = np.zeros(2, dtype=TRACE_DTYPE)
        records["size"] = 8
        records["kind"] = 99
        with pytest.raises(TraceError):
            TraceBatch(records).validate()
        records["kind"] = int(AccessKind.LOAD)
        records["size"] = 0
        with pytest.raises(TraceError):
            TraceBatch(records).validate()
        mask = TraceBatch(records).valid_mask()
        assert mask.tolist() == [False, False]


class TestIterBatches:
    def test_chunks_and_preserves_order(self):
        trace = mixed_trace(25)
        batches = list(iter_batches(iter(trace), 10))
        assert [len(b) for b in batches] == [10, 10, 5]
        assert [a for b in batches for a in b.to_accesses()] == trace

    def test_rejects_nonpositive_size(self):
        with pytest.raises(TraceError):
            list(iter_batches(iter([]), 0))

    def test_as_batches_accepts_all_three_shapes(self):
        trace = mixed_trace(12)
        single = TraceBatch.from_accesses(trace)
        for source in (single, [single], iter(trace)):
            got = [a for b in as_batches(source, 5) for a in b.to_accesses()]
            assert got == trace

    def test_as_batches_rejects_unknown_elements(self):
        with pytest.raises(TraceError):
            list(as_batches([object()], DEFAULT_BATCH_SIZE))


class TestStreamAdapters:
    def test_batched_unbatched_inverse(self):
        trace = mixed_trace(40)
        assert list(unbatched(batched(iter(trace), 7))) == trace

    def test_filter_batches_by_ip_matches_scalar_filter(self):
        trace = mixed_trace(60)
        wanted = {0x400000, 0x400010}
        scalar = [a for a in trace if a.ip in wanted]
        got = list(
            unbatched(filter_batches_by_ip(batched(iter(trace), 9), wanted))
        )
        assert got == scalar

    def test_filter_batches_drops_empty_batches(self):
        trace = [make_load(0x100, ip=0xAA)] * 5
        out = list(filter_batches_by_ip(batched(iter(trace), 2), [0xBB]))
        assert out == []

    def test_take_batches_splits_final_batch(self):
        trace = mixed_trace(20)
        got = list(unbatched(take_batches(batched(iter(trace), 8), 13)))
        assert got == trace[:13]

    def test_take_batches_rejects_negative(self):
        with pytest.raises(ValueError):
            list(take_batches(iter([]), -1))

    def test_concat_batch_streams(self):
        trace = mixed_trace(18)
        first = batched(iter(trace[:9]), 4)
        second = batched(iter(trace[9:]), 4)
        assert list(unbatched(concat_batch_streams(first, second))) == trace


class TestBinaryBatchIO:
    @pytest.mark.parametrize("version", [1, 2])
    def test_cross_reader_round_trips(self, tmp_path, version):
        trace = mixed_trace(300)
        scalar_path = tmp_path / "scalar.bin"
        batch_path = tmp_path / "batch.bin"
        write_binary_trace(scalar_path, iter(trace), version=version)
        write_binary_trace_batches(
            batch_path, iter_batches(iter(trace), 64), version=version
        )
        via_batches = [
            a
            for b in read_binary_trace_batches(scalar_path)
            for a in b.to_accesses()
        ]
        via_scalar = list(read_binary_trace(batch_path))
        assert via_batches == trace
        assert via_scalar == trace

    def test_v2_reader_yields_one_batch_per_chunk(self, tmp_path):
        trace = mixed_trace(100)
        path = tmp_path / "t.bin"
        write_binary_trace_batches(path, iter_batches(iter(trace), 40))
        assert [len(b) for b in read_binary_trace_batches(path)] == [40, 40, 20]

    def test_corrupt_chunk_strict_raises_lenient_quarantines(self, tmp_path):
        trace = mixed_trace(120)
        path = tmp_path / "t.bin"
        write_binary_trace_batches(path, iter_batches(iter(trace), 40))
        blob = bytearray(path.read_bytes())
        blob[8 + 8 + 10] ^= 0xFF  # a byte inside the first chunk payload
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceError):
            list(read_binary_trace_batches(path))
        batch_stats = TraceReadStats()
        got = [
            a
            for b in read_binary_trace_batches(path, strict=False, stats=batch_stats)
            for a in b.to_accesses()
        ]
        scalar_stats = TraceReadStats()
        reference = list(read_binary_trace(path, strict=False, stats=scalar_stats))
        assert got == reference == trace[40:]
        assert batch_stats.chunks_skipped == scalar_stats.chunks_skipped == 1
        assert (
            batch_stats.records_quarantined
            == scalar_stats.records_quarantined
            == 40
        )
        assert batch_stats.salvaged and scalar_stats.salvaged

    def test_size_overflow_rejected(self, tmp_path):
        batch = TraceBatch.from_arrays(ip=[1], address=[64], size=300)
        with pytest.raises(TraceError):
            write_binary_trace_batches(tmp_path / "t.bin", [batch])

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(TraceError):
            list(read_binary_trace_batches(path))

    def test_store_kinds_survive(self, tmp_path):
        trace = [make_store(0x200, size=4), make_load(0x240)]
        path = tmp_path / "t.bin"
        write_binary_trace_batches(path, [TraceBatch.from_accesses(trace)])
        (batch,) = read_binary_trace_batches(path)
        assert list(batch.to_accesses()) == trace
