"""Tests for repro.cache.classify — the three-C ground truth."""

from repro.cache.classify import MissClass, ThreeCClassifier
from repro.cache.geometry import CacheGeometry
from tests.conftest import make_load


class TestBasicClasses:
    def test_first_touch_is_cold(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        assert classifier.classify(0x1000) is MissClass.COLD

    def test_immediate_reuse_is_hit(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        classifier.classify(0x1000)
        assert classifier.classify(0x1000) is MissClass.HIT

    def test_conflict_when_fully_associative_would_hit(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        period = paper_l1.mapping_period
        # 9 lines in one set: way beyond 8-way associativity, far below the
        # 512-line total capacity.
        for i in range(9):
            classifier.classify(i * period)
        # Line 0 was evicted by the set conflict, but fully-associative LRU
        # still holds it (only 9 of 512 lines used).
        assert classifier.classify(0) is MissClass.CONFLICT

    def test_capacity_when_working_set_exceeds_cache(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        total_lines = paper_l1.num_sets * paper_l1.ways
        # Stream through twice the cache in perfectly balanced fashion.
        for i in range(2 * total_lines):
            classifier.classify(i * paper_l1.line_size)
        # Re-touch line 0: evicted in both caches -> capacity.
        assert classifier.classify(0) is MissClass.CAPACITY


class TestCounts:
    def test_counts_sum_to_accesses(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        for i in range(100):
            classifier.classify((i % 30) * paper_l1.mapping_period)
        counts = classifier.counts
        assert counts.accesses == 100
        assert counts.hits + counts.misses == 100

    def test_conflict_fraction(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        for _ in range(3):
            for i in range(9):
                classifier.classify(i * paper_l1.mapping_period)
        assert classifier.counts.conflict_fraction() > 0.5

    def test_no_misses_no_fraction(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        assert classifier.counts.conflict_fraction() == 0.0

    def test_per_ip_tallies(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        classifier.classify(0, ip=0x10)
        classifier.classify(0, ip=0x10)
        per_ip = classifier.counts.by_ip[0x10]
        assert per_ip[MissClass.COLD] == 1
        assert per_ip[MissClass.HIT] == 1


class TestBalancedStreamHasNoConflicts:
    def test_sequential_stream(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        for i in range(4 * paper_l1.num_sets * paper_l1.ways):
            classifier.classify(i * paper_l1.line_size)
        # A pure stream never revisits: only cold misses.
        assert classifier.counts.conflict == 0
        assert classifier.counts.capacity == 0

    def test_small_working_set_all_hits_after_warmup(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        lines = 32  # fits trivially
        for _ in range(5):
            for i in range(lines):
                classifier.classify(i * paper_l1.line_size)
        counts = classifier.counts
        assert counts.cold == lines
        assert counts.conflict == 0 and counts.capacity == 0


class TestRecordInterface:
    def test_run_trace(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        counts = classifier.run_trace([make_load(i * 64) for i in range(10)])
        assert counts.cold == 10

    def test_straddler_classified_once_by_first_line(self, paper_l1):
        classifier = ThreeCClassifier(paper_l1)
        outcome = classifier.classify_record(make_load(60, size=16))
        assert outcome is MissClass.COLD
        # Both touched lines are now resident.
        assert classifier.classify(0) is MissClass.HIT
        assert classifier.classify(64) is MissClass.HIT
