"""Tests for repro.trace.record."""

import pytest

from repro.trace.record import AccessKind, MemoryAccess


class TestAccessKind:
    def test_from_dinero_letters(self):
        assert AccessKind.from_dinero("r") is AccessKind.LOAD
        assert AccessKind.from_dinero("w") is AccessKind.STORE
        assert AccessKind.from_dinero("i") is AccessKind.IFETCH

    def test_from_dinero_digits(self):
        assert AccessKind.from_dinero("0") is AccessKind.LOAD
        assert AccessKind.from_dinero("1") is AccessKind.STORE
        assert AccessKind.from_dinero("2") is AccessKind.IFETCH

    def test_from_dinero_case_insensitive(self):
        assert AccessKind.from_dinero("R") is AccessKind.LOAD

    def test_from_dinero_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown Dinero access code"):
            AccessKind.from_dinero("x")

    def test_to_dinero_round_trip(self):
        for kind in AccessKind:
            assert AccessKind.from_dinero(kind.to_dinero()) is kind


class TestMemoryAccess:
    def test_defaults(self):
        access = MemoryAccess(ip=0x400000, address=0x1000)
        assert access.kind is AccessKind.LOAD
        assert access.size == 8
        assert access.thread_id == 0

    def test_is_load_and_store(self):
        load = MemoryAccess(ip=1, address=2, kind=AccessKind.LOAD)
        store = MemoryAccess(ip=1, address=2, kind=AccessKind.STORE)
        assert load.is_load and not load.is_store
        assert store.is_store and not store.is_load

    def test_ifetch_is_neither_load_nor_store(self):
        fetch = MemoryAccess(ip=1, address=2, kind=AccessKind.IFETCH)
        assert not fetch.is_load
        assert not fetch.is_store

    def test_end_address(self):
        access = MemoryAccess(ip=0, address=100, size=8)
        assert access.end_address() == 108

    def test_line_address(self):
        access = MemoryAccess(ip=0, address=0x1234)
        assert access.line_address(64) == 0x1200

    def test_line_address_already_aligned(self):
        access = MemoryAccess(ip=0, address=0x1200)
        assert access.line_address(64) == 0x1200

    def test_validate_rejects_negative_address(self):
        with pytest.raises(ValueError, match="address"):
            MemoryAccess(ip=0, address=-1).validate()

    def test_validate_rejects_negative_ip(self):
        with pytest.raises(ValueError, match="ip"):
            MemoryAccess(ip=-5, address=0).validate()

    def test_validate_rejects_zero_size(self):
        with pytest.raises(ValueError, match="size"):
            MemoryAccess(ip=0, address=0, size=0).validate()

    def test_validate_returns_self(self):
        access = MemoryAccess(ip=1, address=2)
        assert access.validate() is access

    def test_is_tuple_like_for_cheap_construction(self):
        # The trace hot path relies on NamedTuple semantics.
        access = MemoryAccess(1, 2)
        assert (access.ip, access.address) == (1, 2)
