"""Tests for repro.cache.translation."""

import pytest

from repro.cache.geometry import PAPER_L1, PAPER_L2, CacheGeometry
from repro.cache.translation import (
    HUGE_PAGE_SIZE,
    PAGE_SIZE,
    FramePolicy,
    PageMapper,
    PhysicallyIndexedHierarchy,
)
from repro.errors import GeometryError
from tests.conftest import make_load


class TestPageMapper:
    def test_identity_preserves_addresses(self):
        mapper = PageMapper(FramePolicy.IDENTITY)
        assert mapper.translate(0x12345678) == 0x12345678

    def test_offset_preserved_under_any_policy(self):
        for policy in FramePolicy:
            mapper = PageMapper(policy, seed=3)
            virtual = 0xABCD_E123
            physical = mapper.translate(virtual)
            assert physical & (PAGE_SIZE - 1) == virtual & (PAGE_SIZE - 1)

    def test_mapping_is_stable(self):
        mapper = PageMapper(FramePolicy.RANDOM, seed=5)
        first = mapper.translate(0x10_0000)
        second = mapper.translate(0x10_0008)
        assert first >> 12 == second >> 12  # same page -> same frame

    def test_sequential_allocates_in_touch_order(self):
        mapper = PageMapper(FramePolicy.SEQUENTIAL)
        a = mapper.translate(0x5000_0000)
        b = mapper.translate(0x9000_0000)
        assert a >> 12 == 0 and b >> 12 == 1

    def test_random_frames_distinct(self):
        mapper = PageMapper(FramePolicy.RANDOM, physical_frames=1024, seed=7)
        frames = {mapper.translate(page << 12) >> 12 for page in range(100)}
        assert len(frames) == 100  # sampled without replacement

    def test_random_exhaustion(self):
        mapper = PageMapper(FramePolicy.RANDOM, physical_frames=2, seed=1)
        mapper.translate(0)
        mapper.translate(PAGE_SIZE)
        with pytest.raises(GeometryError, match="exhausted"):
            mapper.translate(2 * PAGE_SIZE)

    def test_bad_page_size(self):
        with pytest.raises(GeometryError):
            PageMapper(page_size=3000)

    def test_vipt_property_check(self):
        mapper = PageMapper()
        # The paper's L1 (4 KiB of index+offset reach) is VIPT-safe at 4 KiB
        # pages; the L2 (32 KiB reach) is not.
        assert mapper.index_bits_below_page_offset(PAPER_L1)
        assert not mapper.index_bits_below_page_offset(PAPER_L2)

    def test_huge_pages_cover_l2_index(self):
        mapper = PageMapper(page_size=HUGE_PAGE_SIZE)
        assert mapper.index_bits_below_page_offset(PAPER_L2)


class TestPhysicallyIndexedHierarchy:
    def _l2_alias_trace(self, repeats=20):
        # Stride of one L2 mapping period: aliases every reference at L2
        # under identity mapping.
        stride = PAPER_L2.mapping_period  # 32 KiB
        for _ in range(repeats):
            for i in range(32):
                yield make_load(0x4000_0000 + i * stride)

    def test_identity_mapping_preserves_l2_conflicts(self):
        mapper = PageMapper(FramePolicy.IDENTITY)
        hierarchy = PhysicallyIndexedHierarchy(
            [PAPER_L1, PAPER_L2], mapper, names=["L1", "L2"]
        )
        misses = hierarchy.run_trace(self._l2_alias_trace())
        # 32 lines folded onto one 8-way L2 set: L2 thrashes.
        assert misses["L2"] > 500

    def test_random_mapping_scrambles_l2_conflicts(self):
        mapper = PageMapper(FramePolicy.RANDOM, seed=9)
        hierarchy = PhysicallyIndexedHierarchy(
            [PAPER_L1, PAPER_L2], mapper, names=["L1", "L2"]
        )
        misses = hierarchy.run_trace(self._l2_alias_trace())
        # Random frames spread the 32 pages over L2 sets: mostly cold only.
        assert misses["L2"] < 200

    def test_l1_unaffected_by_mapping(self):
        # L1 is virtually indexed: both policies see identical L1 behaviour.
        results = {}
        for policy in (FramePolicy.IDENTITY, FramePolicy.RANDOM):
            mapper = PageMapper(policy, seed=2)
            hierarchy = PhysicallyIndexedHierarchy(
                [PAPER_L1, PAPER_L2], mapper, names=["L1", "L2"]
            )
            results[policy] = hierarchy.run_trace(self._l2_alias_trace())["L1"]
        assert results[FramePolicy.IDENTITY] == results[FramePolicy.RANDOM]

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(GeometryError):
            PhysicallyIndexedHierarchy([], PageMapper())

    def test_straddling_record(self):
        hierarchy = PhysicallyIndexedHierarchy(
            [CacheGeometry()], PageMapper(), names=["L1"]
        )
        depth = hierarchy.access_record(make_load(60, size=16))
        assert depth == 1
