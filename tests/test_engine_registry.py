"""Engine registry and sharded-backend unit tests.

The differential suite (test_batched_differential.py) proves every
registered backend bit-identical to scalar; this file covers the registry
mechanics themselves (lookup, registration, configure) and the sharded
backend's moving parts: shard boundary arithmetic at awkward K, the
multiprocess simulator's scatter/gather, the deterministic RCD merge, and
the crossover fallback.  It also pins the PR's acceptance criterion that
a brand-new backend needs *zero* edits to the profiler or the CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.conflict_period import merge_conflict_period_runs
from repro.core.profiler import CCProf
from repro.core.rcd import RcdArrayAnalysis, compute_rcd_arrays, merge_rcd_pieces
from repro.engine import (
    BatchedBackend,
    EngineBackend,
    ShardedBackend,
    ShardedCacheSimulator,
    available_workers,
    backend_names,
    get_backend,
    known_trace_length,
    register_backend,
    resolve_backend,
    shard_boundaries,
    unregister_backend,
)
from repro.errors import AnalysisError, SamplingError
from repro.trace.batch import TraceBatch, iter_batches
from repro.trace.synthetic import uniform_trace, zipf_trace
from repro.workloads.base import TraceWorkload


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"scalar", "batched", "sharded"} <= set(backend_names())

    def test_get_unknown_lists_registered(self):
        with pytest.raises(SamplingError, match="scalar"):
            get_backend("warp")

    def test_resolve_accepts_instances_and_names(self):
        batched = get_backend("batched")
        assert resolve_backend("batched") is batched
        configured = ShardedBackend(workers=2)
        assert resolve_backend(configured) is configured

    def test_duplicate_registration_rejected(self):
        class Impostor(BatchedBackend):
            name = "batched"

        with pytest.raises(SamplingError, match="already registered"):
            register_backend(Impostor())
        # Same instance is a no-op; replace=True swaps (and we restore).
        original = get_backend("batched")
        assert register_backend(original) is original
        impostor = Impostor()
        try:
            register_backend(impostor, replace=True)
            assert get_backend("batched") is impostor
        finally:
            register_backend(original, replace=True)

    def test_unnamed_backend_rejected(self):
        class Nameless(BatchedBackend):
            name = ""

        with pytest.raises(SamplingError, match="declares no name"):
            register_backend(Nameless())

    def test_unregister_missing_is_noop(self):
        unregister_backend("never-registered")

    def test_configure_rejects_unknown_options(self):
        with pytest.raises(SamplingError, match="workers"):
            get_backend("scalar").configure(workers=4)
        with pytest.raises(SamplingError, match="frobnicate"):
            get_backend("batched").configure(frobnicate=1)
        with pytest.raises(SamplingError, match="frobnicate"):
            get_backend("sharded").configure(frobnicate=1)

    def test_configure_returns_fresh_instance(self):
        sharded = get_backend("sharded")
        configured = sharded.configure(workers=2, crossover=17)
        assert configured is not sharded
        assert configured.workers == 2
        assert configured.crossover == 17
        # The registered singleton is untouched.
        assert get_backend("sharded").workers is None

    def test_sharded_rejects_bad_worker_count(self):
        with pytest.raises(SamplingError, match="workers"):
            ShardedBackend(workers=0)


class ToyWorkload(TraceWorkload):
    name = "toy-registry"

    def trace(self):
        return zipf_trace(3000, 512, seed=21, ip=0x400100)


class TestToyBackendNeedsNoCoreEdits:
    """The PR's registry acceptance criterion, as an executable test."""

    def test_toy_backend_flows_through_profiler_and_cli(self):
        class ToyBackend(BatchedBackend):
            """Delegates to batched kernels under a new name."""

            name = "toy"
            capabilities = frozenset({"columnar", "toy"})

        toy = ToyBackend()
        try:
            register_backend(toy)
            # Profiler: selected purely by name, zero profiler edits.
            report = CCProf(seed=5, engine="toy").run(ToyWorkload())
            reference = CCProf(seed=5, engine="batched").run(ToyWorkload())
            assert report.render() == reference.render()
            # CLI: --engine choices come from the live registry.
            from repro.cli import build_parser

            args = build_parser().parse_args(
                ["profile", "toy-workload", "--engine", "toy"]
            )
            assert args.engine == "toy"
        finally:
            unregister_backend("toy")

    def test_abstract_protocol_enforced(self):
        class Partial(EngineBackend):
            name = "partial"

        with pytest.raises(TypeError):
            Partial()


class TestShardBoundaries:
    def test_even_split(self):
        assert shard_boundaries(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_k_not_dividing_num_sets(self):
        bounds = shard_boundaries(16, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 16
        # Contiguous, non-empty, balanced to within one set.
        sizes = []
        for (low, high), (next_low, _) in zip(bounds, bounds[1:] + [(16, 16)]):
            assert high == next_low
            assert high > low
            sizes.append(high - low)
        assert max(sizes) - min(sizes) <= 1

    def test_k_exceeding_num_sets_yields_singletons(self):
        assert shard_boundaries(4, 9) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_single_shard(self):
        assert shard_boundaries(64, 1) == [(0, 64)]

    def test_invalid_num_sets_rejected(self):
        with pytest.raises(SamplingError, match="num_sets"):
            shard_boundaries(0, 2)


class TestShardedSimulator:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_bit_identical_across_shard_counts(self, policy, workers):
        """Sets straddling shard edges (16 sets / 3 or 5 shards) behave
        exactly like the single-process engine, per access."""
        geometry = CacheGeometry(line_size=32, num_sets=16, ways=2)
        trace = list(zipf_trace(4000, 300, seed=7)) + list(
            uniform_trace(2000, 500, seed=8)
        )
        reference_cache = SetAssociativeCache(geometry, policy=policy, seed=9)
        reference = []
        for batch in iter_batches(iter(trace), 311):
            reference.append(reference_cache.access_batch(batch))
        with ShardedCacheSimulator(
            geometry, policy=policy, seed=9, workers=workers
        ) as simulator:
            assert simulator.workers == min(workers, geometry.num_sets)
            for batch, expected in zip(iter_batches(iter(trace), 311), reference):
                got = simulator.access_batch(batch)
                assert np.array_equal(got.hit, expected.hit)
                assert np.array_equal(got.cold, expected.cold)
                assert np.array_equal(got.evicted, expected.evicted)
                assert np.array_equal(got.evicted_tag, expected.evicted_tag)
                assert np.array_equal(got.set_index, expected.set_index)
            assert simulator.stats.as_dict() == reference_cache.stats.as_dict()

    def test_empty_batch_is_fine(self):
        simulator = ShardedCacheSimulator(CacheGeometry(), workers=2)
        result = simulator.access_batch(TraceBatch.from_accesses([]))
        assert len(result.hit) == 0
        # No pool was spawned for it, and stats are a fresh zero record.
        assert simulator.stats.accesses == 0
        simulator.close()

    def test_close_is_idempotent(self):
        simulator = ShardedCacheSimulator(CacheGeometry(), workers=2)
        simulator.access_batch(
            next(iter_batches(zipf_trace(100, 64, seed=1), 100))
        )
        simulator.close()
        simulator.close()


class TestShardedRcdMerge:
    def test_merge_pieces_equals_full_computation(self):
        rng = np.random.default_rng(3)
        sequence = rng.integers(0, 16, size=5000, dtype=np.int64)
        full = compute_rcd_arrays(sequence)
        pieces = []
        for low, high in shard_boundaries(16, 3):
            mask = (sequence >= low) & (sequence < high)
            pieces.append(
                compute_rcd_arrays(
                    sequence[mask], positions=np.flatnonzero(mask)
                )
            )
        merged = merge_rcd_pieces(pieces)
        for got, expected in zip(merged, full):
            assert np.array_equal(got, expected)

    def test_merge_handles_empty_and_single_pieces(self):
        empty = compute_rcd_arrays(np.empty(0, dtype=np.int64))
        sets, rcds, positions = merge_rcd_pieces([empty, empty])
        assert sets.size == rcds.size == positions.size == 0
        piece = compute_rcd_arrays(np.array([1, 2, 1, 2], dtype=np.int64))
        merged = merge_rcd_pieces([piece, empty])
        for got, expected in zip(merged, piece):
            assert np.array_equal(got, expected)

    def test_positions_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError, match="positions"):
            compute_rcd_arrays(
                np.array([1, 2, 1], dtype=np.int64),
                positions=np.array([0, 1], dtype=np.int64),
            )

    def test_sharded_rcd_analysis_matches_single_process(self):
        backend = ShardedBackend(workers=3, rcd_crossover=0)
        sequence = np.random.default_rng(5).integers(
            0, 64, size=3000, dtype=np.int64
        )
        got = backend.rcd_from_set_sequence(sequence, 64)
        expected = RcdArrayAnalysis.from_set_sequence(sequence, 64)
        assert got.histogram().counts == expected.histogram().counts
        assert got.observation_count == expected.observation_count
        key = lambda o: (o.set_index, o.rcd, o.position)
        assert [key(o) for o in got.observations] == [
            key(o) for o in expected.observations
        ]

    def test_conflict_period_merge_is_ordered_concatenation(self):
        from repro.core.conflict_period import ConflictPeriodAnalysis

        sequence = np.random.default_rng(9).integers(
            0, 16, size=4000, dtype=np.int64
        )
        full_runs = ConflictPeriodAnalysis.from_observations(
            RcdArrayAnalysis.from_set_sequence(sequence, 16)
        ).runs
        shard_runs = []
        for low, high in shard_boundaries(16, 3):
            mask = (sequence >= low) & (sequence < high)
            piece = compute_rcd_arrays(
                sequence[mask], positions=np.flatnonzero(mask)
            )
            analysis = RcdArrayAnalysis(
                num_sets=16,
                set_index=piece[0],
                rcd=piece[1],
                position=piece[2],
                total_misses=int(np.count_nonzero(mask)),
            )
            shard_runs.append(ConflictPeriodAnalysis.from_observations(analysis).runs)
        merged = merge_conflict_period_runs(shard_runs)
        key = lambda run: (run.set_index, run.rcd, run.length, run.start_position)
        assert sorted(key(r) for r in merged) == sorted(key(r) for r in full_runs)


class TestCrossoverFallback:
    def test_known_trace_length(self):
        batch = next(iter_batches(zipf_trace(500, 64, seed=1), 500))
        assert known_trace_length(batch) == 500
        assert known_trace_length([batch, batch]) == 1000
        assert known_trace_length([]) == 0
        accesses = list(zipf_trace(70, 64, seed=1))
        assert known_trace_length(accesses) == 70
        assert known_trace_length(iter(accesses)) is None

    def test_small_traces_fall_back_to_batched(self):
        backend = ShardedBackend(workers=4, crossover=10**9)
        trace = list(zipf_trace(2000, 512, seed=3))
        stats = backend.simulate(trace, geometry=CacheGeometry())
        reference = get_backend("batched").simulate(
            trace, geometry=CacheGeometry()
        )
        assert stats.as_dict() == reference.as_dict()

    def test_single_worker_always_falls_back(self):
        backend = ShardedBackend(workers=1, crossover=0)
        trace = list(zipf_trace(2000, 512, seed=3))
        stats = backend.simulate(trace, geometry=CacheGeometry())
        reference = get_backend("batched").simulate(
            trace, geometry=CacheGeometry()
        )
        assert stats.as_dict() == reference.as_dict()

    def test_worker_count_clamped_to_sets(self):
        backend = ShardedBackend(workers=100)
        assert backend.worker_count(num_sets=4) == 4

    def test_available_workers_positive(self):
        assert available_workers() >= 1
