"""Tests for repro.cache.hashing — XOR-folded set indexing."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hashing import XorFoldedGeometry, dissolves_stride
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import GeometryError
from tests.conftest import make_load


@pytest.fixture
def hashed():
    return XorFoldedGeometry(line_size=64, num_sets=64, ways=8, fold_levels=1)


class TestIndexHashing:
    def test_zero_folds_is_plain(self):
        plain = CacheGeometry()
        degenerate = XorFoldedGeometry(fold_levels=0)
        for address in (0x0, 0x1234, 0xDEAD_BEEF):
            assert degenerate.set_index(address) == plain.set_index(address)

    def test_index_in_range(self, hashed):
        for address in range(0, 1 << 16, 4096 + 64):
            assert 0 <= hashed.set_index(address) < hashed.num_sets

    def test_aliasing_stride_spread(self, hashed):
        # Plain geometry folds a 4096-stride walk onto one set; hashing
        # spreads it because the tag changes every step.
        plain = CacheGeometry()
        plain_sets = {plain.set_index(i * 4096) for i in range(64)}
        hashed_sets = {hashed.set_index(i * 4096) for i in range(64)}
        assert len(plain_sets) == 1
        assert len(hashed_sets) > 16

    def test_same_line_same_set(self, hashed):
        # All offsets within one line must map to the same set.
        base = 0x1234 & ~63
        indices = {hashed.set_index(base + off) for off in range(64)}
        assert len(indices) == 1

    def test_line_identity_preserved(self, hashed):
        # (hashed index, tag) uniquely identifies a line: distinct lines
        # never collide on both.
        seen = {}
        for line in range(4096):
            address = line * 64
            key = (hashed.set_index(address), hashed.tag(address))
            assert key not in seen, f"line {line} collides with {seen.get(key)}"
            seen[key] = line

    def test_negative_folds_rejected(self):
        with pytest.raises(GeometryError):
            XorFoldedGeometry(fold_levels=-1)


class TestHashedCacheBehaviour:
    def test_conflict_workload_cured_by_hashing(self, hashed, paper_l1):
        def run(geometry):
            cache = SetAssociativeCache(geometry)
            for _ in range(40):
                for i in range(16):
                    cache.access(i * 4096)
            return cache.stats.misses

        plain_misses = run(paper_l1)
        hashed_misses = run(hashed)
        # 16 lines, plain: one set, total thrash; hashed: spread, resident.
        assert plain_misses > 10 * hashed_misses

    def test_balanced_workload_unaffected(self, hashed, paper_l1):
        def run(geometry):
            cache = SetAssociativeCache(geometry)
            stats = cache.run_trace([make_load(i * 64) for i in range(4096)])
            return stats.misses

        # A cold stream misses once per line under any indexing.
        assert run(paper_l1) == run(hashed)

    def test_hits_still_work(self, hashed):
        cache = SetAssociativeCache(hashed)
        cache.access(0x12345)
        assert cache.access(0x12345).hit


class TestDissolvesStride:
    def test_mapping_period_stride(self, hashed):
        assert dissolves_stride(4096, hashed)

    def test_line_stride_not_plain_aliasing(self, hashed):
        # A 64 B stride covers all sets plainly; nothing to dissolve.
        assert not dissolves_stride(64, hashed)

    def test_bad_stride(self, hashed):
        with pytest.raises(GeometryError):
            dissolves_stride(0, hashed)
