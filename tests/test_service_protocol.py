"""Tests for repro.service.protocol (wire format + validation)."""

import json

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    JobRequest,
    JobResponse,
    JobStatus,
    decode_line,
    encode_line,
)


def make_request(**overrides):
    record = dict(
        id="j1", tenant="acme", kind="profile", workload="gemm",
        params={"n": 64}, seed=3, period=97, deadline_ms=5000,
    )
    record.update(overrides)
    return JobRequest(**record)


class TestJobRequest:
    def test_round_trip(self):
        request = make_request()
        assert JobRequest.decode(request.encode()) == request

    def test_decode_rejects_binary_garbage(self):
        with pytest.raises(ProtocolError, match="malformed"):
            JobRequest.decode(b"\xff\xfe not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            JobRequest.decode(b"[1, 2, 3]")

    @pytest.mark.parametrize("field", ["id", "tenant", "kind", "workload"])
    def test_required_string_fields(self, field):
        record = make_request().to_dict()
        del record[field]
        with pytest.raises(ProtocolError, match=field):
            JobRequest.from_dict(record)

    def test_empty_id_rejected(self):
        record = make_request().to_dict()
        record["id"] = ""
        with pytest.raises(ProtocolError, match="id"):
            JobRequest.from_dict(record)

    def test_oversized_field_rejected(self):
        record = make_request().to_dict()
        record["tenant"] = "x" * 300
        with pytest.raises(ProtocolError, match="256"):
            JobRequest.from_dict(record)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            make_request(kind="explode")

    def test_non_integer_params_rejected(self):
        record = make_request().to_dict()
        record["params"] = {"n": "sixty-four"}
        with pytest.raises(ProtocolError, match="params"):
            JobRequest.from_dict(record)

    def test_boolean_param_rejected(self):
        record = make_request().to_dict()
        record["params"] = {"n": True}
        with pytest.raises(ProtocolError, match="params"):
            JobRequest.from_dict(record)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            make_request(deadline_ms=0)

    def test_future_protocol_version_rejected(self):
        record = make_request().to_dict()
        record["v"] = 99
        with pytest.raises(ProtocolError, match="version"):
            JobRequest.from_dict(record)

    def test_defaults_omitted_from_wire(self):
        request = JobRequest(id="j", tenant="t", kind="predict", workload="gemm")
        record = json.loads(request.encode())
        assert "deadline_ms" not in record
        assert "max_accesses" not in record
        assert "params" not in record


class TestJobResponse:
    def test_round_trip(self):
        response = JobResponse(
            id="j1", tenant="acme", status=JobStatus.DEGRADED,
            result={"has_conflicts": True},
            degraded_reason="queue saturated",
            confidence="static prediction", elapsed_ms=12.5, attempts=2,
        )
        assert JobResponse.decode(response.encode()) == JobResponse.decode(
            response.encode()
        )
        decoded = JobResponse.decode(response.encode())
        assert decoded.status == JobStatus.DEGRADED
        assert decoded.resolved
        assert decoded.degraded_reason == "queue saturated"

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError, match="status"):
            JobResponse(id="j", tenant="t", status="exploded")

    def test_rejection_is_not_resolved(self):
        response = JobResponse(
            id="j", tenant="t", status=JobStatus.REJECTED, retry_after_ms=50
        )
        assert not response.resolved


class TestLineCodec:
    def test_oversized_line_rejected_before_parse(self):
        blob = b'{"id": "' + b"x" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError, match="protocol limit"):
            decode_line(blob)

    def test_oversized_record_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="protocol limit"):
            encode_line({"blob": "x" * MAX_LINE_BYTES})

    def test_terminal_statuses(self):
        assert set(JobStatus.TERMINAL) == {"completed", "degraded", "failed"}
        assert "rejected" in JobStatus.ALL


class TestEngineField:
    def test_engine_round_trips(self):
        request = make_request(engine="sharded")
        assert request.to_dict()["engine"] == "sharded"
        assert JobRequest.decode(request.encode()) == request

    def test_engine_absent_by_default(self):
        request = make_request()
        assert request.engine is None
        assert "engine" not in request.to_dict()

    def test_engine_must_be_string(self):
        record = make_request().to_dict()
        record["engine"] = 7
        with pytest.raises(ProtocolError, match="engine"):
            JobRequest.from_dict(record)

    def test_engine_must_be_non_empty(self):
        with pytest.raises(ProtocolError, match="engine"):
            make_request(engine="")


class TestWindowField:
    def test_window_round_trips(self):
        request = make_request(window=128)
        assert request.to_dict()["window"] == 128
        assert JobRequest.decode(request.encode()) == request

    def test_window_absent_by_default(self):
        request = make_request()
        assert request.window is None
        assert "window" not in request.to_dict()

    def test_window_must_be_positive(self):
        with pytest.raises(ProtocolError, match="window"):
            make_request(window=0)

    def test_window_must_be_int(self):
        record = make_request(window=64).to_dict()
        record["window"] = "64"
        with pytest.raises(ProtocolError, match="window"):
            JobRequest.from_dict(record)

    def test_older_daemon_wire_compat(self):
        # A v1 record without the field decodes to window=None — sending
        # window to an older daemon (which drops unknown keys) is safe.
        record = make_request(window=64).to_dict()
        del record["window"]
        assert JobRequest.from_dict(record).window is None
