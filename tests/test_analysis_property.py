"""Property-based tests (hypothesis) for the static residue arithmetic.

The load-bearing claim of :mod:`repro.analysis.pressure` is that modular
residue arithmetic (GCD cycles + sumsets) computes exactly the set of cache
sets an affine access touches — without enumerating the iteration space.
These properties pin that claim against brute-force enumeration through the
same ``Array2D.addr`` / ``CacheGeometry.set_index`` path the dynamic
simulator uses.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.descriptors import AccessDim, affine2d
from repro.analysis.pressure import (
    footprint_residues,
    footprint_set_indices,
    residue_progression,
)
from repro.cache.geometry import CacheGeometry
from repro.trace.allocator import VirtualAllocator
from repro.workloads.base import Array2D

geometries = st.builds(
    CacheGeometry,
    line_size=st.sampled_from([16, 32, 64, 128]),
    num_sets=st.sampled_from([4, 8, 16, 32, 64]),
    ways=st.sampled_from([1, 2, 4, 8]),
)

strides = st.integers(min_value=-4096, max_value=4096)
extents = st.integers(min_value=1, max_value=96)
periods = st.sampled_from([64, 256, 1024, 4096])


class TestResidueProgression:
    @given(strides, extents, periods)
    def test_matches_enumeration(self, stride, extent, period):
        expected = sorted({(i * stride) % period for i in range(extent)})
        assert list(residue_progression(stride, extent, period)) == expected

    @given(strides, extents, periods)
    def test_cycle_length_is_gcd_period(self, stride, extent, period):
        residues = residue_progression(stride, extent, period)
        step = stride % period
        if step == 0:
            assert len(residues) == 1
        else:
            cycle = period // math.gcd(step, period)
            assert len(residues) == min(extent, cycle)


class TestFootprintResidues:
    @given(
        st.lists(st.tuples(strides, st.integers(1, 24)), min_size=1, max_size=3),
        periods,
    )
    def test_sumset_matches_enumeration(self, stride_extents, period):
        dims = tuple(AccessDim(s, e) for s, e in stride_extents)
        expected = {0}
        for dim in dims:
            expected = {
                (r + i * dim.stride) % period
                for r in expected
                for i in range(dim.extent)
            }
        assert set(footprint_residues(dims, period).tolist()) == expected


class TestFootprintSetIndices:
    """The satellite property: residue classes == brute-force enumeration.

    For a random geometry and a random 2-D array walked by a random affine
    nest, the statically computed set indices must equal the set of
    ``geometry.set_index(array.addr(row, col))`` over every iteration point
    — the exact addresses the trace would have produced.
    """

    @given(
        geometries,
        st.integers(min_value=1, max_value=48),   # rows
        st.integers(min_value=1, max_value=48),   # cols
        st.sampled_from([0, 8, 32, 64]),          # pad_bytes
        st.sampled_from([4, 8]),                  # elem_size
        st.booleans(),                            # column-major walk?
        st.integers(min_value=0, max_value=4),    # row origin
        st.integers(min_value=0, max_value=4),    # col origin
        st.integers(min_value=1, max_value=40),   # row trip
        st.integers(min_value=1, max_value=40),   # col trip
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_addr_enumeration(
        self, geometry, rows, cols, pad, elem, column_walk, row0, col0, rtrip, ctrip
    ):
        allocator = VirtualAllocator()
        array = Array2D.allocate(
            allocator, "m", rows=rows + 8, cols=cols + 8, elem_size=elem, pad_bytes=pad
        )
        if column_walk:
            subscripts = [(0, 1, ctrip), (1, 0, rtrip)]  # col outer, row inner
        else:
            subscripts = [(1, 0, rtrip), (0, 1, ctrip)]
        access = affine2d(array, ip=0x1000, subscripts=subscripts, origin=(row0, col0))
        predicted = set(footprint_set_indices(access, geometry).tolist())
        enumerated = {
            geometry.set_index(array.addr(row0 + r, col0 + c))
            for r in range(rtrip)
            for c in range(ctrip)
        }
        assert predicted == enumerated
