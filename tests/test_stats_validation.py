"""Tests for repro.stats.validation."""

import pytest

from repro.errors import ModelError
from repro.stats.validation import (
    ConfusionCounts,
    confusion_counts,
    cross_validate_f1,
    f1_score,
    k_fold_indices,
    precision_recall_f1,
)


class TestConfusion:
    def test_perfect_predictions(self):
        counts = confusion_counts([1, 0, 1, 0], [1, 0, 1, 0])
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0
        assert counts.accuracy == 1.0

    def test_all_wrong(self):
        counts = confusion_counts([0, 1], [1, 0])
        assert counts.f1 == 0.0
        assert counts.accuracy == 0.0

    def test_precision_vs_recall_asymmetry(self):
        # Predict everything positive: recall 1, precision = base rate.
        counts = confusion_counts([1, 1, 1, 1], [1, 0, 0, 0])
        assert counts.recall == 1.0
        assert counts.precision == 0.25

    def test_f1_is_harmonic_mean(self):
        counts = ConfusionCounts(true_positive=2, false_positive=2, false_negative=0)
        precision, recall = counts.precision, counts.recall
        assert counts.f1 == pytest.approx(2 * precision * recall / (precision + recall))

    def test_degenerate_no_positives(self):
        counts = confusion_counts([0, 0], [0, 0])
        assert counts.f1 == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            confusion_counts([1], [1, 0])

    def test_combine(self):
        a = ConfusionCounts(1, 2, 3, 4)
        b = ConfusionCounts(10, 20, 30, 40)
        merged = a.combine(b)
        assert (merged.true_positive, merged.false_positive) == (11, 22)

    def test_helpers(self):
        predictions, labels = [1, 1, 0, 0], [1, 0, 0, 1]
        precision, recall, f1 = precision_recall_f1(predictions, labels)
        assert f1 == f1_score(predictions, labels)
        assert 0 <= precision <= 1 and 0 <= recall <= 1


class TestKFold:
    def test_partitions_all_indices(self):
        folds = k_fold_indices(16, 8, seed=1)
        flattened = sorted(index for fold in folds for index in fold)
        assert flattened == list(range(16))

    def test_fold_sizes_near_equal(self):
        folds = k_fold_indices(17, 4, seed=2)
        sizes = [len(fold) for fold in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        assert k_fold_indices(10, 5, seed=3) == k_fold_indices(10, 5, seed=3)

    def test_different_seeds_differ(self):
        assert k_fold_indices(20, 4, seed=1) != k_fold_indices(20, 4, seed=2)

    def test_too_few_samples(self):
        with pytest.raises(ModelError):
            k_fold_indices(3, 8)

    def test_too_few_folds(self):
        with pytest.raises(ModelError):
            k_fold_indices(10, 1)


class TestCrossValidation:
    def test_separable_data_scores_one(self):
        # The paper's setting: 16 loops, 8 conflict / 8 clean (§5.2).
        features = [0.05, 0.1, 0.12, 0.15, 0.18, 0.2, 0.1, 0.16,
                    0.5, 0.6, 0.7, 0.8, 0.88, 0.9, 0.75, 0.65]
        labels = [0] * 8 + [1] * 8
        assert cross_validate_f1(features, labels, folds=8, seed=0) == 1.0

    def test_random_labels_score_poorly(self):
        features = [0.5] * 16  # no signal at all
        labels = [0, 1] * 8
        score = cross_validate_f1(features, labels, folds=4, seed=0)
        assert score < 0.9

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            cross_validate_f1([1.0], [0, 1])

    def test_overlapping_classes_intermediate_score(self):
        features = [0.1, 0.2, 0.3, 0.4, 0.45, 0.55, 0.5, 0.35,
                    0.4, 0.5, 0.6, 0.7, 0.55, 0.45, 0.65, 0.75]
        labels = [0] * 8 + [1] * 8
        score = cross_validate_f1(features, labels, folds=8, seed=0)
        assert 0.3 < score < 1.0
