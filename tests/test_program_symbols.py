"""Tests for repro.program.symbols."""

from repro.program.builder import ImageBuilder
from repro.program.symbols import Symbolizer


def make_image():
    builder = ImageBuilder()
    function = builder.function("hot", file="hot.c")
    function.begin_loop(line=20)
    loop_ip = function.add_statement(line=21)
    function.end_loop()
    flat_ip = function.add_statement(line=30)
    function.finish()
    return builder.build(), loop_ip, flat_ip


class TestResolve:
    def test_loop_ip(self):
        image, loop_ip, _ = make_image()
        info = Symbolizer(image).resolve(loop_ip)
        assert info.function_name == "hot"
        assert str(info.location) == "hot.c:21"
        assert info.loop_name == "hot.c:20"
        assert info.loop_depth == 1

    def test_non_loop_ip(self):
        image, _, flat_ip = make_image()
        info = Symbolizer(image).resolve(flat_ip)
        assert info.loop_name is None
        assert info.loop_depth == 0

    def test_unknown_ip(self):
        image, *_ = make_image()
        info = Symbolizer(image).resolve(0xDEAD)
        assert info.function_name == "<unknown>"
        assert info.loop_name is None
        assert info.is_anonymous

    def test_describe_format(self):
        image, loop_ip, _ = make_image()
        text = Symbolizer(image).resolve(loop_ip).describe()
        assert "hot.c:21" in text and "hot" in text and "hot.c:20" in text

    def test_memoization_returns_same_object(self):
        image, loop_ip, _ = make_image()
        symbolizer = Symbolizer(image)
        assert symbolizer.resolve(loop_ip) is symbolizer.resolve(loop_ip)

    def test_loop_of_shorthand(self):
        image, loop_ip, flat_ip = make_image()
        symbolizer = Symbolizer(image)
        assert symbolizer.loop_of(loop_ip) == "hot.c:20"
        assert symbolizer.loop_of(flat_ip) is None
