"""Tests for repro.core.attribution."""

import pytest

from repro.core.attribution import (
    NO_LOOP,
    UNATTRIBUTED,
    attribute_code,
    attribute_data,
)
from repro.pmu.sampler import AddressSample
from repro.program.builder import ImageBuilder
from repro.program.symbols import Symbolizer
from repro.trace.allocator import VirtualAllocator


def build_two_loop_image():
    builder = ImageBuilder()
    function = builder.function("kern", file="k.c")
    function.begin_loop(line=10)
    ip_a = function.add_statement(line=11)
    function.end_loop()
    function.begin_loop(line=20)
    ip_b = function.add_statement(line=21)
    function.end_loop()
    ip_flat = function.add_statement(line=30)
    function.finish()
    return builder.build(), ip_a, ip_b, ip_flat


def sample(ip, address=0, index=0):
    return AddressSample(ip=ip, address=address, event_index=index, access_index=index)


class TestCodeCentric:
    def test_groups_by_loop_hot_first(self):
        image, ip_a, ip_b, _ = build_two_loop_image()
        samples = [sample(ip_a, index=i) for i in range(6)]
        samples += [sample(ip_b, index=10 + i) for i in range(3)]
        attribution = attribute_code(samples, Symbolizer(image))
        assert [group.loop_name for group in attribution.loops] == ["k.c:10", "k.c:20"]
        assert attribution.loop("k.c:10").share == pytest.approx(6 / 9)

    def test_non_loop_samples_bucketed(self):
        image, *_ , ip_flat = build_two_loop_image()
        attribution = attribute_code([sample(ip_flat)], Symbolizer(image))
        assert attribution.loops[0].loop_name == NO_LOOP

    def test_no_symbolizer(self):
        attribution = attribute_code([sample(0x1234)], None)
        assert attribution.loops[0].loop_name == NO_LOOP

    def test_hot_loops_filter(self):
        image, ip_a, ip_b, _ = build_two_loop_image()
        samples = [sample(ip_a, index=i) for i in range(99)]
        samples.append(sample(ip_b, index=1000))
        attribution = attribute_code(samples, Symbolizer(image))
        hot = attribution.hot_loops(min_share=0.05)
        assert [group.loop_name for group in hot] == ["k.c:10"]

    def test_empty_samples(self):
        attribution = attribute_code([], None)
        assert attribution.loops == []
        assert attribution.total_samples == 0

    def test_unknown_loop_lookup(self):
        attribution = attribute_code([], None)
        with pytest.raises(KeyError):
            attribution.loop("ghost")


class TestDataCentric:
    def test_maps_addresses_to_allocations(self):
        allocator = VirtualAllocator()
        a = allocator.malloc(1000, "matrix_a")
        b = allocator.malloc(1000, "matrix_b")
        samples = [sample(0, address=a.start + i) for i in range(8)]
        samples += [sample(0, address=b.start + i) for i in range(2)]
        attribution = attribute_data(samples, allocator)
        assert attribution.objects[0].label == "matrix_a"
        assert attribution.objects[0].count == 8
        assert attribution.object("matrix_b").share == pytest.approx(0.2)

    def test_unattributed_bucket(self):
        allocator = VirtualAllocator()
        attribution = attribute_data([sample(0, address=0x10)], allocator)
        assert attribution.objects[0].label == UNATTRIBUTED

    def test_no_allocator(self):
        attribution = attribute_data([sample(0, address=0x10)], None)
        assert attribution.objects[0].label == UNATTRIBUTED

    def test_top(self):
        allocator = VirtualAllocator()
        labels = ["a", "b", "c"]
        allocations = [allocator.malloc(100, label) for label in labels]
        samples = []
        for count, allocation in zip((5, 3, 1), allocations):
            samples += [sample(0, address=allocation.start)] * count
        attribution = attribute_data(samples, allocator)
        assert [entry.label for entry in attribution.top(2)] == ["a", "b"]

    def test_unknown_object_lookup(self):
        attribution = attribute_data([], None)
        with pytest.raises(KeyError):
            attribution.object("ghost")
