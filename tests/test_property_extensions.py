"""Property-based tests (hypothesis) for the extension modules."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.reuse import INFINITE, reuse_distances
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.translation import PAGE_SIZE, FramePolicy, PageMapper
from repro.cache.victim import VictimCachedL1
from repro.core.phases import PhaseAnalyzer
from repro.pmu.sampler import AddressSample
from repro.trace.record import MemoryAccess

small_geometry = CacheGeometry(line_size=16, num_sets=4, ways=2)

line_streams = st.lists(st.integers(min_value=0, max_value=63), min_size=0, max_size=150)
addresses = st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200)


def _brute_force_reuse(lines):
    """Reference implementation: LRU stack scan, O(N^2)."""
    stack = []
    distances = []
    for line in lines:
        if line in stack:
            position = stack.index(line)
            distances.append(position)
            stack.pop(position)
        else:
            distances.append(INFINITE)
        stack.insert(0, line)
    return distances


class TestReuseDistanceAgainstBruteForce:
    @given(line_streams)
    @settings(max_examples=60)
    def test_fenwick_matches_lru_stack(self, lines):
        trace = [MemoryAccess(ip=0, address=line * 64) for line in lines]
        profile = reuse_distances(iter(trace), CacheGeometry())
        expected = _brute_force_reuse(lines)
        histogram = {}
        for distance in expected:
            histogram[distance] = histogram.get(distance, 0) + 1
        assert profile.histogram == histogram

    @given(line_streams)
    @settings(max_examples=30)
    def test_prediction_matches_fully_associative_simulation(self, lines):
        trace = [MemoryAccess(ip=0, address=line * 64) for line in lines]
        profile = reuse_distances(iter(trace), CacheGeometry())
        for capacity in (1, 2, 4, 8):
            # Simulate fully-associative LRU of that capacity directly.
            lru: "OrderedDict[int, None]" = OrderedDict()
            misses = 0
            for line in lines:
                if line in lru:
                    lru.move_to_end(line)
                else:
                    misses += 1
                    if len(lru) >= capacity:
                        lru.popitem(last=False)
                    lru[line] = None
            if lines:
                assert profile.miss_ratio_for_capacity(capacity) == misses / len(lines)


class TestVictimCacheInvariants:
    @given(addresses)
    @settings(max_examples=40)
    def test_victim_cache_never_misses_more_than_plain(self, address_list):
        plain = SetAssociativeCache(small_geometry)
        buffered = VictimCachedL1(small_geometry, victim_lines=4)
        plain_misses = sum(1 for a in address_list if plain.access(a).miss)
        for a in address_list:
            buffered.access(a)
        assert buffered.stats.misses <= plain_misses

    @given(addresses)
    @settings(max_examples=40)
    def test_outcome_counts_partition_accesses(self, address_list):
        cache = VictimCachedL1(small_geometry, victim_lines=4)
        for a in address_list:
            cache.access(a)
        stats = cache.stats
        assert stats.main_hits + stats.victim_hits + stats.misses == stats.accesses


class TestPageMapperInvariants:
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 28), max_size=100),
        st.sampled_from(list(FramePolicy)),
    )
    @settings(max_examples=40)
    def test_translation_is_a_function(self, virtual_addresses, policy):
        mapper = PageMapper(policy, seed=1)
        first = [mapper.translate(v) for v in virtual_addresses]
        second = [mapper.translate(v) for v in virtual_addresses]
        assert first == second

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 28), max_size=100),
        st.sampled_from(list(FramePolicy)),
    )
    @settings(max_examples=40)
    def test_offsets_preserved(self, virtual_addresses, policy):
        mapper = PageMapper(policy, seed=2)
        for v in virtual_addresses:
            assert mapper.translate(v) & (PAGE_SIZE - 1) == v & (PAGE_SIZE - 1)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=200))
    @settings(max_examples=30)
    def test_distinct_pages_get_distinct_frames_random(self, pages):
        mapper = PageMapper(FramePolicy.RANDOM, physical_frames=1 << 18, seed=3)
        frames = {}
        for page in pages:
            frames.setdefault(page, mapper.frame_of(page))
        values = list(frames.values())
        assert len(set(values)) == len(values)


class TestPhaseWindowInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=0, max_size=600))
    @settings(max_examples=40)
    def test_windows_partition_samples(self, raw_addresses):
        samples = [
            AddressSample(ip=0, address=a * 64, event_index=i, access_index=i)
            for i, a in enumerate(raw_addresses)
        ]
        analyzer = PhaseAnalyzer(CacheGeometry(), window=64, min_window=16)
        analysis = analyzer.analyze(samples)
        assert sum(p.sample_count for p in analysis.phases) == len(samples)
        # Windows are contiguous and ordered.
        cursor = 0
        for phase in analysis.phases:
            assert phase.first_sample == cursor
            cursor += phase.sample_count

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=500))
    @settings(max_examples=40)
    def test_conflict_fraction_bounded(self, sets):
        samples = [
            AddressSample(ip=0, address=s * 64, event_index=i, access_index=i)
            for i, s in enumerate(sets)
        ]
        analysis = PhaseAnalyzer(CacheGeometry(), window=32, min_window=8).analyze(samples)
        assert 0.0 <= analysis.conflict_fraction <= 1.0
