"""Tests for repro.cache.reuse — reuse-distance analysis."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.reuse import INFINITE, conflict_gap, reuse_distances
from repro.errors import AnalysisError
from tests.conftest import make_load


class TestReuseDistances:
    def test_cyclic_pattern(self, paper_l1):
        # Cycling K lines gives reuse distance K-1 after the cold pass.
        k = 10
        trace = [make_load((i % k) * 64) for i in range(100)]
        profile = reuse_distances(iter(trace), paper_l1)
        assert profile.histogram[INFINITE] == k
        assert profile.histogram[k - 1] == 100 - k

    def test_immediate_reuse_distance_zero(self, paper_l1):
        trace = [make_load(0), make_load(0)]
        profile = reuse_distances(iter(trace), paper_l1)
        assert profile.histogram[0] == 1

    def test_same_line_different_offsets(self, paper_l1):
        trace = [make_load(0), make_load(32), make_load(8)]
        profile = reuse_distances(iter(trace), paper_l1)
        # All three touch line 0: distances are 0, 0 after the cold touch.
        assert profile.histogram[0] == 2

    def test_stack_distance_counts_distinct_lines(self, paper_l1):
        # a b b b a: distance of the second 'a' is 1 (only b in between).
        trace = [make_load(0), make_load(64), make_load(64), make_load(64), make_load(0)]
        profile = reuse_distances(iter(trace), paper_l1)
        assert profile.histogram[1] == 1

    def test_empty_trace(self, paper_l1):
        profile = reuse_distances(iter([]), paper_l1)
        assert profile.total == 0
        assert profile.miss_ratio_for_capacity(8) == 0.0

    def test_trace_length_cap(self, paper_l1):
        trace = [make_load(i * 64) for i in range(10)]
        with pytest.raises(AnalysisError, match="max_references"):
            reuse_distances(iter(trace), paper_l1, max_references=5)


class TestMissRatioPrediction:
    def test_capacity_cliff(self, paper_l1):
        # Cycling 16 lines: capacity >= 16 -> only cold misses; < 16 -> all miss.
        k = 16
        trace = [make_load((i % k) * 64) for i in range(160)]
        profile = reuse_distances(iter(trace), paper_l1)
        assert profile.miss_ratio_for_capacity(k) == pytest.approx(k / 160)
        assert profile.miss_ratio_for_capacity(k - 1) == 1.0

    def test_curve_monotone_in_capacity(self, paper_l1):
        import random

        rng = random.Random(0)
        trace = [make_load(rng.randrange(256) * 64) for _ in range(2000)]
        profile = reuse_distances(iter(trace), paper_l1)
        curve = profile.miss_ratio_curve([8, 32, 128, 512])
        ratios = [ratio for _, ratio in curve]
        assert ratios == sorted(ratios, reverse=True)

    def test_invalid_capacity(self, paper_l1):
        profile = reuse_distances(iter([make_load(0)]), paper_l1)
        with pytest.raises(AnalysisError):
            profile.miss_ratio_for_capacity(0)

    def test_mean_finite_distance(self, paper_l1):
        trace = [make_load(0), make_load(64), make_load(0)]
        profile = reuse_distances(iter(trace), paper_l1)
        assert profile.mean_finite_distance() == 1.0

    def test_mean_without_finite_distances(self, paper_l1):
        profile = reuse_distances(iter([make_load(0)]), paper_l1)
        with pytest.raises(AnalysisError):
            profile.mean_finite_distance()


class TestConflictGap:
    def test_pure_conflict_pattern_has_large_gap(self, paper_l1):
        def factory():
            for _ in range(50):
                for i in range(16):
                    yield make_load(i * paper_l1.mapping_period)

        gap = conflict_gap(factory, paper_l1)
        # The capacity model sees a 16-line working set (tiny) and predicts
        # ~no misses; the real cache thrashes one set.
        assert gap["measured_miss_ratio"] > 0.9
        assert gap["capacity_model_miss_ratio"] < 0.1
        assert gap["conflict_gap"] > 0.8

    def test_streaming_pattern_has_no_gap(self, paper_l1):
        def factory():
            for _ in range(3):
                for i in range(2048):
                    yield make_load(i * paper_l1.line_size)

        gap = conflict_gap(factory, paper_l1)
        assert abs(gap["conflict_gap"]) < 0.05
