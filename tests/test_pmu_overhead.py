"""Tests for repro.pmu.overhead."""

import pytest

from repro.errors import SamplingError
from repro.pmu.overhead import (
    PAPER_CALIBRATION,
    OverheadModel,
    simulation_overhead,
)


class TestCalibration:
    def test_reproduces_both_paper_points(self):
        model = OverheadModel.calibrated()
        for period, overhead in PAPER_CALIBRATION:
            assert model.overhead_at_period(period) == pytest.approx(overhead, rel=1e-6)

    def test_monotone_decreasing_in_period(self):
        model = OverheadModel.calibrated()
        overheads = [model.overhead_at_period(p) for p in (100, 500, 1212, 5000)]
        assert overheads == sorted(overheads, reverse=True)

    def test_lower_event_rate_lowers_overhead(self):
        model = OverheadModel.calibrated()
        heavy = model.overhead_at_period(1212, event_rate=1.0)
        light = model.overhead_at_period(1212, event_rate=0.05)
        assert light < heavy
        # Table 2's whole-application median is 1.37x: light event rates
        # must land near 1.
        assert light < 1.5

    def test_inverse_model(self):
        model = OverheadModel.calibrated()
        period = model.period_for_overhead(2.9)
        assert model.overhead_at_period(period) == pytest.approx(2.9, rel=1e-6)

    def test_inverse_below_floor_rejected(self):
        model = OverheadModel.calibrated()
        with pytest.raises(SamplingError, match="floor"):
            model.period_for_overhead(1.0)

    def test_bad_period_rejected(self):
        with pytest.raises(SamplingError):
            OverheadModel.calibrated().overhead_at_period(0)


class TestRunBasedOverhead:
    def test_more_samples_more_overhead(self):
        model = OverheadModel.calibrated()
        few = model.overhead_for_run(total_events=10_000, sample_count=10, total_accesses=100_000)
        many = model.overhead_for_run(total_events=10_000, sample_count=1_000, total_accesses=100_000)
        assert many > few

    def test_no_accesses_rejected(self):
        with pytest.raises(SamplingError):
            OverheadModel.calibrated().overhead_for_run(0, 0, 0)


class TestSimulationOverhead:
    def test_whole_program_is_full_slowdown(self):
        assert simulation_overhead(1.0, slowdown=264) == pytest.approx(264)

    def test_tiny_loop_is_cheap(self):
        assert simulation_overhead(0.01, slowdown=264) == pytest.approx(3.63)

    def test_zero_fraction_is_native(self):
        assert simulation_overhead(0.0) == pytest.approx(1.0)

    def test_bad_fraction(self):
        with pytest.raises(SamplingError):
            simulation_overhead(1.5)

    def test_simulation_dwarfs_sampling(self):
        # The paper's headline: simulation is orders of magnitude heavier.
        sampling = OverheadModel.calibrated().overhead_at_period(1212)
        assert simulation_overhead(0.5) > 30 * sampling
