"""Chaos suite: the end-to-end pipeline under injected channel faults.

Directly exercises the paper's sparse-sampling robustness claim: CCProf's
verdicts are built to survive a lossy observation channel, so under every
fault class at its default severity the pipeline must (a) complete without
an unhandled exception, (b) emit a populated data-quality section, and
(c) degrade classifier F1 on the labelled seed corpus by a bounded amount
rather than collapsing.

Select just this suite with ``pytest -m chaos`` (or ``make chaos``).
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.profiler import CCProf
from repro.pmu.periods import FixedPeriod
from repro.robustness.budget import SamplingBudget
from repro.robustness.faults import FAULT_NAMES, FaultPipeline, default_pipeline
from repro.stats.validation import f1_score
from repro.workloads.adi import AdiWorkload
from repro.workloads.training import training_loops

pytestmark = pytest.mark.chaos

#: Corpus iterations — small enough to keep the suite quick, large enough
#: that the clean run classifies the full corpus perfectly.
CORPUS_REPEATS = 12
CORPUS_PERIOD = 13
CORPUS_SEED = 7

GEOMETRY = CacheGeometry()


def corpus_f1(inject_spec=None):
    """Classifier F1 over the 16 labelled seed loops, optionally faulted."""
    predictions, labels = [], []
    for loop in training_loops(GEOMETRY, repeats=CORPUS_REPEATS):
        inject = (
            FaultPipeline.parse(inject_spec, seed=CORPUS_SEED)
            if inject_spec
            else None
        )
        profiler = CCProf(
            geometry=GEOMETRY,
            period=FixedPeriod(CORPUS_PERIOD),
            seed=CORPUS_SEED,
            strict=False,
            inject=inject,
        )
        report = profiler.run(loop.factory())
        predictions.append(int(report.has_conflicts))
        labels.append(int(loop.has_conflict))
    return f1_score(predictions, labels)


@pytest.fixture(scope="module")
def clean_f1():
    return corpus_f1()


class TestEveryFaultClassEndToEnd:
    """Each fault at default severity: complete, quantified, no traceback."""

    @pytest.mark.parametrize("fault", FAULT_NAMES)
    def test_pipeline_completes_with_data_quality(self, fault, paper_l1):
        inject = default_pipeline(fault, seed=3)
        profiler = CCProf(
            geometry=paper_l1,
            period=FixedPeriod(29),
            seed=3,
            strict=False,
            inject=inject,
        )
        report = profiler.run(AdiWorkload.original(n=128))
        quality = report.data_quality
        assert quality is not None
        assert quality.samples_seen == report.total_samples
        assert fault in quality.injected_faults
        assert quality.degraded
        # The report itself must still be substantive.
        assert report.loops
        assert quality.samples_seen > 0

    @pytest.mark.parametrize("fault", FAULT_NAMES)
    def test_verdict_survives_default_severity(self, fault, paper_l1):
        """adi's conflict is strong enough that no default fault hides it."""
        inject = default_pipeline(fault, seed=3)
        profiler = CCProf(
            geometry=paper_l1,
            period=FixedPeriod(29),
            seed=3,
            strict=False,
            inject=inject,
        )
        assert profiler.run(AdiWorkload.original(n=128)).has_conflicts


class TestF1DegradesGracefully:
    def test_clean_corpus_classifies_perfectly(self, clean_f1):
        assert clean_f1 == 1.0

    def test_f1_under_20pct_drop_bounded(self, clean_f1):
        # The acceptance bound of the robustness issue: >= 0.7x clean F1
        # under 20% sample drop.
        assert corpus_f1("drop:0.2") >= 0.7 * clean_f1

    def test_f1_under_compound_faults_bounded(self, clean_f1):
        compound = corpus_f1("drop:0.2,skid:1,dup:0.05,jitter:8")
        assert compound >= 0.7 * clean_f1

    def test_f1_under_heavy_drop_still_useful(self, clean_f1):
        # Half the samples gone: CCProf's cf statistic is a per-set ratio,
        # so uniform loss should barely move it.
        assert corpus_f1("drop:0.5") >= 0.7 * clean_f1


class TestDegradedRunsStayGraceful:
    def test_total_sample_loss_yields_empty_report_with_warning(self, paper_l1):
        profiler = CCProf(
            geometry=paper_l1,
            period=FixedPeriod(29),
            strict=False,
            inject=FaultPipeline.parse("drop:1.0"),
        )
        report = profiler.run(AdiWorkload.original(n=64))
        assert not report.loops
        quality = report.data_quality
        assert quality.samples_seen == 0
        assert any("no samples" in warning for warning in quality.warnings)

    def test_truncated_budget_run_produces_partial_report(self, paper_l1):
        profiler = CCProf(
            geometry=paper_l1,
            period=FixedPeriod(29),
            strict=False,
            budget=SamplingBudget(max_events=400),
        )
        report = profiler.run(AdiWorkload.original(n=128))
        quality = report.data_quality
        assert quality.truncated
        assert "event budget" in quality.truncation_reason
        assert report.total_events == 400
        assert report.loops  # partial, but not empty

    def test_thin_loops_downgrade_confidence(self, paper_l1):
        # Starve the sampler so hot loops fall below the confidence floor.
        profiler = CCProf(
            geometry=paper_l1,
            period=FixedPeriod(29),
            strict=False,
            budget=SamplingBudget(max_samples=12),
        )
        report = profiler.run(AdiWorkload.original(n=128))
        quality = report.data_quality
        assert quality.min_loop_samples is not None
        assert quality.min_loop_samples <= 12
        assert quality.low_confidence_loops
        flagged = {loop.loop_name for loop in report.loops
                   if loop.confidence == "low"}
        assert flagged == set(quality.low_confidence_loops)

    def test_clean_run_reports_clean_quality(self, paper_l1):
        profiler = CCProf(
            geometry=paper_l1, period=FixedPeriod(29), strict=False
        )
        report = profiler.run(AdiWorkload.original(n=128))
        quality = report.data_quality
        assert quality is not None
        assert not quality.injected_faults
        assert not quality.truncated
        rendered = report.render()
        assert "data quality" in rendered

    def test_injected_stats_render_in_report(self, paper_l1):
        profiler = CCProf(
            geometry=paper_l1,
            period=FixedPeriod(29),
            strict=False,
            inject=FaultPipeline.parse("drop:0.2"),
        )
        rendered = profiler.run(AdiWorkload.original(n=128)).render()
        assert "injected faults" in rendered
        assert "drop=" in rendered
