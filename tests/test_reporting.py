"""Tests for repro.reporting."""

import pytest

from repro.core.report import ConflictReport
from repro.reporting.files import write_cdf_series, write_result_file
from repro.reporting.tables import Table, format_percent, format_speedup, format_table


class TestTables:
    def test_alignment(self):
        table = Table(title="T", headers=["a", "long_header"])
        table.add_row("xx", 1)
        table.add_row("y", 22)
        text = table.render()
        lines = text.splitlines()
        data_lines = [line for line in lines if "|" in line]
        assert len({line.index("|") for line in data_lines}) == 1

    def test_row_width_validation(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_format_table_contains_everything(self):
        text = format_table("Title", ["h1"], [["v1"], ["v2"]])
        for token in ("Title", "h1", "v1", "v2"):
            assert token in text

    def test_format_percent(self):
        assert format_percent(0.527) == "52.7%"
        assert format_percent(-0.134) == "-13.4%"

    def test_format_speedup(self):
        assert format_speedup(3.03) == "3.03x"


class TestFiles:
    def _report(self):
        return ConflictReport(
            workload_name="unit",
            mean_sampling_period=100,
            total_samples=10,
            total_events=1000,
            rcd_threshold=8,
        )

    def test_write_result_file(self, tmp_path):
        path = write_result_file(tmp_path / "out" / "unit_result", self._report())
        assert path.exists()
        assert "unit" in path.read_text()

    def test_write_cdf_series(self, tmp_path):
        path = write_cdf_series(
            tmp_path / "cdf.txt", [(1, 0.5), (8, 0.9)], label="nw"
        )
        content = path.read_text()
        assert "# nw" in content
        assert "1 0.500000" in content
        assert "8 0.900000" in content
