"""Tests for repro.pmu.calibration."""

import pytest

from repro.errors import ModelError
from repro.pmu.calibration import fit_overhead_model, sweep_periods_for_budget
from repro.pmu.overhead import PAPER_CALIBRATION, OverheadModel


class TestFit:
    def test_exact_fit_on_two_points(self):
        fit = fit_overhead_model(list(PAPER_CALIBRATION))
        reference = OverheadModel.calibrated()
        assert fit.model.fixed == pytest.approx(reference.fixed, rel=1e-9)
        assert fit.model.handler_cost == pytest.approx(reference.handler_cost, rel=1e-9)
        assert fit.max_abs_residual < 1e-9
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_points_recover_model(self):
        truth = OverheadModel.calibrated()
        observations = []
        for index, period in enumerate((50, 100, 300, 700, 1500, 3000)):
            noise = 0.02 * (-1) ** index
            observations.append((period, truth.overhead_at_period(period) + noise))
        fit = fit_overhead_model(observations)
        assert fit.model.handler_cost == pytest.approx(truth.handler_cost, rel=0.05)
        assert fit.r_squared > 0.99

    def test_prediction_interpolates(self):
        fit = fit_overhead_model(list(PAPER_CALIBRATION))
        mid = fit.model.overhead_at_period(500)
        assert 2.9 < mid < 9.3

    def test_too_few_observations(self):
        with pytest.raises(ModelError, match=">= 2"):
            fit_overhead_model([(100.0, 5.0)])

    def test_duplicate_periods_rejected(self):
        with pytest.raises(ModelError, match="distinct"):
            fit_overhead_model([(100.0, 5.0), (100.0, 6.0)])

    def test_nonphysical_overhead_rejected(self):
        with pytest.raises(ModelError, match="not physical"):
            fit_overhead_model([(100.0, 0.5), (200.0, 2.0)])

    def test_increasing_overhead_with_period_rejected(self):
        # Overhead growing with a coarser period implies negative handler
        # cost: measurement noise dominates.
        with pytest.raises(ModelError, match="negative per-sample"):
            fit_overhead_model([(100.0, 2.0), (1000.0, 8.0)])

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ModelError, match="positive"):
            fit_overhead_model([(0.0, 2.0), (100.0, 1.5)])


class TestBudgetSweep:
    def test_budget_to_period(self):
        model = OverheadModel.calibrated()
        pairs = sweep_periods_for_budget(model, [9.3, 2.9])
        assert pairs[0][1] == pytest.approx(171, rel=1e-6)
        assert pairs[1][1] == pytest.approx(1212, rel=1e-6)

    def test_tighter_budget_coarser_period(self):
        model = OverheadModel.calibrated()
        pairs = dict(sweep_periods_for_budget(model, [2.0, 5.0, 9.0]))
        assert pairs[2.0] > pairs[5.0] > pairs[9.0]
