"""Tests for repro.service.admission (quotas, backpressure, breakers)."""

import pytest

from repro.errors import AdmissionRejectedError, CircuitOpenError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    TenantCircuitBreaker,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdmissionConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_queue_depth": 0},
            {"tenant_quota": 0},
            {"degrade_threshold": 0.0},
            {"degrade_threshold": 1.5},
        ],
    )
    def test_invalid_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            AdmissionConfig(**overrides)


class TestQueueBound:
    def _controller(self, **overrides):
        defaults = dict(max_queue_depth=2, tenant_quota=10, retry_after=0.1)
        defaults.update(overrides)
        return AdmissionController(AdmissionConfig(**defaults))

    def test_rejects_past_queue_bound_with_backoff_hint(self):
        with use_registry(MetricsRegistry()) as registry:
            controller = self._controller()
            controller.admit("a")
            controller.admit("a")
            with pytest.raises(AdmissionRejectedError, match="queue full") as info:
                controller.admit("a")
            # The hint scales with saturation: base 0.1s * (1 + 2/2).
            assert info.value.retry_after == pytest.approx(0.2)
            assert registry.counter("service.jobs.rejected").value == 1
            assert registry.counter("service.tenant.a.rejected").value == 1

    def test_started_jobs_free_queue_slots(self):
        with use_registry(MetricsRegistry()):
            controller = self._controller()
            controller.admit("a")
            controller.admit("a")
            controller.job_started()
            controller.admit("a")  # a slot opened up
            assert controller.queued == 2 and controller.running == 1

    def test_queue_depth_gauge_tracks_admissions(self):
        with use_registry(MetricsRegistry()) as registry:
            controller = self._controller()
            controller.admit("a")
            assert registry.gauge("service.queue.depth").value == 1
            controller.job_started()
            assert registry.gauge("service.queue.depth").value == 0
            assert registry.gauge("service.jobs.running").value == 1


class TestTenantQuota:
    def test_quota_covers_queued_plus_running(self):
        with use_registry(MetricsRegistry()):
            config = AdmissionConfig(max_queue_depth=64, tenant_quota=2)
            controller = AdmissionController(config)
            controller.admit("a")
            controller.admit("a")
            controller.job_started()  # still charged to the tenant
            with pytest.raises(AdmissionRejectedError, match="over quota"):
                controller.admit("a")

    def test_quota_is_per_tenant(self):
        with use_registry(MetricsRegistry()):
            config = AdmissionConfig(max_queue_depth=64, tenant_quota=1)
            controller = AdmissionController(config)
            controller.admit("a")
            controller.admit("b")  # unaffected by a's quota
            with pytest.raises(AdmissionRejectedError):
                controller.admit("a")

    def test_finished_jobs_release_quota(self):
        with use_registry(MetricsRegistry()):
            config = AdmissionConfig(max_queue_depth=64, tenant_quota=1)
            controller = AdmissionController(config)
            controller.admit("a")
            controller.job_started()
            controller.job_finished("a", failed=False)
            controller.admit("a")  # quota released

    def test_resume_charges_queue_and_tenant_symmetrically(self):
        # Restart recovery re-admits journaled jobs via resume(); their
        # completion must release a slot they actually hold, so a tenant
        # with both resumed and fresh jobs never goes negative.
        with use_registry(MetricsRegistry()):
            config = AdmissionConfig(max_queue_depth=64, tenant_quota=2)
            controller = AdmissionController(config)
            controller.resume("a")
            assert controller.queued == 1
            assert controller.tenant_load("a") == 1
            controller.admit("a")  # fresh job alongside the resumed one
            with pytest.raises(AdmissionRejectedError, match="over quota"):
                controller.admit("a")
            controller.job_started()
            controller.job_finished("a", failed=False)  # resumed job done
            assert controller.tenant_load("a") == 1  # fresh job still charged
            controller.job_started()
            controller.job_finished("a", failed=False)
            assert controller.tenant_load("a") == 0
            assert controller.queued == 0 and controller.running == 0


class TestDegradeThreshold:
    def test_degrade_flag_tracks_saturation(self):
        with use_registry(MetricsRegistry()):
            config = AdmissionConfig(
                max_queue_depth=4, tenant_quota=10, degrade_threshold=0.5
            )
            controller = AdmissionController(config)
            assert controller.admit("a") is False  # 1/4 = 0.25
            assert controller.admit("a") is True  # 2/4 = 0.50


class TestCircuitBreaker:
    def test_opens_at_threshold_and_cools_down(self):
        clock = FakeClock()
        breaker = TenantCircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.check()  # one failure: still closed
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.check()
        assert 0.0 < info.value.retry_after <= 5.0
        clock.advance(5.0)
        assert breaker.state == "half-open"
        breaker.check()  # half-open admits the probe

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = TenantCircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_success_closes_and_resets_count(self):
        clock = FakeClock()
        breaker = TenantCircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()  # count restarted: still closed
        breaker.check()

    def test_zero_threshold_disables_breaker(self):
        breaker = TenantCircuitBreaker(threshold=0, cooldown=5.0)
        for _ in range(50):
            breaker.record_failure()
        breaker.check()  # never opens

    def test_controller_feeds_breaker_from_job_outcomes(self):
        with use_registry(MetricsRegistry()):
            clock = FakeClock()
            config = AdmissionConfig(
                max_queue_depth=64,
                tenant_quota=32,
                breaker_threshold=2,
                breaker_cooldown=9.0,
            )
            controller = AdmissionController(config, clock=clock)
            for _ in range(2):
                controller.admit("flaky")
                controller.job_started()
                controller.job_finished("flaky", failed=True)
            with pytest.raises(CircuitOpenError):
                controller.admit("flaky")
            controller.admit("healthy")  # other tenants unaffected
            clock.advance(9.0)
            controller.admit("flaky")  # half-open probe admitted
