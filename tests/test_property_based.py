"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.conflict_period import conflict_periods
from repro.core.rcd import RcdAnalysis, compute_rcds
from repro.optimize.layout import sets_covered_by_stride
from repro.stats.distributions import EmpiricalCdf, gini_coefficient
from repro.stats.validation import confusion_counts, k_fold_indices
from repro.trace.allocator import VirtualAllocator
from repro.workloads.padding import rows_per_set_cycle

set_sequences = st.lists(st.integers(min_value=0, max_value=63), max_size=300)
addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 24), min_size=0, max_size=300
)


class TestRcdInvariants:
    @given(set_sequences)
    def test_observation_count_bounded(self, sequence):
        observations = compute_rcds(sequence)
        distinct = len(set(sequence))
        assert len(observations) == len(sequence) - distinct

    @given(set_sequences)
    def test_rcd_values_bounded_by_gap(self, sequence):
        for observation in compute_rcds(sequence):
            assert 0 <= observation.rcd < len(sequence)

    @given(set_sequences)
    def test_positions_strictly_increasing_per_set(self, sequence):
        by_set = {}
        for observation in compute_rcds(sequence):
            previous = by_set.get(observation.set_index, -1)
            assert observation.position > previous
            by_set[observation.set_index] = observation.position

    @given(set_sequences)
    def test_contribution_is_a_fraction(self, sequence):
        analysis = RcdAnalysis.from_set_sequence(sequence, num_sets=64)
        for threshold in (1, 8, 64):
            assert 0.0 <= analysis.contribution_below(threshold) <= 1.0

    @given(set_sequences)
    def test_contribution_monotone_in_threshold(self, sequence):
        analysis = RcdAnalysis.from_set_sequence(sequence, num_sets=64)
        values = [analysis.contribution_below(t) for t in (1, 2, 4, 8, 16, 64)]
        assert values == sorted(values)

    @given(set_sequences)
    def test_conflict_period_lengths_sum_to_observations(self, sequence):
        observations = compute_rcds(sequence)
        runs = conflict_periods(observations)
        assert sum(run.length for run in runs) == len(observations)


class TestCacheInvariants:
    @given(addresses)
    @settings(max_examples=50)
    def test_repeat_trace_second_pass_bounded_misses(self, address_list):
        # Second identical pass can only miss where the working set exceeds
        # what the cache retains; never more misses than the first pass.
        cache = SetAssociativeCache(CacheGeometry(line_size=64, num_sets=4, ways=2))
        first = sum(1 for a in address_list if cache.access(a).miss)
        second = sum(1 for a in address_list if cache.access(a).miss)
        assert second <= first

    @given(addresses)
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_ways(self, address_list):
        geometry = CacheGeometry(line_size=32, num_sets=8, ways=2)
        cache = SetAssociativeCache(geometry)
        for address in address_list:
            cache.access(address)
        for set_index in range(geometry.num_sets):
            assert len(cache.resident_tags(set_index)) <= geometry.ways

    @given(addresses)
    @settings(max_examples=50)
    def test_stats_balance(self, address_list):
        cache = SetAssociativeCache(CacheGeometry())
        for address in address_list:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert sum(stats.set_misses) == stats.misses
        assert sum(stats.set_accesses) == stats.accesses
        assert stats.cold_misses <= stats.misses

    @given(addresses)
    @settings(max_examples=30)
    def test_set_index_matches_geometry(self, address_list):
        geometry = CacheGeometry()
        cache = SetAssociativeCache(geometry)
        for address in address_list:
            result = cache.access(address)
            assert result.set_index == geometry.set_index(address)
            assert result.tag == geometry.tag(address)


class TestGeometryInvariants:
    @given(
        st.integers(min_value=0, max_value=1 << 40),
        st.sampled_from([16, 32, 64, 128]),
        st.sampled_from([4, 16, 64, 256]),
    )
    def test_bit_decomposition_reconstructs(self, address, line_size, num_sets):
        geometry = CacheGeometry(line_size=line_size, num_sets=num_sets, ways=4)
        rebuilt = (
            (geometry.tag(address) << (geometry.offset_bits + geometry.index_bits))
            | (geometry.set_index(address) << geometry.offset_bits)
            | geometry.offset(address)
        )
        assert rebuilt == address

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_stride_set_coverage_bounds(self, stride):
        geometry = CacheGeometry()
        covered = sets_covered_by_stride(stride, geometry)
        assert 1 <= covered <= geometry.num_sets

    @given(st.integers(min_value=1, max_value=1 << 16))
    def test_rows_per_set_cycle_divides_period(self, pitch):
        geometry = CacheGeometry()
        cycle = rows_per_set_cycle(pitch, geometry)
        assert geometry.mapping_period % cycle == 0


class TestStatsInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
    def test_cdf_monotone_ends_at_one(self, values):
        cdf = EmpiricalCdf.from_values(values)
        assert list(cdf.cumulative) == sorted(cdf.cumulative)
        assert math.isclose(cdf.cumulative[-1], 1.0)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
    def test_gini_in_unit_interval(self, counts):
        assert 0.0 <= gini_coefficient(counts) <= 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=100),
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=100),
    )
    def test_confusion_counts_total(self, predictions, labels):
        n = min(len(predictions), len(labels))
        counts = confusion_counts(predictions[:n], labels[:n])
        total = (
            counts.true_positive
            + counts.false_positive
            + counts.true_negative
            + counts.false_negative
        )
        assert total == n
        assert 0.0 <= counts.f1 <= 1.0

    @given(
        st.integers(min_value=8, max_value=200),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=100),
    )
    def test_k_fold_partitions(self, count, folds, seed):
        folds_list = k_fold_indices(count, folds, seed=seed)
        flattened = sorted(i for fold in folds_list for i in fold)
        assert flattened == list(range(count))
        sizes = [len(fold) for fold in folds_list]
        assert max(sizes) - min(sizes) <= 1


class TestAllocatorInvariants:
    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=50))
    def test_allocations_never_overlap(self, sizes):
        allocator = VirtualAllocator()
        allocations = [
            allocator.malloc(size, f"a{i}") for i, size in enumerate(sizes)
        ]
        for first, second in zip(allocations, allocations[1:]):
            assert first.end <= second.start

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=50))
    def test_find_resolves_every_interior_address(self, sizes):
        allocator = VirtualAllocator()
        allocations = [
            allocator.malloc(size, f"a{i}") for i, size in enumerate(sizes)
        ]
        for allocation in allocations:
            found = allocator.find(allocation.start + allocation.size // 2)
            assert found is not None and found.label == allocation.label
