"""Tests for repro.program.loops: natural loops and Havlak interval analysis."""

import pytest

from repro.program.cfg import ControlFlowGraph
from repro.program.loops import find_natural_loops, havlak_loops


def build(edges, blocks, entry=0):
    cfg = ControlFlowGraph()
    for _ in range(blocks):
        cfg.new_block()
    cfg.entry = entry
    for source, target in edges:
        cfg.add_edge(source, target)
    return cfg


def simple_loop():
    # 0 -> 1(header) -> 2(body) -> 1, 1 -> 3(exit)
    return build([(0, 1), (1, 2), (2, 1), (1, 3)], 4)


def nested_loops():
    # 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner body) -> 2,
    # 2 -> 4(outer latch) -> 1, 1 -> 5(exit)
    return build(
        [(0, 1), (1, 2), (2, 3), (3, 2), (2, 4), (4, 1), (1, 5)], 6
    )


def irreducible_region():
    # Two-entry region: 0 -> 1, 0 -> 2, 1 <-> 2, 2 -> 3
    return build([(0, 1), (0, 2), (1, 2), (2, 1), (2, 3)], 4)


class TestNaturalLoops:
    def test_simple_loop_found(self):
        forest = find_natural_loops(simple_loop())
        assert len(forest) == 1
        loop = forest.loops[0]
        assert loop.header == 1
        assert loop.body == {1, 2}

    def test_nested_loops_nesting(self):
        forest = find_natural_loops(nested_loops())
        outer = forest.loop_with_header(1)
        inner = forest.loop_with_header(2)
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.depth == 1 and inner.depth == 2

    def test_outer_contains_inner_body(self):
        forest = find_natural_loops(nested_loops())
        outer = forest.loop_with_header(1)
        assert {2, 3, 4} <= outer.body

    def test_loop_free_graph(self):
        forest = find_natural_loops(build([(0, 1), (1, 2)], 3))
        assert len(forest) == 0
        assert forest.max_depth() == 0

    def test_self_loop(self):
        forest = find_natural_loops(build([(0, 1), (1, 1), (1, 2)], 3))
        loop = forest.loop_with_header(1)
        assert loop is not None and loop.body == {1}


class TestHavlak:
    def test_simple_loop_found(self):
        forest = havlak_loops(simple_loop())
        loop = forest.loop_with_header(1)
        assert loop is not None
        assert loop.body >= {1, 2}
        assert not loop.is_irreducible

    def test_nested_loops(self):
        forest = havlak_loops(nested_loops())
        outer = forest.loop_with_header(1)
        inner = forest.loop_with_header(2)
        assert inner.parent is outer
        assert inner.is_innermost
        assert not outer.is_innermost
        assert inner.body >= {2, 3}
        assert outer.body >= {1, 2, 3, 4}

    def test_innermost_lookup(self):
        forest = havlak_loops(nested_loops())
        assert forest.innermost_loop(3).header == 2
        assert forest.innermost_loop(4).header == 1
        assert forest.innermost_loop(5) is None
        assert forest.innermost_loop(0) is None

    def test_irreducible_region_detected(self):
        forest = havlak_loops(irreducible_region())
        assert any(loop.is_irreducible for loop in forest)

    def test_loop_free_graph(self):
        forest = havlak_loops(build([(0, 1), (1, 2)], 3))
        assert len(forest) == 0

    def test_empty_graph(self):
        assert len(havlak_loops(ControlFlowGraph())) == 0

    def test_self_loop(self):
        forest = havlak_loops(build([(0, 1), (1, 1), (1, 2)], 3))
        loop = forest.loop_with_header(1)
        assert loop is not None

    def test_triple_nesting_depth(self):
        # Three concentric loops.
        cfg = build(
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 3),   # innermost self-loop
                (3, 4),
                (4, 2),   # middle latch
                (2, 5),
                (5, 1),   # outer latch
                (1, 6),
            ],
            7,
        )
        forest = havlak_loops(cfg)
        assert forest.max_depth() == 3
        assert forest.innermost_loop(3).header == 3

    def test_agrees_with_natural_loops_on_reducible_graphs(self):
        for cfg_factory in (simple_loop, nested_loops):
            cfg = cfg_factory()
            natural = find_natural_loops(cfg)
            havlak = havlak_loops(cfg)
            natural_headers = {loop.header for loop in natural}
            havlak_headers = {loop.header for loop in havlak}
            assert natural_headers == havlak_headers

    def test_irreducible_region_nested_in_reducible_loop(self):
        # An outer *reducible* loop headed at 1 whose body contains a
        # multi-entry region: 1 branches into both 2 and 3, which form a
        # cycle with each other.  Havlak must (a) keep the outer loop
        # reducible, (b) flag the inner region irreducible, and (c) nest the
        # inner region strictly inside the outer loop.
        #
        #   0 -> 1 (outer header)
        #   1 -> 2, 1 -> 3       (two entries into the {2, 3} cycle)
        #   2 -> 3, 3 -> 2       (the irreducible cycle)
        #   3 -> 1               (outer back edge)
        #   1 -> 4               (exit)
        cfg = build(
            [(0, 1), (1, 2), (1, 3), (2, 3), (3, 2), (3, 1), (1, 4)], 5
        )
        forest = havlak_loops(cfg)
        outer = forest.loop_with_header(1)
        assert outer is not None
        assert not outer.is_irreducible
        assert outer.body >= {1, 2, 3}
        irreducible = [loop for loop in forest if loop.is_irreducible]
        assert len(irreducible) == 1
        inner = irreducible[0]
        assert inner.header in {2, 3}
        assert inner.body >= {2, 3}
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.depth == 1 and inner.depth == 2
        # Membership queries see the nesting too.
        assert forest.innermost_loop(2) is inner
        assert forest.innermost_loop(4) is None


class TestForestQueries:
    def test_roots(self):
        forest = havlak_loops(nested_loops())
        assert [loop.header for loop in forest.roots] == [1]

    def test_loop_with_missing_header(self):
        forest = havlak_loops(simple_loop())
        assert forest.loop_with_header(99) is None

    def test_contains_block(self):
        forest = havlak_loops(simple_loop())
        loop = forest.loop_with_header(1)
        assert loop.contains_block(2)
        assert not loop.contains_block(3)

    def test_repr_mentions_depth(self):
        forest = havlak_loops(simple_loop())
        assert "depth=1" in repr(forest.loops[0])
