"""Tests for the ``ccprof serve`` / ``ccprof submit`` CLI surface."""

import asyncio
import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.service.daemon import CCProfService, ServiceConfig


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.socket == "ccprof.sock"
        assert args.workers == 4
        assert args.max_queue == 64
        assert args.tenant_quota == 8
        assert args.deadline_ms == 30_000
        assert args.max_attempts == 3
        assert args.journal is None
        assert args.fsync is False
        assert args.kill_rate == 0.0

    def test_flags_round_trip(self):
        args = build_parser().parse_args(
            [
                "serve", "--socket", "/tmp/s.sock", "--workers", "2",
                "--journal", "j.log", "--fsync", "--kill-rate", "0.5",
                "--kill-max", "3", "--manifest-dir", "m",
            ]
        )
        assert args.socket == "/tmp/s.sock"
        assert args.workers == 2
        assert args.journal == "j.log" and args.fsync
        assert args.kill_rate == 0.5 and args.kill_max == 3
        assert args.manifest_dir == "m"


class TestSubmitParser:
    def test_defaults(self):
        args = build_parser().parse_args(["submit", "gemm"])
        assert args.workload == "gemm"
        assert args.kind == "profile"
        assert args.id == "cli-job" and args.tenant == "cli"
        assert args.param == []

    def test_repeatable_params(self):
        args = build_parser().parse_args(
            ["submit", "gemm", "--param", "n=24", "--param", "sweeps=2"]
        )
        assert args.param == ["n=24", "sweeps=2"]

    def test_unknown_kind_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "gemm", "--kind", "vaporize"])


class TestSubmitCommand:
    def test_malformed_param_is_family_error(self, tmp_path, capsys):
        code = main(
            ["submit", "gemm", "--socket", str(tmp_path / "none.sock"),
             "--param", "n"]
        )
        assert code == 1  # ReproError family
        assert "bad --param" in capsys.readouterr().err

    def test_non_integer_param_is_family_error(self, tmp_path, capsys):
        code = main(
            ["submit", "gemm", "--socket", str(tmp_path / "none.sock"),
             "--param", "n=big"]
        )
        assert code == 1
        assert "must be an integer" in capsys.readouterr().err

    def test_unreachable_socket_is_service_error(self, tmp_path, capsys):
        code = main(["submit", "gemm", "--socket", str(tmp_path / "no.sock")])
        assert code == 12  # service family exit code
        assert "[service]" in capsys.readouterr().err


class TestSubmitAgainstLiveService:
    """Drive the real CLI against a daemon running on a background thread."""

    @pytest.fixture()
    def live_socket(self, tmp_path):
        socket_path = str(tmp_path / "ccprof.sock")
        ready = threading.Event()
        stop = None
        loop_holder = {}

        def serve():
            async def body():
                service = CCProfService(ServiceConfig(socket_path=socket_path))
                await service.start()
                loop_holder["loop"] = asyncio.get_running_loop()
                loop_holder["stop"] = asyncio.Event()
                ready.set()
                await loop_holder["stop"].wait()
                await service.stop()

            asyncio.run(body())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(timeout=30), "daemon never came up"
        yield socket_path
        loop_holder["loop"].call_soon_threadsafe(loop_holder["stop"].set)
        thread.join(timeout=30)

    def test_submit_predict_succeeds(self, live_socket, capsys):
        code = main(
            ["submit", "symmetrization", "--socket", live_socket,
             "--kind", "predict", "--param", "n=48", "--param", "sweeps=1",
             "--id", "cli-1", "--period", "64"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "completed"
        assert payload["id"] == "cli-1" and payload["tenant"] == "cli"

    def test_submit_unknown_workload_maps_to_exit_code(
        self, live_socket, capsys
    ):
        code = main(
            ["submit", "quake", "--socket", live_socket, "--kind", "predict"]
        )
        assert code == 1  # repro family: unknown workload
        err = capsys.readouterr().err
        assert "failed" in err and "unknown workload" in err
