"""Tests for repro.pmu.multithread."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import SamplingError
from repro.pmu.multithread import MultiThreadMonitor, MultiThreadProfile
from repro.pmu.periods import FixedPeriod
from tests.conftest import make_load


def resident_stream(base, count=400):
    """A small working set: misses only on cold lines."""
    for i in range(count):
        yield make_load(base + (i % 4) * 64)


def conflict_stream(geometry, base, count=200):
    """12 lines folded onto one set: misses on every access after warm-up."""
    for i in range(count):
        yield make_load(base + (i % 12) * geometry.mapping_period)


@pytest.fixture
def monitor(paper_l1):
    return MultiThreadMonitor(paper_l1, period=FixedPeriod(5), seed=1)


class TestPerThreadResults:
    def test_each_thread_gets_a_result(self, monitor, paper_l1):
        profile = monitor.profile(
            {0: resident_stream(0x1000), 1: resident_stream(0x20000)}
        )
        assert profile.thread_ids == [0, 1]
        assert profile.thread(0).total_accesses == 400

    def test_unknown_thread_lookup(self):
        with pytest.raises(SamplingError):
            MultiThreadProfile().thread(7)

    def test_merged_requires_threads(self):
        with pytest.raises(SamplingError):
            MultiThreadProfile().merged()

    def test_merged_totals_add_up(self, monitor, paper_l1):
        profile = monitor.profile(
            {0: conflict_stream(paper_l1, 0x1000_0000),
             1: conflict_stream(paper_l1, 0x2000_0000)}
        )
        merged = profile.merged()
        assert merged.total_events == sum(
            profile.thread(t).total_events for t in profile.thread_ids
        )
        assert merged.sample_count == sum(
            profile.thread(t).sample_count for t in profile.thread_ids
        )

    def test_samples_tagged_correctly(self, monitor, paper_l1):
        profile = monitor.profile(
            {3: conflict_stream(paper_l1, 0x3000_0000)}
        )
        result = profile.thread(3)
        assert result.sample_count > 0
        assert all(
            sample.address >= 0x3000_0000 for sample in result.samples
        )


class TestSmtSharing:
    def test_private_cores_isolate_threads(self, monitor, paper_l1):
        # Two threads with small working sets on private cores: cold misses only.
        profile = monitor.profile(
            {0: resident_stream(0x1000), 1: resident_stream(0x1000)}
        )
        assert profile.thread(0).total_events <= 4
        assert profile.thread(1).total_events <= 4

    def test_smt_sharing_creates_interference(self, paper_l1):
        # Each thread alone fills exactly 8 ways of set 0 (no conflict);
        # sharing an L1 doubles the pressure to 16 lines -> thrash.
        def eight_lines(base):
            for _ in range(100):
                for i in range(8):
                    yield make_load(base + i * paper_l1.mapping_period)

        monitor = MultiThreadMonitor(paper_l1, period=FixedPeriod(5))
        private = monitor.profile(
            {0: eight_lines(0x1000_0000), 1: eight_lines(0x2000_0000)}
        )
        shared = monitor.profile(
            {0: eight_lines(0x1000_0000), 1: eight_lines(0x2000_0000)},
            core_groups=[[0, 1]],
        )
        private_events = sum(private.thread(t).total_events for t in (0, 1))
        shared_events = sum(shared.thread(t).total_events for t in (0, 1))
        assert private_events <= 16   # cold only
        assert shared_events > 10 * private_events

    def test_core_group_with_unknown_thread(self, monitor, paper_l1):
        with pytest.raises(SamplingError, match="unknown thread"):
            monitor.profile({0: resident_stream(0)}, core_groups=[[0, 9]])

    def test_merged_is_time_ordered(self, monitor, paper_l1):
        profile = monitor.profile(
            {0: conflict_stream(paper_l1, 0x1000_0000),
             1: conflict_stream(paper_l1, 0x2000_0000)},
            core_groups=[[0, 1]],
        )
        merged = profile.merged()
        indices = [sample.access_index for sample in merged.samples]
        assert indices == sorted(indices)
