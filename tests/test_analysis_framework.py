"""Tests for repro.analysis.framework: the cached analysis-pass machinery."""

import pytest

from repro.analysis.framework import AnalysisCache, AnalysisPass, CacheStats
from repro.errors import AnalysisError


class PassA(AnalysisPass):
    def analyze(self):
        self.value = "a"
        type(self).run_count = getattr(type(self), "run_count", 0) + 1


class PassB(AnalysisPass):
    requires = (PassA,)

    def analyze(self):
        self.value = self.request(PassA).value + "b"


class PassC(AnalysisPass):
    requires = (PassB,)

    def analyze(self):
        self.value = self.request(PassB).value + "c"


class CycleX(AnalysisPass):
    def analyze(self):
        self.request(CycleY)


class CycleY(AnalysisPass):
    def analyze(self):
        self.request(CycleX)


class SelfCycle(AnalysisPass):
    def analyze(self):
        self.request(SelfCycle)


@pytest.fixture
def cache():
    # Framework behaviour is model-agnostic; a sentinel model suffices.
    PassA.run_count = 0
    return AnalysisCache(model=object())


class TestCaching:
    def test_pass_runs_once_then_hits(self, cache):
        first = cache.request(PassA)
        second = cache.request(PassA)
        assert first is second
        assert PassA.run_count == 1
        assert cache.stats.runs == 1
        assert cache.stats.hits == 1

    def test_requires_satisfied_before_analyze(self, cache):
        assert cache.request(PassB).value == "ab"
        assert cache.has_result(PassA)

    def test_transitive_chain(self, cache):
        assert cache.request(PassC).value == "abc"
        # Three passes ran; B's request(A) and C's request(B) hit the cache
        # because `requires` pre-ran them.
        assert cache.stats.runs == 3

    def test_has_result(self, cache):
        assert not cache.has_result(PassA)
        cache.request(PassA)
        assert cache.has_result(PassA)


class TestInvalidation:
    def test_cascades_to_transitive_dependents(self, cache):
        cache.request(PassC)
        evicted = cache.invalidate(PassA)
        assert set(evicted) == {PassA, PassB, PassC}
        assert not cache.has_result(PassC)
        assert cache.stats.invalidations == 3

    def test_leaf_invalidation_spares_dependencies(self, cache):
        cache.request(PassC)
        evicted = cache.invalidate(PassC)
        assert evicted == [PassC]
        assert cache.has_result(PassA) and cache.has_result(PassB)

    def test_rerun_after_invalidation(self, cache):
        cache.request(PassC)
        cache.invalidate(PassA)
        assert cache.request(PassC).value == "abc"
        assert PassA.run_count == 2

    def test_invalidate_uncached_pass_is_noop(self, cache):
        assert cache.invalidate(PassA) == []
        assert cache.stats.invalidations == 0

    def test_invalidate_all(self, cache):
        cache.request(PassC)
        cache.invalidate_all()
        assert not cache.has_result(PassA)
        assert not cache.has_result(PassB)
        assert not cache.has_result(PassC)
        assert cache.stats.invalidations == 3


class TestCycleDetection:
    def test_mutual_cycle_raises(self, cache):
        with pytest.raises(AnalysisError, match="circular"):
            cache.request(CycleX)

    def test_self_cycle_raises(self, cache):
        with pytest.raises(AnalysisError, match="circular"):
            cache.request(SelfCycle)

    def test_cache_usable_after_cycle_error(self, cache):
        with pytest.raises(AnalysisError):
            cache.request(CycleX)
        assert cache.request(PassA).value == "a"


class TestStats:
    def test_describe(self):
        stats = CacheStats(runs=3, hits=2, invalidations=1)
        assert "3 passes run" in stats.describe()
        assert "2 cache hits" in stats.describe()
        assert "1 invalidations" in stats.describe()
