"""Tests for repro.core.phases — phase-aware conflict analysis."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.phases import PhaseAnalyzer, PhasedAnalysis
from repro.errors import AnalysisError
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from tests.conftest import make_load


def sampled(trace, geometry, period=5):
    sampler = AddressSampler(geometry, period=FixedPeriod(period))
    return sampler.run(trace).samples


def conflict_phase(geometry, laps=300):
    for _ in range(laps):
        for i in range(12):
            yield make_load(0x1000_0000 + i * geometry.mapping_period)


def clean_phase(geometry, laps=8):
    lines = 4 * geometry.num_sets * geometry.ways
    for _ in range(laps):
        for i in range(lines):
            yield make_load(0x4000_0000 + i * geometry.line_size)


class TestPhaseDetection:
    def test_uniform_conflict_all_phases_flagged(self, paper_l1):
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        analysis = PhaseAnalyzer(paper_l1, window=128).analyze(samples)
        assert analysis.phases
        assert analysis.conflict_fraction == 1.0
        assert analysis.is_uniform

    def test_uniform_clean_no_phase_flagged(self, paper_l1):
        samples = sampled(clean_phase(paper_l1), paper_l1)
        analysis = PhaseAnalyzer(paper_l1, window=128).analyze(samples)
        assert analysis.phases
        assert analysis.conflict_fraction == 0.0

    def test_two_phase_workload_transition_found(self, paper_l1):
        import itertools

        trace = itertools.chain(clean_phase(paper_l1), conflict_phase(paper_l1))
        samples = sampled(trace, paper_l1)
        analysis = PhaseAnalyzer(paper_l1, window=128).analyze(samples)
        assert not analysis.is_uniform
        transitions = analysis.transitions()
        assert len(transitions) == 1
        # The flip goes clean -> conflict.
        assert not analysis.phases[0].has_conflict
        assert analysis.phases[-1].has_conflict

    def test_peak_contribution_seen_despite_dilution(self, paper_l1):
        import itertools

        # 7 clean laps for every conflict lap: the whole-run cf dilutes,
        # but the windows covering the conflict phase still peak high.
        trace = itertools.chain(
            clean_phase(paper_l1, laps=14), conflict_phase(paper_l1, laps=150)
        )
        samples = sampled(trace, paper_l1)
        analyzer = PhaseAnalyzer(paper_l1, window=128)
        analysis = analyzer.analyze(samples)
        assert analysis.max_contribution() > 0.7

    def test_victim_sets_reported_per_phase(self, paper_l1):
        samples = sampled(conflict_phase(paper_l1), paper_l1)
        analysis = PhaseAnalyzer(paper_l1, window=128).analyze(samples)
        flagged = analysis.conflict_phases()[0]
        assert 0 in flagged.victim_sets  # all conflict lines map to set 0


class TestWindowing:
    def test_trailing_window_folded(self, paper_l1):
        samples = sampled(conflict_phase(paper_l1, laps=40), paper_l1)
        analyzer = PhaseAnalyzer(paper_l1, window=64, min_window=32)
        analysis = analyzer.analyze(samples)
        # No phase smaller than min_window unless it is the only one.
        if len(analysis.phases) > 1:
            assert all(p.sample_count >= 32 for p in analysis.phases)

    def test_empty_samples(self, paper_l1):
        analysis = PhaseAnalyzer(paper_l1).analyze([])
        assert analysis.phases == []
        assert analysis.conflict_fraction == 0.0
        with pytest.raises(AnalysisError):
            analysis.max_contribution()

    def test_fewer_samples_than_window(self, paper_l1):
        samples = sampled(conflict_phase(paper_l1, laps=30), paper_l1)
        analyzer = PhaseAnalyzer(paper_l1, window=10_000)
        analysis = analyzer.analyze(samples)
        assert len(analysis.phases) == 1

    def test_validation(self, paper_l1):
        with pytest.raises(AnalysisError):
            PhaseAnalyzer(paper_l1, window=0)
        with pytest.raises(AnalysisError):
            PhaseAnalyzer(paper_l1, window=10, min_window=20)


class TestDataclassQueries:
    def test_empty_analysis_queries(self):
        analysis = PhasedAnalysis()
        assert analysis.transitions() == []
        assert analysis.is_uniform
        assert analysis.conflict_phases() == []
