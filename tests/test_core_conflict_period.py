"""Tests for repro.core.conflict_period."""

import pytest

from repro.core.conflict_period import (
    ConflictPeriodAnalysis,
    ConflictPeriodRun,
    conflict_periods,
    detectable,
)
from repro.core.rcd import compute_rcds


class TestRunExtraction:
    def test_single_constant_run(self):
        observations = compute_rcds([1] * 5)  # 4 observations, RCD 0
        runs = conflict_periods(observations)
        assert len(runs) == 1
        assert runs[0].length == 4
        assert runs[0].rcd == 0

    def test_rcd_change_splits_runs(self):
        # Set 1 at positions 0,1,2 then 5,8: RCDs 0,0,2,2.
        sequence = [1, 1, 1, 2, 3, 1, 2, 3, 1]
        observations = [o for o in compute_rcds(sequence) if o.set_index == 1]
        runs = conflict_periods(observations)
        assert [(run.rcd, run.length) for run in runs] == [(0, 2), (2, 2)]

    def test_per_set_separation(self):
        sequence = [1, 2, 1, 2, 1, 2]
        runs = conflict_periods(compute_rcds(sequence))
        assert {run.set_index for run in runs} == {1, 2}
        for run in runs:
            assert run.rcd == 1

    def test_empty(self):
        assert conflict_periods([]) == []

    def test_start_positions_recorded(self):
        observations = compute_rcds([4, 4, 4])
        (run,) = conflict_periods(observations)
        assert run.start_position == 1  # first observation is at miss #1


class TestDetectability:
    def test_long_run_detectable_at_coarse_period(self):
        run = ConflictPeriodRun(set_index=0, rcd=3, length=1000, start_position=0)
        assert detectable(run, sampling_period=1212)

    def test_short_run_undetectable(self):
        run = ConflictPeriodRun(set_index=0, rcd=0, length=3, start_position=0)
        assert not detectable(run, sampling_period=1212)

    def test_boundary(self):
        run = ConflictPeriodRun(set_index=0, rcd=0, length=10, start_position=0)
        assert detectable(run, sampling_period=9)
        assert not detectable(run, sampling_period=10)


class TestAnalysis:
    def test_mean_period(self):
        observations = compute_rcds([1, 1, 1, 1])
        analysis = ConflictPeriodAnalysis.from_observations(observations)
        assert analysis.mean_period() == 3.0

    def test_detectable_fraction(self):
        runs = [
            ConflictPeriodRun(0, rcd=0, length=100, start_position=0),
            ConflictPeriodRun(1, rcd=0, length=2, start_position=0),
        ]
        analysis = ConflictPeriodAnalysis(runs=runs)
        assert analysis.detectable_fraction(sampling_period=50) == 0.5

    def test_empty_analysis(self):
        analysis = ConflictPeriodAnalysis(runs=[])
        assert analysis.mean_period() == 0.0
        assert analysis.detectable_fraction(100) == 0.0
        assert analysis.summary() == {"count": 0.0}

    def test_himeno_signature_small_cp(self):
        # The HimenoBMT pattern (§6.6): the victim set changes every few
        # misses -> many short runs.
        sequence = []
        for i in range(200):
            sequence.extend([i % 64] * 3)
        analysis = ConflictPeriodAnalysis.from_observations(compute_rcds(sequence))
        assert analysis.mean_period() <= 3.0

    def test_mean_span_in_misses(self):
        observations = compute_rcds([1, 1, 1, 1])  # one run, length 3, rcd 0
        analysis = ConflictPeriodAnalysis.from_observations(observations)
        assert analysis.mean_span_in_misses() == pytest.approx(3.0)
