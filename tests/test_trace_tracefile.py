"""Tests for repro.trace.tracefile."""

import pytest

from repro.errors import TraceError
from repro.trace.record import AccessKind, MemoryAccess
from repro.trace.tracefile import (
    read_binary_trace,
    read_dinero_trace,
    write_binary_trace,
    write_dinero_trace,
)
from tests.conftest import make_load, make_store


@pytest.fixture
def sample_trace():
    return [
        make_load(0x1000, ip=0x400000),
        make_store(0x2040, ip=0x400004, size=4),
        MemoryAccess(ip=0x400008, address=0x3000, kind=AccessKind.IFETCH),
    ]


class TestDineroFormat:
    def test_plain_round_trip_preserves_kind_and_address(self, tmp_path, sample_trace):
        path = tmp_path / "t.din"
        count = write_dinero_trace(path, sample_trace)
        assert count == 3
        loaded = list(read_dinero_trace(path))
        assert [a.kind for a in loaded] == [a.kind for a in sample_trace]
        assert [a.address for a in loaded] == [a.address for a in sample_trace]

    def test_plain_format_drops_ip(self, tmp_path, sample_trace):
        path = tmp_path / "t.din"
        write_dinero_trace(path, sample_trace)
        loaded = list(read_dinero_trace(path))
        assert all(access.ip == 0 for access in loaded)

    def test_extended_round_trip_preserves_ip_and_size(self, tmp_path, sample_trace):
        path = tmp_path / "t.din"
        write_dinero_trace(path, sample_trace, extended=True)
        loaded = list(read_dinero_trace(path))
        assert [a.ip for a in loaded] == [a.ip for a in sample_trace]
        assert [a.size for a in loaded] == [a.size for a in sample_trace]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("# header\n\n0 1000\n")
        loaded = list(read_dinero_trace(path))
        assert len(loaded) == 1 and loaded[0].address == 0x1000

    def test_accepts_letter_codes(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("r 10\nw 20\n")
        loaded = list(read_dinero_trace(path))
        assert loaded[0].kind is AccessKind.LOAD
        assert loaded[1].kind is AccessKind.STORE

    def test_bad_field_count_raises(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 1000 extra\n")
        with pytest.raises(TraceError, match="expected 2 or 4 fields"):
            list(read_dinero_trace(path))

    def test_bad_hex_raises(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 zznotahex\n")
        with pytest.raises(TraceError):
            list(read_dinero_trace(path))


class TestBinaryFormat:
    def test_round_trip_preserves_everything(self, tmp_path, sample_trace):
        path = tmp_path / "t.cctr"
        count = write_binary_trace(path, sample_trace)
        assert count == 3
        assert list(read_binary_trace(path)) == sample_trace

    def test_thread_id_round_trips(self, tmp_path):
        path = tmp_path / "t.cctr"
        access = MemoryAccess(ip=1, address=2, thread_id=7)
        write_binary_trace(path, [access])
        (loaded,) = list(read_binary_trace(path))
        assert loaded.thread_id == 7

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "t.cctr"
        path.write_bytes(b"XXXX\x01\x00\x00\x00")
        with pytest.raises(TraceError, match="bad magic"):
            list(read_binary_trace(path))

    def test_truncated_record_raises(self, tmp_path, sample_trace):
        path = tmp_path / "t.cctr"
        write_binary_trace(path, sample_trace)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceError, match="truncated"):
            list(read_binary_trace(path))

    def test_oversized_access_rejected(self, tmp_path):
        path = tmp_path / "t.cctr"
        with pytest.raises(TraceError, match="exceeds"):
            write_binary_trace(path, [MemoryAccess(ip=0, address=0, size=512)])

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.cctr"
        assert write_binary_trace(path, []) == 0
        assert list(read_binary_trace(path)) == []
