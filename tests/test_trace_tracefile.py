"""Tests for repro.trace.tracefile."""

import struct

import pytest

from repro.errors import TraceError
from repro.trace.record import AccessKind, MemoryAccess
from repro.trace.tracefile import (
    TraceReadStats,
    read_binary_trace,
    read_dinero_trace,
    salvage_binary_trace,
    write_binary_trace,
    write_dinero_trace,
)
from tests.conftest import make_load, make_store


@pytest.fixture
def sample_trace():
    return [
        make_load(0x1000, ip=0x400000),
        make_store(0x2040, ip=0x400004, size=4),
        MemoryAccess(ip=0x400008, address=0x3000, kind=AccessKind.IFETCH),
    ]


class TestDineroFormat:
    def test_plain_round_trip_preserves_kind_and_address(self, tmp_path, sample_trace):
        path = tmp_path / "t.din"
        count = write_dinero_trace(path, sample_trace)
        assert count == 3
        loaded = list(read_dinero_trace(path))
        assert [a.kind for a in loaded] == [a.kind for a in sample_trace]
        assert [a.address for a in loaded] == [a.address for a in sample_trace]

    def test_plain_format_drops_ip(self, tmp_path, sample_trace):
        path = tmp_path / "t.din"
        write_dinero_trace(path, sample_trace)
        loaded = list(read_dinero_trace(path))
        assert all(access.ip == 0 for access in loaded)

    def test_extended_round_trip_preserves_ip_and_size(self, tmp_path, sample_trace):
        path = tmp_path / "t.din"
        write_dinero_trace(path, sample_trace, extended=True)
        loaded = list(read_dinero_trace(path))
        assert [a.ip for a in loaded] == [a.ip for a in sample_trace]
        assert [a.size for a in loaded] == [a.size for a in sample_trace]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("# header\n\n0 1000\n")
        loaded = list(read_dinero_trace(path))
        assert len(loaded) == 1 and loaded[0].address == 0x1000

    def test_accepts_letter_codes(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("r 10\nw 20\n")
        loaded = list(read_dinero_trace(path))
        assert loaded[0].kind is AccessKind.LOAD
        assert loaded[1].kind is AccessKind.STORE

    def test_bad_field_count_raises(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 1000 extra\n")
        with pytest.raises(TraceError, match="expected 2 or 4 fields"):
            list(read_dinero_trace(path))

    def test_bad_hex_raises(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 zznotahex\n")
        with pytest.raises(TraceError):
            list(read_dinero_trace(path))

    def test_lenient_quarantines_malformed_hex(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 1000\n0 zznotahex\n0 2000\n")
        stats = TraceReadStats()
        loaded = list(read_dinero_trace(path, strict=False, stats=stats))
        assert [a.address for a in loaded] == [0x1000, 0x2000]
        assert stats.records_quarantined == 1
        assert stats.records_read == 2
        assert stats.salvaged

    def test_lenient_quarantines_bad_field_count(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 1000 extra\n0 2000\n")
        stats = TraceReadStats()
        loaded = list(read_dinero_trace(path, strict=False, stats=stats))
        assert len(loaded) == 1
        assert stats.records_quarantined == 1

    def test_lenient_quarantines_unknown_kind(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("z 1000\n0 2000\n")
        stats = TraceReadStats()
        loaded = list(read_dinero_trace(path, strict=False, stats=stats))
        assert len(loaded) == 1
        assert stats.records_quarantined == 1


class TestBinaryFormat:
    def test_round_trip_preserves_everything(self, tmp_path, sample_trace):
        path = tmp_path / "t.cctr"
        count = write_binary_trace(path, sample_trace)
        assert count == 3
        assert list(read_binary_trace(path)) == sample_trace

    def test_thread_id_round_trips(self, tmp_path):
        path = tmp_path / "t.cctr"
        access = MemoryAccess(ip=1, address=2, thread_id=7)
        write_binary_trace(path, [access])
        (loaded,) = list(read_binary_trace(path))
        assert loaded.thread_id == 7

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "t.cctr"
        path.write_bytes(b"XXXX\x01\x00\x00\x00")
        with pytest.raises(TraceError, match="bad magic"):
            list(read_binary_trace(path))

    def test_truncated_record_raises(self, tmp_path, sample_trace):
        path = tmp_path / "t.cctr"
        write_binary_trace(path, sample_trace)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceError, match="truncated"):
            list(read_binary_trace(path))

    def test_oversized_access_rejected(self, tmp_path):
        path = tmp_path / "t.cctr"
        with pytest.raises(TraceError, match="exceeds"):
            write_binary_trace(path, [MemoryAccess(ip=0, address=0, size=512)])

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.cctr"
        assert write_binary_trace(path, []) == 0
        assert list(read_binary_trace(path)) == []


class TestFormatVersions:
    def test_v1_traces_still_read_back_unchanged(self, tmp_path, sample_trace):
        path = tmp_path / "t.cctr"
        write_binary_trace(path, sample_trace, version=1)
        stats = TraceReadStats()
        assert list(read_binary_trace(path, stats=stats)) == sample_trace
        assert stats.format_version == 1

    def test_default_write_is_v2(self, tmp_path, sample_trace):
        path = tmp_path / "t.cctr"
        write_binary_trace(path, sample_trace)
        assert path.read_bytes()[4:8] == struct.pack("<I", 2)
        stats = TraceReadStats()
        assert list(read_binary_trace(path, stats=stats)) == sample_trace
        assert stats.format_version == 2

    def test_multi_chunk_round_trip(self, tmp_path):
        trace = [make_load(0x1000 + 64 * i, ip=i) for i in range(100)]
        path = tmp_path / "t.cctr"
        write_binary_trace(path, trace, chunk_records=16)
        assert list(read_binary_trace(path)) == trace

    def test_unknown_read_version_raises(self, tmp_path):
        path = tmp_path / "t.cctr"
        path.write_bytes(b"CCTR" + struct.pack("<I", 3))
        with pytest.raises(TraceError, match="unsupported version"):
            list(read_binary_trace(path))
        # Not salvageable either: the chunk layout is unknown.
        with pytest.raises(TraceError, match="unsupported version"):
            list(read_binary_trace(path, strict=False))

    def test_unknown_write_version_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="unknown format version"):
            write_binary_trace(tmp_path / "t.cctr", [], version=7)


class TestBinaryCorruption:
    """The corruption matrix: every damage class, strict and lenient."""

    def trace(self, count=10):
        return [make_load(0x1000 + 64 * i, ip=0x400 + i) for i in range(count)]

    def test_bad_magic_raises_even_lenient(self, tmp_path):
        path = tmp_path / "t.cctr"
        path.write_bytes(b"XXXX" + struct.pack("<I", 2))
        with pytest.raises(TraceError, match="bad magic"):
            list(read_binary_trace(path, strict=False))

    def test_truncated_file_header(self, tmp_path):
        path = tmp_path / "t.cctr"
        path.write_bytes(b"CCTR\x02")
        with pytest.raises(TraceError, match="truncated header"):
            list(read_binary_trace(path, strict=False))

    def test_v2_truncated_mid_record_strict_raises(self, tmp_path):
        path = tmp_path / "t.cctr"
        write_binary_trace(path, self.trace(), chunk_records=4)
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(TraceError, match="truncated chunk payload"):
            list(read_binary_trace(path))

    def test_v2_truncated_mid_record_lenient_salvages_prefix(self, tmp_path):
        path = tmp_path / "t.cctr"
        trace = self.trace(10)
        write_binary_trace(path, trace, chunk_records=4)
        path.write_bytes(path.read_bytes()[:-7])
        records, stats = salvage_binary_trace(path)
        # Chunks 1 and 2 (8 records) survive; the damaged tail chunk of 2
        # records is quarantined wholesale.
        assert records == trace[:8]
        assert stats.records_quarantined == 2
        assert stats.chunks_skipped == 1
        assert stats.salvaged

    def test_v2_bitflip_strict_raises_checksum_mismatch(self, tmp_path):
        path = tmp_path / "t.cctr"
        write_binary_trace(path, self.trace(6), chunk_records=2)
        data = bytearray(path.read_bytes())
        data[16 + 10] ^= 0x40  # inside the first chunk's payload
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="checksum mismatch"):
            list(read_binary_trace(path))

    def test_v2_bitflip_lenient_quarantines_only_that_chunk(self, tmp_path):
        path = tmp_path / "t.cctr"
        trace = self.trace(6)
        write_binary_trace(path, trace, chunk_records=2)
        data = bytearray(path.read_bytes())
        data[16 + 10] ^= 0x40
        path.write_bytes(bytes(data))
        records, stats = salvage_binary_trace(path)
        assert records == trace[2:]  # later chunks unaffected
        assert stats.records_quarantined == 2
        assert stats.chunks_skipped == 1

    def test_v1_truncated_lenient_salvages_prefix(self, tmp_path):
        path = tmp_path / "t.cctr"
        trace = self.trace(5)
        write_binary_trace(path, trace, version=1)
        path.write_bytes(path.read_bytes()[:-5])
        stats = TraceReadStats()
        records = list(read_binary_trace(path, strict=False, stats=stats))
        assert records == trace[:4]
        assert stats.records_quarantined == 1
        assert stats.salvaged

    def test_v1_corrupt_kind_byte_lenient_quarantines_record(self, tmp_path):
        path = tmp_path / "t.cctr"
        trace = self.trace(3)
        write_binary_trace(path, trace, version=1)
        data = bytearray(path.read_bytes())
        data[8] = 0x7F  # first record's kind byte: no such AccessKind
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="corrupt record"):
            list(read_binary_trace(path))
        stats = TraceReadStats()
        records = list(read_binary_trace(path, strict=False, stats=stats))
        assert records == trace[1:]
        assert stats.records_quarantined == 1

    def test_pristine_file_reads_with_clean_stats(self, tmp_path):
        path = tmp_path / "t.cctr"
        trace = self.trace(9)
        write_binary_trace(path, trace, chunk_records=4)
        records, stats = salvage_binary_trace(path)
        assert records == trace
        assert not stats.salvaged
        assert stats.records_quarantined == 0
        assert stats.records_read == 9


class TestTornTail:
    """A v2 file cut mid-write (killed tracer, full disk) must salvage its
    intact prefix with a clean torn-tail data-quality note — not raise and
    not be mistaken for mid-file corruption."""

    def _write_two_chunks(self, tmp_path, sample_trace):
        path = tmp_path / "torn.bin"
        records = sample_trace * 4  # 12 records -> two chunks of 6
        write_binary_trace(path, records, chunk_records=6)
        return path, records

    def _cut(self, path, drop_to):
        blob = path.read_bytes()
        path.write_bytes(blob[:drop_to])

    def _second_header_offset(self):
        # magic(4) + version(4) + header(8) + 6 records of 24 bytes
        return 4 + 4 + 8 + 6 * 24

    def test_mid_chunk_header_strict_raises(self, tmp_path, sample_trace):
        path, _ = self._write_two_chunks(tmp_path, sample_trace)
        self._cut(path, self._second_header_offset() + 3)  # 3 of 8 bytes
        with pytest.raises(TraceError, match="truncated chunk header"):
            list(read_binary_trace(path, strict=True))

    def test_mid_chunk_header_lenient_salvages_prefix(
        self, tmp_path, sample_trace
    ):
        path, records = self._write_two_chunks(tmp_path, sample_trace)
        self._cut(path, self._second_header_offset() + 3)
        salvaged, stats = salvage_binary_trace(path)
        assert len(salvaged) == 6  # the intact first chunk, nothing else
        assert [a.address for a in salvaged] == [
            a.address for a in records[:6]
        ]
        assert stats.truncated_tail
        assert stats.salvaged
        assert stats.chunks_skipped == 1

    def test_mid_chunk_header_quality_note_names_torn_tail(
        self, tmp_path, sample_trace
    ):
        path, _ = self._write_two_chunks(tmp_path, sample_trace)
        self._cut(path, self._second_header_offset() + 3)
        _, stats = salvage_binary_trace(path)
        note = stats.quality_note()
        assert note is not None
        assert "torn tail" in note
        assert "6-record prefix" in note

    def test_mid_chunk_payload_also_flags_torn_tail(
        self, tmp_path, sample_trace
    ):
        path, _ = self._write_two_chunks(tmp_path, sample_trace)
        self._cut(path, self._second_header_offset() + 8 + 30)  # mid-record
        salvaged, stats = salvage_binary_trace(path)
        assert len(salvaged) == 6
        assert stats.truncated_tail

    def test_batch_reader_matches_scalar_reader(self, tmp_path, sample_trace):
        from repro.trace.tracefile import read_binary_trace_batches

        path, _ = self._write_two_chunks(tmp_path, sample_trace)
        self._cut(path, self._second_header_offset() + 3)
        stats = TraceReadStats()
        batches = list(
            read_binary_trace_batches(path, strict=False, stats=stats)
        )
        assert sum(len(b) for b in batches) == 6
        assert stats.truncated_tail
        assert stats.quality_note() is not None
        with pytest.raises(TraceError, match="truncated chunk header"):
            list(read_binary_trace_batches(path, strict=True))

    def test_checksum_damage_is_not_reported_as_torn_tail(
        self, tmp_path, sample_trace
    ):
        path, _ = self._write_two_chunks(tmp_path, sample_trace)
        blob = bytearray(path.read_bytes())
        blob[self._second_header_offset() + 8 + 4] ^= 0xFF  # flip a payload bit
        path.write_bytes(bytes(blob))
        salvaged, stats = salvage_binary_trace(path)
        assert len(salvaged) == 6
        assert not stats.truncated_tail
        note = stats.quality_note()
        assert note is not None and "torn tail" not in note

    def test_clean_file_has_no_quality_note(self, tmp_path, sample_trace):
        path, records = self._write_two_chunks(tmp_path, sample_trace)
        salvaged, stats = salvage_binary_trace(path)
        assert len(salvaged) == len(records)
        assert stats.quality_note() is None
