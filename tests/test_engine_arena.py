"""Shared-memory data plane: arena lifecycle, transport accounting, chaos.

The differential suite already proves the arena-backed sharded backend
bit-identical to scalar (conftest forces ``crossover=0`` so the tiny
test traces go through genuine multi-way sharding).  This file covers
the data plane itself:

- arena segment layout, attach/detach, owner-only unlink;
- exact pipe-byte accounting (``engine.sharded.ipc.bytes_shipped``)
  landing far below the pre-arena pipe baseline;
- the crossover fallback allocating *no* shared memory, and the
  measured (auto-calibrated) crossover replacing the hard-coded guess;
- the fused simulate+RCD pass reusing worker miss masks instead of
  re-entering simulation;
- lifecycle under chaos: a worker killed mid-shard and a daemon
  shutdown both leave zero ``/dev/shm`` segments behind.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.rcd import RcdArrayAnalysis
from repro.engine import (
    CROSSOVER_CEIL,
    CROSSOVER_FLOOR,
    SharedTraceArena,
    ShardedBackend,
    ShardedCacheSimulator,
    arena_name_prefix,
    calibrated_crossover,
    get_backend,
    list_arena_segments,
    register_backend,
    unregister_backend,
)
from repro.errors import SamplingError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.perf.harness import PIPE_BASELINE_BYTES_PER_ACCESS
from repro.trace.batch import TraceBatch, iter_batches
from repro.trace.synthetic import uniform_trace, zipf_trace

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

GEOMETRY = CacheGeometry(line_size=32, num_sets=16, ways=2)


def small_trace(count: int = 3000, seed: int = 3):
    return list(zipf_trace(count, 512, seed=seed))


class TestArenaUnit:
    def test_layout_size(self):
        # 24 shared bytes per record + 9 per record per worker region.
        assert SharedTraceArena.required_bytes(100, 1) == 100 * 33
        assert SharedTraceArena.required_bytes(100, 4) == 100 * 60

    def test_create_attach_roundtrip(self):
        with SharedTraceArena.create(64, 2) as owner:
            owner.address[:4] = np.arange(4, dtype=np.uint64)
            owner.positions[:4] = np.arange(4, dtype=np.int64)[::-1].copy()
            owner.flags(1)[:4] = np.array([1, 2, 4, 0], dtype=np.uint8)
            attached = SharedTraceArena.attach(owner.name, 64, 2)
            assert np.array_equal(
                attached.address[:4], np.arange(4, dtype=np.uint64)
            )
            assert np.array_equal(
                attached.positions[:4], np.array([3, 2, 1, 0])
            )
            assert np.array_equal(
                attached.flags(1)[:4], np.array([1, 2, 4, 0], dtype=np.uint8)
            )
            # Writes flow the other way too (workers write result regions).
            attached.tags(0)[0] = 77
            assert int(owner.tags(0)[0]) == 77
            attached.close()
            # A non-owner close never unlinks.
            assert owner.name in list_arena_segments()
        assert list_arena_segments() == []

    def test_attach_after_unlink_raises(self):
        arena = SharedTraceArena.create(64, 1)
        name = arena.name
        arena.close()
        with pytest.raises(SamplingError, match="gone"):
            SharedTraceArena.attach(name, 64, 1)

    def test_close_is_idempotent_and_views_error_after(self):
        arena = SharedTraceArena.create(64, 1)
        arena.close()
        arena.close()
        assert arena.closed
        with pytest.raises(SamplingError, match="closed"):
            arena.address

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SamplingError, match="positive"):
            SharedTraceArena.create(0, 2)
        with pytest.raises(SamplingError, match="positive"):
            SharedTraceArena.create(64, 0)

    def test_names_scannable_by_pid_prefix(self):
        with SharedTraceArena.create(64, 1) as arena:
            assert arena.name.startswith(arena_name_prefix())
            assert arena.name in list_arena_segments()
            # A foreign prefix never matches our segments.
            assert list_arena_segments(arena_name_prefix(pid=1)) == []

    def test_creation_charges_metrics_probe_does_not(self):
        with use_registry(MetricsRegistry()) as registry:
            SharedTraceArena.create(64, 2).close()
            SharedTraceArena.create(64, 2, charge_metrics=False).close()
        counters = registry.snapshot()["counters"]
        assert counters["engine.sharded.arena.created"] == 1
        assert counters["engine.sharded.arena.bytes_mapped"] == (
            SharedTraceArena.required_bytes(64, 2)
        )


class TestTraceBatchAdapter:
    def test_copy_columns_into_shared_views(self):
        batch = TraceBatch.from_arrays(
            ip=[1, 2, 3], address=[10, 20, 30], size=8
        )
        with SharedTraceArena.create(8, 1) as arena:
            count = batch.copy_columns_into(arena.address, arena.ip)
            assert count == 3
            assert np.array_equal(arena.address[:3], [10, 20, 30])
            assert np.array_equal(arena.ip[:3], [1, 2, 3])

    def test_columns_are_views(self):
        batch = TraceBatch.from_arrays(ip=[1], address=[2])
        address, ip = batch.columns
        assert address.base is batch.records
        assert ip.base is batch.records


class TestDataPlaneAccounting:
    def test_bytes_shipped_far_below_pipe_baseline(self):
        trace = small_trace()
        with use_registry(MetricsRegistry()) as registry:
            backend = ShardedBackend(workers=2, crossover=0, rcd_crossover=0)
            sharded_stats = backend.simulate(trace, geometry=CacheGeometry())
        reference = get_backend("batched").simulate(
            trace, geometry=CacheGeometry()
        )
        assert sharded_stats.as_dict() == reference.as_dict()
        counters = registry.snapshot()["counters"]
        assert counters["engine.sharded.arena.created"] == 1
        assert counters["engine.sharded.arena.bytes_mapped"] > 0
        shipped = counters["engine.sharded.ipc.bytes_shipped"]
        assert 0 < shipped
        # The whole point of the arena: control traffic only, orders of
        # magnitude under the pre-arena pickled-column baseline.
        assert shipped / len(trace) < PIPE_BASELINE_BYTES_PER_ACCESS / 10

    def test_simulator_exposes_exact_byte_count(self):
        with use_registry(MetricsRegistry()) as registry:
            with ShardedCacheSimulator(GEOMETRY, workers=2) as simulator:
                for batch in iter_batches(iter(small_trace()), 1000):
                    simulator.access_batch(batch)
                shipped = simulator.bytes_shipped
        counters = registry.snapshot()["counters"]
        assert counters["engine.sharded.ipc.bytes_shipped"] == shipped
        assert counters["engine.sharded.batches"] == 3

    def test_arena_growth_remap_stays_bit_identical(self):
        """A batch larger than the arena (line splitting, odd batch
        sizes) grows the segment and remaps every worker mid-run."""
        trace = small_trace(2000, seed=11)
        big = TraceBatch.from_accesses(zipf_trace(70_000, 300, seed=1))
        reference = SetAssociativeCache(GEOMETRY, seed=9)
        expected = [
            reference.access_batch(b) for b in iter_batches(iter(trace), 500)
        ]
        expected_big = reference.access_batch(big)
        with use_registry(MetricsRegistry()) as registry:
            with ShardedCacheSimulator(GEOMETRY, seed=9, workers=3) as sim:
                for batch, want in zip(iter_batches(iter(trace), 500), expected):
                    got = sim.access_batch(batch)
                    assert np.array_equal(got.hit, want.hit)
                got_big = sim.access_batch(big)
                assert np.array_equal(got_big.hit, expected_big.hit)
                assert np.array_equal(
                    got_big.evicted_tag, expected_big.evicted_tag
                )
                # Exactly one live segment: the grown replacement.
                assert len(list_arena_segments()) == 1
                assert sim.stats.as_dict() == reference.stats.as_dict()
        assert list_arena_segments() == []
        assert (
            registry.snapshot()["counters"]["engine.sharded.arena.created"]
            == 2
        )


class TestCrossoverFallback:
    def test_fallback_allocates_no_shared_memory(self):
        """Satellite: workers<=1 or sub-threshold traces must not touch
        the arena at all (asserted via the creation metric)."""
        trace = small_trace()
        with use_registry(MetricsRegistry()) as registry:
            ShardedBackend(workers=4, crossover=10**9).simulate(
                trace, geometry=CacheGeometry()
            )
            ShardedBackend(workers=1, crossover=0).simulate(
                trace, geometry=CacheGeometry()
            )
            ShardedBackend(workers=1, crossover=0).sample(
                _sampler(), list(iter_batches(iter(trace), 1000))
            )
        counters = registry.snapshot()["counters"]
        assert counters.get("engine.sharded.arena.created", 0) == 0
        assert counters.get("engine.sharded.ipc.bytes_shipped", 0) == 0

    def test_calibrated_crossover_measured_clamped_cached(self):
        with use_registry(MetricsRegistry()) as registry:
            first = calibrated_crossover(4, refresh=True)
        assert CROSSOVER_FLOOR <= first <= CROSSOVER_CEIL
        # The probe arena is uncharged: calibration is not a data-plane
        # allocation, so the fallback assertions above stay meaningful.
        counters = registry.snapshot()["counters"]
        assert counters.get("engine.sharded.arena.created", 0) == 0
        assert calibrated_crossover(4) == first  # cached per process

    def test_default_crossover_is_auto(self):
        backend = get_backend("sharded")
        assert backend.crossover is None
        effective = backend.effective_crossover(2)
        assert CROSSOVER_FLOOR <= effective <= CROSSOVER_CEIL
        # configure() pins and preserves explicitly-set values.
        pinned = backend.configure(crossover=123)
        assert pinned.crossover == 123
        assert pinned.configure(workers=2).crossover == 123
        assert backend.configure(workers=2).crossover is None


class TestCrossoverCacheInvalidation:
    """Satellite: the calibration cache is keyed by (workers, geometry)
    and must re-probe when either changes between runs — a stale
    threshold measured against a different geometry's per-access cost
    would misplace the batched/sharded break-even point."""

    @pytest.fixture(autouse=True)
    def _counted_probes(self, monkeypatch):
        """Replace the timing primitive with a call counter so each
        probe is instant and observable; isolate the module cache."""
        from repro.engine import sharded

        self.timer_calls = 0

        def counted(action) -> float:
            self.timer_calls += 1
            return 1e-4

        monkeypatch.setattr(sharded, "_CALIBRATED", {})
        monkeypatch.setattr(sharded, "_timed_seconds", counted)
        self.sharded = sharded

    def probes_run(self) -> int:
        # One calibration = 3 per-access reps + 1 arena + 1 spawn probe.
        assert self.timer_calls % 5 == 0
        return self.timer_calls // 5

    def test_same_key_hits_cache(self):
        first = calibrated_crossover(4)
        assert calibrated_crossover(4) == first
        assert self.probes_run() == 1

    def test_worker_count_change_reprobes(self):
        calibrated_crossover(2)
        calibrated_crossover(4)
        assert self.probes_run() == 2
        # ...and each worker count keeps its own cached entry.
        calibrated_crossover(2)
        calibrated_crossover(4)
        assert self.probes_run() == 2

    def test_geometry_change_reprobes(self):
        default = calibrated_crossover(4)
        calibrated_crossover(4, CacheGeometry(line_size=32, num_sets=8, ways=16))
        assert self.probes_run() == 2
        # The default-geometry entry survives the second probe.
        assert calibrated_crossover(4) == default
        assert self.probes_run() == 2

    def test_explicit_default_geometry_shares_cache_entry(self):
        calibrated_crossover(4)
        calibrated_crossover(4, CacheGeometry())
        assert self.probes_run() == 1

    def test_refresh_forces_reprobe(self):
        calibrated_crossover(4)
        calibrated_crossover(4, refresh=True)
        assert self.probes_run() == 2

    def test_backend_threads_geometry_through_fallback(self):
        backend = ShardedBackend(workers=4)
        geom_a = CacheGeometry()
        geom_b = CacheGeometry(line_size=32, num_sets=8, ways=16)
        backend.effective_crossover(4, geom_a)
        backend.effective_crossover(4, geom_b)
        assert self.probes_run() == 2
        assert set(self.sharded._CALIBRATED) == {(4, geom_a), (4, geom_b)}
        # A pinned crossover bypasses calibration entirely.
        assert ShardedBackend(crossover=123).effective_crossover(4, geom_a) == 123
        assert self.probes_run() == 2


def _sampler():
    from repro.pmu.sampler import AddressSampler

    return AddressSampler(geometry=CacheGeometry(), seed=29)


class TestFusedRcd:
    def test_simulate_with_rcd_matches_exact_without_resimulating(self):
        """Satellite: the RCD analysis reuses the simulate pass's miss
        masks — the engine never re-enters simulation (the batch counter
        would double if it did)."""
        trace = list(zipf_trace(4000, 300, seed=7)) + list(
            uniform_trace(2000, 500, seed=8)
        )
        backend = ShardedBackend(workers=3, crossover=0, rcd_crossover=10**9)
        with use_registry(MetricsRegistry()) as registry:
            stats, analysis = backend.simulate_with_rcd(
                trace, geometry=GEOMETRY, seed=9, batch_size=500
            )
        batches = -(-len(trace) // 500)
        counters = registry.snapshot()["counters"]
        assert counters["engine.sharded.batches"] == batches

        reference = SetAssociativeCache(GEOMETRY, seed=9)
        miss_sets = []
        for batch in iter_batches(iter(trace), 500):
            result = reference.access_batch(batch)
            miss_sets.append(result.set_index[~result.hit].astype(np.int64))
        expected = RcdArrayAnalysis.from_set_sequence(
            np.concatenate(miss_sets), GEOMETRY.num_sets
        )
        assert stats.as_dict() == reference.stats.as_dict()
        assert analysis.total_misses == expected.total_misses
        key = lambda o: (o.set_index, o.rcd, o.position)
        assert [key(o) for o in analysis.observations] == [
            key(o) for o in expected.observations
        ]

    def test_simulate_with_rcd_fallback_matches(self):
        trace = small_trace(1500, seed=13)
        sharded = ShardedBackend(workers=3, crossover=0)
        fallback = ShardedBackend(workers=1)
        got_stats, got = sharded.simulate_with_rcd(trace, geometry=GEOMETRY)
        want_stats, want = fallback.simulate_with_rcd(trace, geometry=GEOMETRY)
        assert got_stats.as_dict() == want_stats.as_dict()
        key = lambda o: (o.set_index, o.rcd, o.position)
        assert [key(o) for o in got.observations] == [
            key(o) for o in want.observations
        ]

    def test_rcd_analysis_requires_recording(self):
        with ShardedCacheSimulator(GEOMETRY, workers=2) as simulator:
            with pytest.raises(SamplingError, match="record_misses"):
                simulator.rcd_analysis()


@pytest.mark.chaos
class TestLifecycleChaos:
    def test_worker_kill_mid_shard_unlinks_segment(self):
        """A shard worker dying mid-run surfaces as SamplingError and the
        context-managed close still unlinks the segment."""
        batch = next(iter_batches(iter(small_trace()), 3000))
        with ShardedCacheSimulator(GEOMETRY, workers=2) as simulator:
            simulator.access_batch(batch)
            assert len(list_arena_segments()) == 1
            process = simulator._shards[0][0]
            process.kill()
            process.join()
            with pytest.raises(SamplingError, match="died|closed"):
                simulator.access_batch(batch)
        assert list_arena_segments() == []

    def test_close_after_kill_is_clean(self):
        simulator = ShardedCacheSimulator(GEOMETRY, workers=2)
        simulator.access_batch(next(iter_batches(iter(small_trace()), 3000)))
        for process, _ in simulator._shards:
            process.kill()
            process.join()
        simulator.close()
        simulator.close()
        assert list_arena_segments() == []

    def test_concurrent_threaded_simulations_never_deadlock(self):
        """Forking shard workers from many threads at once must not hand
        a child the resource tracker's lock in a held state (the daemon
        deadlock fixed by arena.fork_lock: before it, 8 threads x
        2-process jobs hung the load harness permanently)."""
        import threading

        trace = small_trace(2000, seed=17)
        reference = get_backend("batched").simulate(
            trace, geometry=CacheGeometry()
        )
        results: dict = {}

        def job(index: int) -> None:
            backend = ShardedBackend(workers=2, crossover=0)
            results[index] = backend.simulate(trace, geometry=CacheGeometry())

        threads = [
            threading.Thread(target=job, args=(i,), daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(results) == 4, "a threaded sharded simulation hung"
        for stats in results.values():
            assert stats.as_dict() == reference.as_dict()
        assert list_arena_segments() == []

    def test_daemon_shutdown_unlinks_every_segment(self, tmp_path):
        """Profile jobs running the sharded engine inside the service
        daemon leave no /dev/shm segments after shutdown — including
        runs where the KillInjector crashes attempts mid-flight."""
        from repro.obs.metrics import get_registry
        from repro.service.daemon import CCProfService, ServiceConfig
        from repro.service.protocol import JobRequest, JobStatus

        class ForcedShardedBackend(ShardedBackend):
            """Sharded with the fallback disabled, so the daemon's small
            test workloads genuinely cross the arena."""

            name = "sharded-chaos"

        register_backend(
            ForcedShardedBackend(workers=2, crossover=0, rcd_crossover=0)
        )
        try:
            config = ServiceConfig(
                socket_path=str(tmp_path / "ccprof.sock"),
                workers=2,
                journal_path=str(tmp_path / "jobs.journal"),
                read_timeout=2.0,
                kill_rate=1.0,
                kill_max=1,
                kill_seed=3,
                max_attempts=3,
            )

            async def scenario():
                from tests.test_service_daemon import submit_raw

                async with CCProfService(config):
                    request = JobRequest(
                        id="shm-1",
                        tenant="t",
                        kind="profile",
                        workload="symmetrization",
                        params={"n": 48, "sweeps": 1},
                        period=64,
                        engine="sharded-chaos",
                        deadline_ms=60_000,
                    )
                    return await submit_raw(config.socket_path, request)

            with use_registry(MetricsRegistry()) as registry:
                response = asyncio.run(scenario())
            assert response.status == JobStatus.COMPLETED
            assert response.attempts == 2  # the injector killed attempt 1
            counters = registry.snapshot()["counters"]
            assert counters["service.engine.sharded-chaos"] == 1
            # The job really used the arena...
            assert counters["engine.sharded.arena.created"] >= 1
            # ...and shutdown left nothing mapped.
            assert list_arena_segments() == []
        finally:
            unregister_backend("sharded-chaos")
