"""Tests for repro.cache.replacement."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
    policy_names,
)
from repro.errors import GeometryError


class TestLru:
    def test_victim_is_least_recent(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        assert policy.victim() == 0

    def test_touch_refreshes(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)
        assert policy.victim() == 1

    def test_fill_counts_as_touch(self):
        policy = LruPolicy(2)
        policy.fill(0)
        policy.fill(1)
        policy.touch(0)
        assert policy.victim() == 1


class TestFifo:
    def test_victim_is_oldest_fill(self):
        policy = FifoPolicy(2)
        policy.fill(0)
        policy.fill(1)
        assert policy.victim() == 0

    def test_touch_does_not_refresh(self):
        policy = FifoPolicy(2)
        policy.fill(0)
        policy.fill(1)
        policy.touch(0)  # FIFO ignores hits
        assert policy.victim() == 0


class TestRandom:
    def test_victim_in_range(self):
        policy = RandomPolicy(8, seed=3)
        for _ in range(100):
            assert 0 <= policy.victim() < 8

    def test_deterministic_given_seed(self):
        first = [RandomPolicy(8, seed=5).victim() for _ in range(1)]
        second = [RandomPolicy(8, seed=5).victim() for _ in range(1)]
        assert first == second


class TestTreePlru:
    def test_requires_power_of_two(self):
        with pytest.raises(GeometryError):
            TreePlruPolicy(6)

    def test_cycles_through_all_ways(self):
        policy = TreePlruPolicy(4)
        victims = []
        for _ in range(4):
            way = policy.victim()
            victims.append(way)
            policy.fill(way)
        assert sorted(victims) == [0, 1, 2, 3]

    def test_recently_touched_way_is_protected(self):
        policy = TreePlruPolicy(8)
        policy.touch(3)
        assert policy.victim() != 3

    def test_two_way_behaves_like_lru(self):
        plru, lru = TreePlruPolicy(2), LruPolicy(2)
        for way in (0, 1, 0):
            plru.touch(way)
            lru.touch(way)
        assert plru.victim() == lru.victim()


class TestFactory:
    def test_make_each_policy(self):
        for name in policy_names():
            policy = make_policy(name, 8)
            assert policy.ways == 8

    def test_unknown_name(self):
        with pytest.raises(GeometryError, match="unknown replacement policy"):
            make_policy("clock", 8)

    def test_zero_ways_rejected(self):
        with pytest.raises(GeometryError):
            LruPolicy(0)
