"""Cross-validation tests: static prediction scored against the profiler.

Holds the PR's acceptance bar: on the padding workload suite the static
victim-set prediction must reach >= 0.8 precision and >= 0.7 recall
against the dynamic CCProf measurement — and must do so without simulating
a single trace access.
"""

import pytest

from repro.analysis.validation import (
    VALIDATION_GEOMETRY,
    CrossValidationResult,
    LoopValidation,
    cross_validate,
    default_validation_suite,
    predict_conflicts,
    scaled_rcd_threshold,
)
from repro.cache.geometry import CacheGeometry
from repro.workloads.symmetrization import SymmetrizationWorkload


class TracelessSymmetrization(SymmetrizationWorkload):
    """A workload whose trace is booby-trapped: any attempt to run it fails.

    Static prediction must never trip this — that is the 'zero trace
    accesses' guarantee.
    """

    def trace(self):
        raise AssertionError("static analysis must not execute the trace")


class TestZeroTrace:
    def test_prediction_never_touches_the_trace(self):
        workload = TracelessSymmetrization(n=32, sweeps=2)
        report = predict_conflicts(workload, geometry=VALIDATION_GEOMETRY)
        assert report.has_conflicts
        assert sorted(report.loops[0].victim_sets) == list(
            range(VALIDATION_GEOMETRY.num_sets)
        )
        assert "trace accesses simulated: 0" in report.render()


class TestScaledThreshold:
    def test_paper_geometry_recovers_published_threshold(self):
        assert scaled_rcd_threshold(CacheGeometry(line_size=64, num_sets=64, ways=8)) == 8

    def test_validation_geometry(self):
        assert scaled_rcd_threshold(VALIDATION_GEOMETRY) == 2

    def test_tiny_geometry_floors_at_one(self):
        assert scaled_rcd_threshold(CacheGeometry(line_size=64, num_sets=4, ways=2)) == 1


class TestScoringArithmetic:
    def loop(self, predicted, measured):
        return LoopValidation("w", "f:1", predicted=predicted, measured=measured)

    def test_counts(self):
        loop = self.loop([0, 1, 2], [1, 2, 3])
        assert loop.true_positives == 2
        assert loop.false_positives == 1
        assert loop.false_negatives == 1
        assert loop.agree

    def test_verdict_disagreement(self):
        assert not self.loop([0], []).agree
        assert self.loop([], []).agree

    def test_micro_averaging(self):
        result = CrossValidationResult(
            loops=[self.loop([0, 1], [1]), self.loop([2], [2, 3])]
        )
        assert result.true_positives == 2
        assert result.false_positives == 1
        assert result.false_negatives == 1
        assert result.precision == pytest.approx(2 / 3)
        assert result.recall == pytest.approx(2 / 3)

    def test_empty_result_is_perfect(self):
        result = CrossValidationResult()
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.verdict_agreement == 1.0

    def test_render_has_summary_line(self):
        result = CrossValidationResult(loops=[self.loop([0], [0])])
        assert "precision=1.000" in result.render()
        assert "recall=1.000" in result.render()


class TestAcceptance:
    """The PR's headline claim, asserted end to end."""

    @pytest.fixture(scope="class")
    def result(self):
        return cross_validate(default_validation_suite())

    def test_precision_at_least_080(self, result):
        assert result.precision >= 0.8, result.render()

    def test_recall_at_least_070(self, result):
        assert result.recall >= 0.7, result.render()

    def test_verdicts_mostly_agree(self, result):
        assert result.verdict_agreement >= 0.8, result.render()

    def test_suite_covers_conflicting_and_clean_loops(self, result):
        # The bar is only meaningful if the suite exercises both verdicts.
        assert any(loop.predicted for loop in result.loops)
        assert any(not loop.predicted for loop in result.loops)
        assert len(result.loops) >= 10
