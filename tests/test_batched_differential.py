"""Differential tests: every engine must equal the scalar reference.

A fast engine is only allowed to be *faster* — every observable
(per-access hit/miss, evicted tags, cold bits, stats, RCD observations,
captured samples, truncation state) must match the scalar per-access
reference bit for bit, across all four replacement policies.  These
tests are the contract that keeps the fast paths honest.

The registry-driven half (:class:`TestRegistryDifferential`) parametrizes
over the ``engine_backend`` fixture (every backend in the
:mod:`repro.engine` registry), so registering a new backend opts it into
the whole differential suite with no test edits.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.conflict_period import ConflictPeriodAnalysis
from repro.core.exact import ExactRcdMeasurer
from repro.core.profiler import CCProf
from repro.pmu.event import ALL_LOADS_EVENT, L1_HIT_EVENT
from repro.pmu.periods import FixedPeriod, UniformJitterPeriod
from repro.pmu.sampler import AddressSampler
from repro.robustness.budget import SamplingBudget
from repro.trace.batch import iter_batches
from repro.trace.record import AccessKind, MemoryAccess
from repro.trace.synthetic import markov_trace, uniform_trace, zipf_trace
from repro.workloads.base import TraceWorkload

POLICIES = ("lru", "fifo", "random", "plru")


class ZipfWorkload(TraceWorkload):
    """A tiny deterministic workload for engine-parity checks."""

    name = "zipf-diff"

    def trace(self):
        return zipf_trace(20_000, 2048, seed=3, ip=0x400100)

#: Hypothesis strategy: one access touching few sets (to force conflicts),
#: mixing loads/stores and line-straddling sizes.
access_strategy = st.builds(
    MemoryAccess,
    ip=st.sampled_from([0x400100, 0x400200, 0x400300]),
    address=st.integers(min_value=0x1000, max_value=0x1000 + 64 * 64 * 4),
    kind=st.sampled_from([AccessKind.LOAD, AccessKind.STORE]),
    size=st.integers(min_value=1, max_value=128),
    thread_id=st.integers(min_value=0, max_value=3),
)


def scalar_reference(cache: SetAssociativeCache, trace):
    """Flatten access_record over a trace (line-split reference results)."""
    results = []
    for access in trace:
        outcome = cache.access_record(access)
        results.extend(outcome if isinstance(outcome, list) else [outcome])
    return results


class TestCacheDifferential:
    @pytest.mark.parametrize("policy", POLICIES)
    @given(trace=st.lists(access_strategy, max_size=300), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_scalar_access_for_access(self, policy, trace, data):
        batch_size = data.draw(st.integers(min_value=1, max_value=64))
        geometry = CacheGeometry()
        scalar_cache = SetAssociativeCache(geometry, policy=policy, seed=11)
        batched_cache = SetAssociativeCache(geometry, policy=policy, seed=11)
        reference = scalar_reference(scalar_cache, trace)
        got = []
        for batch in iter_batches(iter(trace), batch_size):
            got.extend(
                batched_cache.access_batch(batch, split_lines=True).scalar_results()
            )
        assert got == reference
        assert scalar_cache.stats.as_dict() == batched_cache.stats.as_dict()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_synthetic_mix_all_policies(self, policy):
        trace = (
            list(uniform_trace(1500, 700, seed=1))
            + list(zipf_trace(1500, 900, seed=2))
            + list(markov_trace(1500, 800, seed=3))
        )
        scalar_cache = SetAssociativeCache(CacheGeometry(), policy=policy, seed=5)
        batched_cache = SetAssociativeCache(CacheGeometry(), policy=policy, seed=5)
        reference = scalar_reference(scalar_cache, trace)
        got = []
        for batch in iter_batches(iter(trace), 257):
            got.extend(
                batched_cache.access_batch(batch, split_lines=True).scalar_results()
            )
        assert got == reference
        assert scalar_cache.stats.as_dict() == batched_cache.stats.as_dict()

    def test_scalar_and_batched_calls_interleave_on_shared_state(self):
        trace = list(zipf_trace(3000, 900, seed=9))
        reference_cache = SetAssociativeCache(CacheGeometry(), seed=3)
        reference = scalar_reference(reference_cache, trace)
        mixed_cache = SetAssociativeCache(CacheGeometry(), seed=3)
        got = []
        for index, batch in enumerate(iter_batches(iter(trace), 100)):
            if index % 2:
                got.extend(
                    mixed_cache.access_batch(batch, split_lines=True).scalar_results()
                )
            else:
                got.extend(scalar_reference(mixed_cache, batch.to_accesses()))
        assert got == reference
        assert mixed_cache.stats.as_dict() == reference_cache.stats.as_dict()

    def test_run_trace_batched_equals_run_trace(self):
        trace = list(markov_trace(4000, 600, seed=4))
        scalar_cache = SetAssociativeCache(CacheGeometry())
        batched_cache = SetAssociativeCache(CacheGeometry())
        scalar_stats = scalar_cache.run_trace(iter(trace))
        batched_stats = batched_cache.run_trace_batched(iter(trace), batch_size=321)
        assert scalar_stats.as_dict() == batched_stats.as_dict()


class TestSamplerDifferential:
    BUDGETS = (
        None,
        SamplingBudget(max_accesses=1234),
        SamplingBudget(max_events=200),
        SamplingBudget(max_samples=3),
        SamplingBudget(max_accesses=5000, max_events=900, max_samples=7),
    )

    @pytest.mark.parametrize("budget", BUDGETS)
    @pytest.mark.parametrize(
        "period", [FixedPeriod(7), UniformJitterPeriod(37), UniformJitterPeriod(1212)]
    )
    def test_run_batched_equals_run(self, budget, period):
        trace = list(zipf_trace(4000, 900, seed=2)) + list(
            uniform_trace(4000, 700, seed=3)
        )
        scalar = AddressSampler(
            geometry=CacheGeometry(), seed=13, period=period
        ).run(iter(trace), budget=budget)
        batched = AddressSampler(
            geometry=CacheGeometry(), seed=13, period=period
        ).run_batched(iter(trace), budget=budget, batch_size=193)
        assert scalar.samples == batched.samples
        assert scalar.total_events == batched.total_events
        assert scalar.total_accesses == batched.total_accesses
        assert scalar.truncated == batched.truncated
        assert scalar.truncation_reason == batched.truncation_reason

    @pytest.mark.parametrize("event", [ALL_LOADS_EVENT, L1_HIT_EVENT])
    def test_alternate_events_match(self, event):
        trace = list(zipf_trace(3000, 900, seed=6))
        scalar = AddressSampler(
            geometry=CacheGeometry(), seed=3, period=FixedPeriod(11), event=event
        ).run(iter(trace))
        batched = AddressSampler(
            geometry=CacheGeometry(), seed=3, period=FixedPeriod(11), event=event
        ).run_batched(iter(trace), batch_size=287)
        assert scalar.samples == batched.samples
        assert scalar.total_events == batched.total_events

    def test_trace_of_events_matches(self):
        trace = list(zipf_trace(3000, 900, seed=8))
        scalar_sampler = AddressSampler(
            geometry=CacheGeometry(), seed=3, period=FixedPeriod(11)
        )
        batched_sampler = AddressSampler(
            geometry=CacheGeometry(), seed=3, period=FixedPeriod(11)
        )
        scalar_result, scalar_events = scalar_sampler.run_with_trace_of_events(
            iter(trace)
        )
        batched_result, batched_events = (
            batched_sampler.run_with_trace_of_events_batched(iter(trace), 311)
        )
        assert scalar_events == batched_events
        assert scalar_result.samples == batched_result.samples


class TestAnalysisDifferential:
    def test_exact_measurer_matches(self):
        trace = list(zipf_trace(4000, 900, seed=5))
        scalar = ExactRcdMeasurer(geometry=CacheGeometry()).run(iter(trace))
        batched = ExactRcdMeasurer(geometry=CacheGeometry()).run_batched(
            iter(trace), batch_size=311
        )
        assert scalar.sequences == batched.sequences
        assert scalar.total_accesses == batched.total_accesses

    def test_vector_rcd_analysis_matches_scalar(self):
        measurement = ExactRcdMeasurer(geometry=CacheGeometry()).run_batched(
            zipf_trace(5000, 900, seed=5)
        )
        scalar = measurement.analysis()
        vector = measurement.vector_analysis()
        assert scalar.histogram().counts == vector.histogram().counts
        scalar_obs = [(o.set_index, o.rcd, o.position) for o in scalar.observations]
        vector_obs = [(o.set_index, o.rcd, o.position) for o in vector.observations]
        assert scalar_obs == vector_obs
        assert scalar.mean_rcd() == pytest.approx(vector.mean_rcd())

    def test_conflict_periods_match_from_either_analysis(self):
        measurement = ExactRcdMeasurer(geometry=CacheGeometry()).run_batched(
            zipf_trace(5000, 900, seed=5)
        )
        scalar = ConflictPeriodAnalysis.from_observations(
            measurement.analysis().observations
        )
        vector = ConflictPeriodAnalysis.from_observations(
            measurement.vector_analysis()
        )
        key = lambda run: (run.set_index, run.rcd, run.length, run.start_position)
        assert [key(r) for r in scalar.runs] == [key(r) for r in vector.runs]


class TestRegistryDifferential:
    """Every registered backend vs the scalar reference, via the fixture."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_simulate_matches_scalar(self, engine_backend, policy):
        from repro.engine import get_backend

        trace = list(zipf_trace(6000, 900, seed=4)) + list(
            uniform_trace(3000, 700, seed=5)
        )
        geometry = CacheGeometry()
        reference = get_backend("scalar").simulate(
            iter(trace), geometry=geometry, policy=policy, seed=7
        )
        got = engine_backend.simulate(
            list(iter_batches(iter(trace), 701)),
            geometry=geometry,
            policy=policy,
            seed=7,
        )
        assert got.as_dict() == reference.as_dict()

    def test_simulate_with_line_straddlers(self, engine_backend):
        from repro.engine import get_backend

        trace = [
            MemoryAccess(
                ip=0x400100,
                address=0x1000 + 23 * index,
                kind=AccessKind.LOAD if index % 3 else AccessKind.STORE,
                size=1 + (index * 37) % 128,
            )
            for index in range(4000)
        ]
        geometry = CacheGeometry()
        reference = get_backend("scalar").simulate(
            iter(trace), geometry=geometry, split_lines=True
        )
        got = engine_backend.simulate(
            iter(trace), geometry=geometry, split_lines=True, batch_size=311
        )
        assert got.as_dict() == reference.as_dict()

    @pytest.mark.parametrize(
        "budget",
        [
            None,
            SamplingBudget(max_accesses=1234),
            SamplingBudget(max_events=200),
            SamplingBudget(max_samples=3),
        ],
    )
    def test_sample_matches_scalar(self, engine_backend, budget):
        trace = list(zipf_trace(4000, 900, seed=2)) + list(
            uniform_trace(2000, 700, seed=3)
        )
        scalar = AddressSampler(
            geometry=CacheGeometry(), seed=13, period=UniformJitterPeriod(37)
        ).run(iter(trace), budget=budget)
        sampler = AddressSampler(
            geometry=CacheGeometry(), seed=13, period=UniformJitterPeriod(37)
        )
        got = engine_backend.sample(
            sampler, list(iter_batches(iter(trace), 193)), budget=budget
        )
        assert got.samples == scalar.samples
        assert got.total_events == scalar.total_events
        assert got.total_accesses == scalar.total_accesses
        assert got.truncated == scalar.truncated
        assert got.truncation_reason == scalar.truncation_reason

    def test_rcd_matches_scalar(self, engine_backend):
        import numpy as np

        from repro.engine import get_backend

        addresses = np.fromiter(
            (access.address for access in zipf_trace(5000, 600, seed=11)),
            dtype=np.uint64,
        )
        geometry = CacheGeometry()
        reference = get_backend("scalar").rcd_from_addresses(addresses, geometry)
        got = engine_backend.rcd_from_addresses(addresses, geometry)
        key = lambda o: (o.set_index, o.rcd, o.position)
        assert [key(o) for o in got.observations] == [
            key(o) for o in reference.observations
        ]
        assert got.observation_count == reference.observation_count
        assert got.histogram().counts == reference.histogram().counts
        assert got.mean_rcd() == pytest.approx(reference.mean_rcd())

    def test_profiler_end_to_end_matches_scalar(self, engine_backend):
        scalar_report = CCProf(seed=5, engine="scalar").run(ZipfWorkload())
        report = CCProf(seed=5, engine=engine_backend).run(ZipfWorkload())
        assert report.render() == scalar_report.render()
        assert report.total_samples == scalar_report.total_samples
        assert report.total_events == scalar_report.total_events


class TestEndToEndEngines:
    def test_profiler_engines_produce_identical_reports(self):
        batched_report = CCProf(seed=5, engine="batched").run(ZipfWorkload())
        scalar_report = CCProf(seed=5, engine="scalar").run(ZipfWorkload())
        assert batched_report.render() == scalar_report.render()
        assert batched_report.total_samples == scalar_report.total_samples
        assert batched_report.total_events == scalar_report.total_events

    def test_unknown_engine_rejected(self):
        from repro.errors import SamplingError

        with pytest.raises(SamplingError):
            CCProf(engine="warp").run(ZipfWorkload())
