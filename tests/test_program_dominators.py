"""Tests for repro.program.dominators (Cooper-Harvey-Kennedy)."""

from repro.program.cfg import ControlFlowGraph
from repro.program.dominators import compute_dominators


def build(edges, blocks, entry=0):
    cfg = ControlFlowGraph()
    for _ in range(blocks):
        cfg.new_block()
    cfg.entry = entry
    for source, target in edges:
        cfg.add_edge(source, target)
    return cfg


class TestStraightLine:
    def test_chain(self):
        cfg = build([(0, 1), (1, 2)], 3)
        tree = compute_dominators(cfg)
        assert tree.idom[0] == 0
        assert tree.idom[1] == 0
        assert tree.idom[2] == 1


class TestDiamond:
    def test_join_dominated_by_entry(self):
        cfg = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        tree = compute_dominators(cfg)
        assert tree.idom[3] == 0  # neither branch dominates the join

    def test_dominates_relation(self):
        cfg = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        tree = compute_dominators(cfg)
        assert tree.dominates(0, 3)
        assert not tree.dominates(1, 3)
        assert tree.dominates(3, 3)  # reflexive

    def test_strict_dominance(self):
        cfg = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        tree = compute_dominators(cfg)
        assert tree.strictly_dominates(0, 3)
        assert not tree.strictly_dominates(3, 3)


class TestLoopEdge:
    def test_back_edge_does_not_change_dominators(self):
        # 0 -> 1 -> 2 -> 1 (loop), 2 -> 3
        cfg = build([(0, 1), (1, 2), (2, 1), (2, 3)], 4)
        tree = compute_dominators(cfg)
        assert tree.idom[1] == 0
        assert tree.idom[2] == 1
        assert tree.idom[3] == 2

    def test_header_dominates_latch(self):
        cfg = build([(0, 1), (1, 2), (2, 1)], 3)
        tree = compute_dominators(cfg)
        assert tree.dominates(1, 2)


class TestIrreducible:
    def test_multi_entry_region(self):
        # 0 -> 1, 0 -> 2, 1 <-> 2: neither 1 nor 2 dominates the other.
        cfg = build([(0, 1), (0, 2), (1, 2), (2, 1)], 3)
        tree = compute_dominators(cfg)
        assert tree.idom[1] == 0
        assert tree.idom[2] == 0


class TestTreeQueries:
    def test_dominators_of_chain(self):
        cfg = build([(0, 1), (1, 2)], 3)
        tree = compute_dominators(cfg)
        assert tree.dominators_of(2) == [2, 1, 0]

    def test_children(self):
        cfg = build([(0, 1), (0, 2)], 3)
        children = compute_dominators(cfg).children()
        assert sorted(children[0]) == [1, 2]

    def test_depth(self):
        cfg = build([(0, 1), (1, 2)], 3)
        tree = compute_dominators(cfg)
        assert tree.depth(0) == 0
        assert tree.depth(2) == 2

    def test_unreachable_blocks_absent(self):
        cfg = build([(0, 1)], 3)  # block 2 unreachable
        tree = compute_dominators(cfg)
        assert 2 not in tree.idom
