"""``ccprof`` command-line interface.

Mirrors the shape of the paper's artifact scripts:

- ``ccprof profile <workload>`` — run the online profiler on a built-in
  workload and dump the sample log.
- ``ccprof analyze <workload>`` — profile + offline analysis, printing the
  conflict report (and optionally writing a ``*result`` file).
- ``ccprof simulate <trace.din>`` — run a Dinero-format trace through the
  cache simulator and print Dinero-style statistics.
- ``ccprof list`` — enumerate built-in workloads.

Built-in workload names accept an ``:optimized`` suffix, e.g.
``ccprof analyze adi:optimized``.

Robustness controls (see the "Robustness model" section of README.md):

- ``--inject drop:0.2,skid:1`` feeds the sampled record stream through a
  seeded fault pipeline; injected-fault statistics appear in the report's
  data-quality section.
- ``--strict`` / ``--lenient`` (default lenient) pick between
  fail-fast and best-effort-with-warnings behaviour for degraded inputs.
- Every :class:`~repro.errors.ReproError` family maps to a distinct
  nonzero exit code (``error.exit_code``) with a one-line stderr
  diagnostic — no tracebacks for expected failure modes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.analysis import (
    AnalysisCache,
    ConflictPredictionAnalysis,
    StaticModel,
    StaticPaddingAnalysis,
)
from repro.cache.dinero import format_dinero_report, simulate_dinero_trace
from repro.core.diffreport import ReportDiff
from repro.core.phases import PhaseAnalyzer
from repro.core.profiler import CCProf
from repro.errors import ReproError
from repro.optimize.padding_advisor import advise_padding
from repro.pmu.periods import UniformJitterPeriod
from repro.reporting.files import write_result_file
from repro.robustness.budget import SamplingBudget
from repro.robustness.faults import FAULT_NAMES, FaultPipeline
from repro.trace.tracefile import TraceReadStats
from repro.workloads import (
    AdiWorkload,
    Fdtd2dWorkload,
    Fft2dWorkload,
    GemmWorkload,
    HimenoWorkload,
    Jacobi2dWorkload,
    KripkeWorkload,
    NeedlemanWunschWorkload,
    SymmetrizationWorkload,
    TinyDnnFcWorkload,
    TrmmWorkload,
    TwoMmWorkload,
)
from repro.workloads.base import Array2D, TraceWorkload
from repro.workloads.rodinia import RODINIA_APPS, make_rodinia_workload

#: (original factory, optimized factory) per CLI workload name.
_WORKLOADS: Dict[str, tuple] = {
    "symmetrization": (SymmetrizationWorkload.original, SymmetrizationWorkload.padded),
    "nw": (NeedlemanWunschWorkload.original, NeedlemanWunschWorkload.padded),
    "adi": (AdiWorkload.original, AdiWorkload.padded),
    "fft": (Fft2dWorkload.original, Fft2dWorkload.padded),
    "tinydnn": (TinyDnnFcWorkload.original, TinyDnnFcWorkload.padded),
    "kripke": (KripkeWorkload.original, KripkeWorkload.optimized),
    "himeno": (HimenoWorkload.original, HimenoWorkload.padded),
    "gemm": (GemmWorkload.original, GemmWorkload.padded),
    "2mm": (TwoMmWorkload.original, TwoMmWorkload.padded),
    "trmm": (TrmmWorkload.original, TrmmWorkload.padded),
    "jacobi-2d": (Jacobi2dWorkload.original, Jacobi2dWorkload.padded),
    "fdtd-2d": (Fdtd2dWorkload.original, Fdtd2dWorkload.padded),
}


def _resolve_workload(spec: str) -> TraceWorkload:
    """Build a workload from ``name`` or ``name:optimized``."""
    name, _, variant = spec.partition(":")
    if variant not in ("", "original", "optimized"):
        raise ReproError(f"unknown variant {variant!r}; use 'original' or 'optimized'")
    if name in _WORKLOADS:
        original, optimized = _WORKLOADS[name]
        factory: Callable[[], TraceWorkload] = (
            optimized if variant == "optimized" else original
        )
        return factory()
    if name in RODINIA_APPS:
        if variant == "optimized":
            raise ReproError(f"no optimized variant for Rodinia app {name!r}")
        return make_rodinia_workload(name)
    known = ", ".join(sorted([*_WORKLOADS, *RODINIA_APPS]))
    raise ReproError(f"unknown workload {name!r}; known: {known}")


def _cmd_list(_args: argparse.Namespace) -> int:
    print("case studies (accept :optimized):")
    for name in _WORKLOADS:
        print(f"  {name}")
    print("rodinia suite:")
    for name in RODINIA_APPS:
        print(f"  {name}")
    return 0


def _make_profiler(args: argparse.Namespace) -> CCProf:
    inject = None
    spec = getattr(args, "inject", None)
    if spec:
        inject = FaultPipeline.parse(spec, seed=args.seed)
    budget = None
    max_events = getattr(args, "max_events", None)
    if max_events is not None:
        budget = SamplingBudget(max_events=max_events)
    return CCProf(
        period=UniformJitterPeriod(args.period),
        seed=args.seed,
        strict=getattr(args, "strict", False),
        inject=inject,
        budget=budget,
        engine="scalar" if getattr(args, "scalar", False) else "batched",
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    profile = profiler.profile(workload)
    sampling = profile.sampling
    print(
        f"{workload.name}: {sampling.sample_count} samples of "
        f"{sampling.total_events} L1 miss events "
        f"({sampling.total_accesses} accesses)"
    )
    if sampling.truncated:
        print(f"run truncated: {sampling.truncation_reason}")
    if profile.fault_report is not None:
        print(f"injected faults: {profile.fault_report.describe()}")
    if args.output:
        written = profile.dump_samples(args.output)
        print(f"wrote {written} samples to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    report = profiler.run(workload)
    print(report.render())
    if args.output:
        write_result_file(args.output, report)
        print(f"\nwrote {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    read_stats = TraceReadStats()
    stats = simulate_dinero_trace(
        args.trace, spec=args.cache, strict=args.strict, stats=read_stats
    )
    print(format_dinero_report(stats, title=args.trace))
    if read_stats.salvaged:
        print(f"trace salvage: {read_stats.describe()}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    report = profiler.run(workload)
    print(report.render())
    arrays = [
        value
        for value in vars(workload).values()
        if isinstance(value, Array2D)
    ]
    if not report.has_conflicts:
        print("\nno conflicts flagged; no padding advice needed")
        return 0
    implicated = {
        structure.label
        for loop in report.conflicting_loops()
        for structure in loop.data_structures
    }
    print("\npadding advice:")
    advised = False
    for array in arrays:
        if array.allocation.label not in implicated:
            continue
        advice = advise_padding(array, profiler.geometry)
        advised = True
        print(f"  {advice.label}: +{advice.pad_bytes} B/row  ({advice.reason})")
    if not advised:
        print("  (conflicting structures are not 2-D arrays; consider a "
              "loop-order change instead)")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    """Static conflict prediction: zero trace accesses simulated."""
    workload = _resolve_workload(args.workload)
    model = StaticModel.from_workload(workload)
    cache = AnalysisCache(model)
    report = cache.request(ConflictPredictionAnalysis).report
    print(report.render())
    advice = cache.request(StaticPaddingAnalysis).advice
    if report.has_conflicts:
        print("\npadding advice (from prediction alone):")
        for line in advice.render().splitlines():
            print(f"  {line}")
    if args.stats:
        print(f"\nanalysis cache: {cache.stats.describe()}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    name, _, variant = args.workload.partition(":")
    if variant:
        raise ReproError("compare takes a bare name; it runs both variants itself")
    if name not in _WORKLOADS:
        raise ReproError(f"no optimized variant for {name!r}; compare needs one")
    original_factory, optimized_factory = _WORKLOADS[name]
    profiler = _make_profiler(args)

    original = original_factory()
    optimized = optimized_factory()
    report_before = profiler.run(original)
    report_after = profiler.run(optimized)
    print(report_before.render())
    print()
    print(report_after.render())
    print()
    print(ReportDiff.compare(report_before, report_after).render())

    before_stats = original_factory().l1_stats(profiler.geometry)
    after_stats = optimized_factory().l1_stats(profiler.geometry)
    reduction = (
        (before_stats.misses - after_stats.misses) / before_stats.misses
        if before_stats.misses
        else 0.0
    )
    print(
        f"\nL1 misses: {before_stats.misses} -> {after_stats.misses} "
        f"({reduction:+.1%} reduction)"
    )
    print(
        f"conflicts flagged: {report_before.has_conflicts} -> "
        f"{report_after.has_conflicts}"
    )
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    profile = profiler.profile(workload)
    analyzer = PhaseAnalyzer(profiler.geometry, window=args.window)
    analysis = analyzer.analyze(profile.sampling.samples)
    print(
        f"{workload.name}: {len(analysis.phases)} phases of ~{args.window} "
        f"samples; {analysis.conflict_fraction:.0%} conflicting"
    )
    for phase in analysis.phases:
        verdict = "CONFLICT" if phase.has_conflict else "ok"
        print(
            f"  phase {phase.index:>3}: cf={phase.contribution_factor:.3f} "
            f"victims={len(phase.victim_sets):>3} {verdict}"
        )
    transitions = analysis.transitions()
    if transitions:
        print(f"phase transitions at windows: {transitions}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ccprof",
        description="CCProf reproduction: lightweight cache-conflict detection",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list built-in workloads")
    list_parser.set_defaults(handler=_cmd_list)

    def add_strictness(sub: argparse.ArgumentParser) -> None:
        group = sub.add_mutually_exclusive_group()
        group.add_argument(
            "--strict", dest="strict", action="store_true",
            help="fail fast on degraded input (corrupt trace, empty profile)",
        )
        group.add_argument(
            "--lenient", dest="strict", action="store_false",
            help="salvage degraded input and report data-quality warnings "
                 "(default)",
        )
        sub.set_defaults(strict=False)

    for verb, handler, needs_output in (
        ("profile", _cmd_profile, True),
        ("analyze", _cmd_analyze, True),
        ("advise", _cmd_advise, False),
        ("compare", _cmd_compare, False),
        ("phases", _cmd_phases, False),
    ):
        sub = subparsers.add_parser(verb, help=f"{verb} a built-in workload")
        sub.add_argument("workload", help="workload name, e.g. adi or adi:optimized")
        sub.add_argument(
            "--period", type=int, default=1212,
            help="mean sampling period in L1 miss events (default: 1212)",
        )
        sub.add_argument("--seed", type=int, default=0, help="sampler RNG seed")
        sub.add_argument(
            "--scalar", action="store_true",
            help="use the per-access reference engine instead of the "
                 "batched columnar engine (same results, slower)",
        )
        add_strictness(sub)
        if needs_output:
            sub.add_argument("-o", "--output", default=None, help="output file")
        if verb in ("profile", "analyze"):
            sub.add_argument(
                "--inject", default=None, metavar="SPEC",
                help="fault-injection spec, e.g. drop:0.2,skid:1 "
                     f"(faults: {', '.join(FAULT_NAMES)})",
            )
            sub.add_argument(
                "--max-events", type=int, default=None, metavar="N",
                help="watchdog budget: stop profiling after N qualifying "
                     "events and analyze the partial profile",
            )
        if verb == "phases":
            sub.add_argument(
                "--window", type=int, default=256,
                help="samples per analysis window (default: 256)",
            )
        sub.set_defaults(handler=handler)

    predict = subparsers.add_parser(
        "predict",
        help="statically predict victim sets from declared access patterns "
             "(no trace is run)",
    )
    predict.add_argument(
        "workload", help="workload name, e.g. gemm or gemm:optimized"
    )
    predict.add_argument(
        "--stats", action="store_true",
        help="print analysis-cache statistics (passes run / cache hits)",
    )
    predict.set_defaults(handler=_cmd_predict)

    sim = subparsers.add_parser("simulate", help="run a .din trace through the simulator")
    sim.add_argument("trace", help="path to a Dinero-format trace")
    sim.add_argument(
        "--cache", default="32k:64:8:lru",
        help="cache spec size:line:assoc[:policy] (default: the paper's L1)",
    )
    add_strictness(sim)
    sim.set_defaults(handler=_cmd_simulate)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point.

    Every expected failure exits with its error family's distinct nonzero
    code (``ReproError.exit_code``) and a one-line stderr diagnostic
    carrying the machine-readable family code — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"ccprof: error [{error.code}]: {error}", file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":
    sys.exit(main())
