"""``ccprof`` command-line interface.

Mirrors the shape of the paper's artifact scripts:

- ``ccprof profile <workload>`` — run the online profiler on a built-in
  workload and dump the sample log.
- ``ccprof analyze <workload>`` — profile + offline analysis, printing the
  conflict report (and optionally writing a ``*result`` file).
- ``ccprof screen <workload>`` — analytically screen for conflicts
  (birthday-paradox + stride-folding passes; zero trace accesses);
  ``ccprof analyze --screen-first`` uses the same screen to skip
  simulation on ``clear`` workloads.
- ``ccprof simulate <trace.din>`` — run a Dinero-format trace through the
  cache simulator and print Dinero-style statistics.
- ``ccprof inspect <manifest.json>`` — render a run manifest back as text.
- ``ccprof list`` — enumerate built-in workloads.

Built-in workload names accept an ``:optimized`` suffix, e.g.
``ccprof analyze adi:optimized``.

Robustness controls (see the "Robustness model" section of README.md):

- ``--inject drop:0.2,skid:1`` feeds the sampled record stream through a
  seeded fault pipeline; injected-fault statistics appear in the report's
  data-quality section.
- ``--strict`` / ``--lenient`` (default lenient) pick between
  fail-fast and best-effort-with-warnings behaviour for degraded inputs.
- Every :class:`~repro.errors.ReproError` family maps to a distinct
  nonzero exit code (``error.exit_code``) with a one-line stderr
  diagnostic — no tracebacks for expected failure modes.

Observability controls (see the "Observability" section of DESIGN.md):

- Output lines are named events on a :class:`~repro.obs.logging.CliLogger`;
  default stdout is unchanged, ``--verbose`` adds span trees and metric
  snapshots, ``--quiet`` keeps results and warnings only, and
  ``--log-json`` renders every event as one JSON object per line.
- ``--manifest PATH`` (or any ``-o`` output, which gains a sibling
  ``<output>.manifest.json``) records a :class:`~repro.obs.RunManifest`.
- ``--no-obs`` installs the null registry/tracer: bit-for-bit pre-obs
  behaviour, no manifest.
- ``ccprof profile lru_stream --self-overhead`` measures what the enabled
  obs layer costs on the perf headline (exit 1 over the 5% target).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from dataclasses import asdict
from typing import Dict, Optional

from repro.analysis import (
    AnalysisCache,
    ConflictPredictionAnalysis,
    SCREEN_SUSPECT,
    StaticModel,
    StaticPaddingAnalysis,
    screen_workload,
)
from repro.cache.dinero import format_dinero_report, simulate_dinero_trace
from repro.core.diffreport import ReportDiff
from repro.core.phases import PhaseAnalyzer
from repro.core.profiler import CCProf
from repro.engine import backend_names, get_backend
from repro.errors import AnalysisError, ReproError, ServiceError
from repro.obs.logging import CliLogger
from repro.obs.manifest import ManifestError, RunManifest
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    use_registry,
)
from repro.obs.overhead import (
    FULL_ACCESSES,
    QUICK_ACCESSES,
    measure_self_overhead,
)
from repro.obs.tracing import NULL_TRACER, Tracer, get_tracer, use_tracer
from repro.optimize.padding_advisor import advise_padding
from repro.perf.schema import BenchSchemaError, validate_result
from repro.perf.watch import (
    WatchThresholds,
    regression_error,
    render_bench,
    watch,
)
from repro.pmu.periods import UniformJitterPeriod
from repro.reporting.files import write_result_file
from repro.robustness.budget import SamplingBudget
from repro.robustness.faults import FAULT_NAMES, FaultPipeline
from repro.service.admission import AdmissionConfig
from repro.service.client import submit_jobs
from repro.service.daemon import CCProfService, ServiceConfig
from repro.service.protocol import JOB_KINDS, JobRequest, JobStatus
from repro.trace.tracefile import TraceReadStats
from repro.workloads.base import Array2D, TraceWorkload
from repro.workloads.registry import (
    WORKLOADS as _WORKLOADS,  # legacy alias; the registry owns the table
    resolve_workload,
    workload_names,
)


def _resolve_workload(spec: str) -> TraceWorkload:
    """Build a workload from ``name`` or ``name:optimized``.

    Thin wrapper over :func:`repro.workloads.registry.resolve_workload`,
    kept so existing callers (and tests) of the CLI helper keep working.
    """
    return resolve_workload(spec)


def _logger(args: argparse.Namespace) -> CliLogger:
    """The invocation's logger (``main`` attaches it; fall back for
    handlers called directly in tests)."""
    log = getattr(args, "_log", None)
    return log if log is not None else CliLogger.from_args(args)


def _manifest_config(args: argparse.Namespace, report) -> Dict[str, object]:
    """The manifest's free-form config record for one run.

    A ``screen_first`` run records the screen's decision here (verdict,
    score, per-loop summary) so ``ccprof inspect`` shows *why* a
    simulation was or wasn't skipped.
    """
    config: Dict[str, object] = {
        "strict": bool(getattr(args, "strict", False)),
        "inject": getattr(args, "inject", None),
        "max_events": getattr(args, "max_events", None),
        "engine_workers": getattr(args, "engine_workers", None),
    }
    if getattr(args, "screen_first", False):
        config["screen_first"] = True
        screen = getattr(report, "screen", None) if report is not None else None
        if screen is not None:
            record = screen.to_record()
            record["simulation_skipped"] = report.raw_profile is None
            config["screen"] = record
    return config


def _write_manifest(
    args: argparse.Namespace,
    command: str,
    profiler: CCProf,
    profile,
    report=None,
    outputs: Optional[Dict[str, str]] = None,
    timeline: Optional[Dict[str, object]] = None,
) -> None:
    """Record a :class:`RunManifest` for one profile/analyze run.

    Written to ``--manifest PATH`` when given, else next to ``-o`` output
    as ``<output>.manifest.json``; skipped entirely under ``--no-obs``
    (which promises bit-for-bit pre-obs behaviour).
    """
    path = getattr(args, "manifest", None)
    if path is None and getattr(args, "output", None):
        path = f"{args.output}.manifest.json"
    if path is None or getattr(args, "no_obs", False):
        return
    sampling: Dict[str, object] = {}
    if profile is not None:
        run = profile.sampling
        sampling = {
            "samples": run.sample_count,
            "events": run.total_events,
            "accesses": run.total_accesses,
            "mean_period": run.mean_period,
            "truncated": run.truncated,
            "truncation_reason": run.truncation_reason,
        }
    quality = None
    if report is not None and report.data_quality is not None:
        quality = asdict(report.data_quality)
    geometry = profiler.geometry
    manifest = RunManifest(
        command=command,
        workload=args.workload,
        engine=profiler.engine,
        seed=args.seed,
        period=float(args.period),
        geometry={
            "num_sets": geometry.num_sets,
            "ways": geometry.ways,
            "line_size": geometry.line_size,
        },
        config=_manifest_config(args, report),
        stage_timings=get_tracer().stage_timings(),
        metrics=get_registry().snapshot(),
        data_quality=quality,
        sampling=sampling,
        outputs=outputs or {},
        timeline=timeline,
    )
    saved = manifest.save(path)
    _logger(args).info(
        "manifest.written", f"wrote manifest {saved}", path=str(saved)
    )


def _cmd_list(args: argparse.Namespace) -> int:
    log = _logger(args)
    case_studies, rodinia = workload_names()
    log.result("workloads.case_studies", "case studies (accept :optimized):")
    for name in case_studies:
        log.result("workloads.entry", f"  {name}", workload=name)
    log.result("workloads.rodinia", "rodinia suite:")
    for name in rodinia:
        log.result("workloads.entry", f"  {name}", workload=name)
    return 0


#: ``--scalar`` deprecation warning fires once per process, not once per
#: in-process ``main()`` call — repeated CLI invocations in one run (the
#: test suite, scripted sweeps) should not repeat it.
_SCALAR_ALIAS_WARNED = False


def _resolve_engine(args: argparse.Namespace, log: CliLogger):
    """Resolve ``--engine`` / ``--engine-workers`` / deprecated ``--scalar``
    into a configured engine backend.

    Unknown engine names never reach here: ``--engine`` is built with
    ``choices=backend_names()``, so argparse rejects them with exit code 2
    listing the registered backends.
    """
    global _SCALAR_ALIAS_WARNED
    name = getattr(args, "engine", None)
    if getattr(args, "scalar", False):
        if name is not None and name != "scalar":
            raise ReproError(
                f"--scalar conflicts with --engine {name}; "
                "--scalar is a deprecated alias for --engine scalar"
            )
        name = "scalar"
        if not _SCALAR_ALIAS_WARNED:
            _SCALAR_ALIAS_WARNED = True
            log.warning(
                "engine.deprecated_flag",
                "--scalar is deprecated; use --engine scalar",
            )
    backend = get_backend(name if name is not None else "batched")
    workers = getattr(args, "engine_workers", None)
    if workers is not None:
        # Backends that take no worker pool reject the option themselves
        # (SamplingError, exit 6) — the registry stays the single source
        # of truth for what each engine accepts.
        backend = backend.configure(workers=workers)
    return backend


def _make_profiler(args: argparse.Namespace) -> CCProf:
    inject = None
    spec = getattr(args, "inject", None)
    if spec:
        inject = FaultPipeline.parse(spec, seed=args.seed)
    budget = None
    max_events = getattr(args, "max_events", None)
    if max_events is not None:
        budget = SamplingBudget(max_events=max_events)
    return CCProf(
        period=UniformJitterPeriod(args.period),
        seed=args.seed,
        strict=getattr(args, "strict", False),
        inject=inject,
        budget=budget,
        engine=_resolve_engine(args, _logger(args)),
        screen_first=getattr(args, "screen_first", False),
    )


def _cmd_self_overhead(args: argparse.Namespace, log: CliLogger) -> int:
    """``ccprof profile lru_stream --self-overhead``."""
    if args.workload != "lru_stream":
        raise ReproError(
            "--self-overhead measures the 'lru_stream' perf headline; "
            "invoke as: ccprof profile lru_stream --self-overhead"
        )
    accesses = QUICK_ACCESSES if getattr(args, "quick", False) else FULL_ACCESSES
    report = measure_self_overhead(accesses=accesses)
    log.result("self_overhead", report.render(), **report.as_dict())
    return 0 if report.within_target else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    log = _logger(args)
    if getattr(args, "self_overhead", False):
        return _cmd_self_overhead(args, log)
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    profile = profiler.profile(workload)
    sampling = profile.sampling
    log.result(
        "profile.summary",
        f"{workload.name}: {sampling.sample_count} samples of "
        f"{sampling.total_events} L1 miss events "
        f"({sampling.total_accesses} accesses)",
        workload=workload.name,
        samples=sampling.sample_count,
        events=sampling.total_events,
        accesses=sampling.total_accesses,
    )
    if sampling.truncated:
        log.warning(
            "profile.truncated",
            f"run truncated: {sampling.truncation_reason}",
            reason=sampling.truncation_reason,
        )
    if profile.fault_report is not None:
        log.warning(
            "profile.faults",
            f"injected faults: {profile.fault_report.describe()}",
        )
    outputs: Dict[str, str] = {}
    if args.output:
        written = profile.dump_samples(args.output)
        outputs["samples"] = str(args.output)
        log.info(
            "output.written",
            f"wrote {written} samples to {args.output}",
            path=str(args.output),
            records=written,
        )
    timeline = None
    if getattr(args, "stream", False):
        analysis = _stream_analysis(args, profiler, profile.sampling.samples)
        timeline = analysis.timeline_record()
        _log_stream_summary(log, args, analysis)
        jsonl = getattr(args, "timeline_jsonl", None)
        if jsonl:
            written = analysis.export_jsonl(jsonl)
            outputs["timeline"] = str(jsonl)
            log.info(
                "output.written",
                f"wrote {written} window spans to {jsonl}",
                path=str(jsonl),
                records=written,
            )
    _write_manifest(
        args, "profile", profiler, profile, outputs=outputs,
        timeline=timeline,
    )
    return 0


def _stream_analysis(args: argparse.Namespace, profiler: CCProf, samples):
    """Run the engine's windowed streaming hook over profiled samples."""
    tracer = get_tracer()
    with tracer.span("stream", window=args.window):
        return profiler.backend.windowed_phases(
            samples, profiler.geometry, window=args.window
        )


def _log_stream_summary(log: CliLogger, args: argparse.Namespace, analysis) -> None:
    """The streaming timeline's result lines (profile/phases --stream)."""
    engine = analysis.engine
    if analysis.fallback_from is not None:
        log.warning(
            "stream.fallback",
            f"engine {analysis.fallback_from!r} has no windowed path; "
            f"ran on {engine!r} (decision recorded in the manifest)",
            requested=analysis.fallback_from,
            ran=engine,
        )
    log.result(
        "stream.summary",
        f"streaming: {len(analysis.summaries)} windows of ~{args.window} "
        f"samples; {analysis.conflict_fraction:.0%} conflicting; "
        f"peak tracked state {analysis.peak_tracked} entries",
        windows=len(analysis.summaries),
        conflict_fraction=analysis.conflict_fraction,
        peak_tracked=analysis.peak_tracked,
    )
    transitions = analysis.transitions()
    if transitions:
        log.result(
            "stream.transitions",
            f"phase transitions at windows: {transitions}",
            windows=transitions,
        )
    victims = analysis.victim_sets()
    if victims:
        shown = ", ".join(str(v) for v in victims[:12])
        if len(victims) > 12:
            shown += f", ... ({len(victims)} total)"
        log.result(
            "stream.victims",
            f"victim sets across conflict windows: [{shown}]",
            victim_sets=victims,
        )


def _cmd_analyze(args: argparse.Namespace) -> int:
    log = _logger(args)
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    report = profiler.run(workload)
    log.result("report", report.render(), workload=workload.name)
    outputs: Dict[str, str] = {}
    if args.output:
        write_result_file(args.output, report)
        outputs["result"] = str(args.output)
        log.info(
            "output.written", f"\nwrote {args.output}", path=str(args.output)
        )
    _write_manifest(
        args, "analyze", profiler, report.raw_profile, report=report,
        outputs=outputs,
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    log = _logger(args)
    try:
        with open(args.manifest, "r", encoding="ascii") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        # Unreadable files stay in the manifest family (the pre-watch
        # contract); exit 7 is reserved for *recognizable* JSON that is
        # neither a BENCH result nor a run manifest.
        raise ManifestError(
            f"{args.manifest}: unreadable artifact: {exc}"
        ) from exc
    if not isinstance(record, dict):
        raise AnalysisError(
            f"{args.manifest}: unknown artifact type (not a JSON object)"
        )
    # Dispatch on content: a BENCH result carries schema_version +
    # workloads, a run manifest carries command.  Anything else is an
    # unknown artifact (analysis family, exit 7).
    if "schema_version" in record and "workloads" in record:
        try:
            result = validate_result(record)
        except BenchSchemaError as exc:
            raise AnalysisError(f"{args.manifest}: {exc}") from exc
        log.result("bench", render_bench(result), bench=result)
        return 0
    if "command" in record:
        manifest = RunManifest.from_dict(record)
        log.result("manifest", manifest.render(), manifest=manifest.to_dict())
        tripped = manifest.tripped_budgets()
        if tripped:
            log.warning(
                "budget.tripped",
                "tripped budgets: " + ", ".join(tripped),
                budgets=tripped,
            )
        return 0
    raise AnalysisError(
        f"{args.manifest}: unknown artifact type (neither a BENCH result "
        "nor a run manifest)"
    )


def _cmd_watch(args: argparse.Namespace) -> int:
    """``ccprof watch``: gate on the perf/manifest trajectory."""
    log = _logger(args)
    thresholds = WatchThresholds(
        max_headline_drop=args.max_headline_drop,
        max_workload_drop=args.max_workload_drop,
        max_obs_overhead=args.max_obs_overhead,
        max_ipc_bytes_per_access=args.max_ipc,
        max_conflict_growth=args.max_conflict_growth,
    )
    report = watch(args.paths, thresholds, report_path=args.report)
    log.result("watch.report", report.render(), **report.to_dict())
    if args.report:
        log.info(
            "output.written",
            f"wrote trajectory report {args.report}",
            path=str(args.report),
        )
    if not report.ok:
        raise regression_error(report)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    log = _logger(args)
    read_stats = TraceReadStats()
    stats = simulate_dinero_trace(
        args.trace, spec=args.cache, strict=args.strict, stats=read_stats
    )
    log.result("simulate.report", format_dinero_report(stats, title=args.trace))
    note = read_stats.quality_note()
    if note is not None:
        log.warning("simulate.salvage", note)
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    log = _logger(args)
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    report = profiler.run(workload)
    log.result("report", report.render(), workload=workload.name)
    arrays = [
        value
        for value in vars(workload).values()
        if isinstance(value, Array2D)
    ]
    if not report.has_conflicts:
        log.result(
            "advise.clean", "\nno conflicts flagged; no padding advice needed"
        )
        return 0
    implicated = {
        structure.label
        for loop in report.conflicting_loops()
        for structure in loop.data_structures
    }
    log.result("advise.header", "\npadding advice:")
    advised = False
    for array in arrays:
        if array.allocation.label not in implicated:
            continue
        advice = advise_padding(array, profiler.geometry)
        advised = True
        log.result(
            "advise.padding",
            f"  {advice.label}: +{advice.pad_bytes} B/row  ({advice.reason})",
            label=advice.label,
            pad_bytes=advice.pad_bytes,
        )
    if not advised:
        log.result(
            "advise.no_arrays",
            "  (conflicting structures are not 2-D arrays; consider a "
            "loop-order change instead)",
        )
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    """Analytical conflict screen: zero trace accesses simulated."""
    log = _logger(args)
    workload = _resolve_workload(args.workload)
    report = screen_workload(workload)
    log.result(
        "screen.report",
        report.render(),
        workload=workload.name,
        verdict=report.verdict,
        score=report.score,
    )
    if args.suspect_exit and report.verdict == SCREEN_SUSPECT:
        return 1
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    """Static conflict prediction: zero trace accesses simulated."""
    log = _logger(args)
    workload = _resolve_workload(args.workload)
    model = StaticModel.from_workload(workload)
    cache = AnalysisCache(model)
    report = cache.request(ConflictPredictionAnalysis).report
    log.result("predict.report", report.render(), workload=workload.name)
    advice = cache.request(StaticPaddingAnalysis).advice
    if report.has_conflicts:
        lines = ["\npadding advice (from prediction alone):"]
        lines.extend(f"  {line}" for line in advice.render().splitlines())
        log.result("predict.advice", "\n".join(lines))
    if args.stats:
        log.info(
            "predict.cache_stats",
            f"\nanalysis cache: {cache.stats.describe()}",
            runs=cache.stats.runs,
            hits=cache.stats.hits,
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    log = _logger(args)
    name, _, variant = args.workload.partition(":")
    if variant:
        raise ReproError("compare takes a bare name; it runs both variants itself")
    if name not in _WORKLOADS:
        raise ReproError(f"no optimized variant for {name!r}; compare needs one")
    original_factory, optimized_factory = _WORKLOADS[name]
    profiler = _make_profiler(args)

    report_before = profiler.run(original_factory())
    report_after = profiler.run(optimized_factory())
    log.result("compare.before", report_before.render())
    log.result("compare.after", "\n" + report_after.render())
    log.result(
        "compare.diff",
        "\n" + ReportDiff.compare(report_before, report_after).render(),
    )

    # The profiled runs already simulated both variants; reuse the cache
    # statistics riding on each report's raw profile instead of paying a
    # third and fourth full simulation (fall back for reports that lack
    # them, e.g. loaded from disk).
    def _l1_stats(report, factory):
        profile = report.raw_profile
        if profile is not None and profile.sampling.cache_stats is not None:
            return profile.sampling.cache_stats
        return factory().l1_stats(profiler.geometry)

    before_stats = _l1_stats(report_before, original_factory)
    after_stats = _l1_stats(report_after, optimized_factory)
    reduction = (
        (before_stats.misses - after_stats.misses) / before_stats.misses
        if before_stats.misses
        else 0.0
    )
    log.result(
        "compare.misses",
        f"\nL1 misses: {before_stats.misses} -> {after_stats.misses} "
        f"({reduction:+.1%} reduction)",
        before=before_stats.misses,
        after=after_stats.misses,
        reduction=reduction,
    )
    log.result(
        "compare.verdict",
        f"conflicts flagged: {report_before.has_conflicts} -> "
        f"{report_after.has_conflicts}",
        before=report_before.has_conflicts,
        after=report_after.has_conflicts,
    )
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    log = _logger(args)
    workload = _resolve_workload(args.workload)
    profiler = _make_profiler(args)
    profile = profiler.profile(workload)
    if getattr(args, "stream", False):
        # The incremental engine: same verdicts (bit-identical, pinned by
        # tests), O(window) memory instead of the whole sample list.
        streaming = _stream_analysis(args, profiler, profile.sampling.samples)
        _log_stream_summary(log, args, streaming)
        analysis = streaming.to_phased()
    else:
        analyzer = PhaseAnalyzer(profiler.geometry, window=args.window)
        analysis = analyzer.analyze(profile.sampling.samples)
    log.result(
        "phases.summary",
        f"{workload.name}: {len(analysis.phases)} phases of ~{args.window} "
        f"samples; {analysis.conflict_fraction:.0%} conflicting",
        workload=workload.name,
        phases=len(analysis.phases),
    )
    for phase in analysis.phases:
        verdict = "CONFLICT" if phase.has_conflict else "ok"
        log.result(
            "phases.phase",
            f"  phase {phase.index:>3}: cf={phase.contribution_factor:.3f} "
            f"victims={len(phase.victim_sets):>3} {verdict}",
        )
    transitions = analysis.transitions()
    if transitions:
        log.result(
            "phases.transitions",
            f"phase transitions at windows: {transitions}",
            windows=transitions,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``ccprof serve``: run the profiling-service daemon."""
    log = _logger(args)
    config = ServiceConfig(
        socket_path=args.socket,
        workers=args.workers,
        admission=AdmissionConfig(
            max_queue_depth=args.max_queue,
            tenant_quota=args.tenant_quota,
        ),
        default_deadline_ms=args.deadline_ms,
        default_max_accesses=args.max_accesses,
        max_attempts=args.max_attempts,
        read_timeout=args.read_timeout,
        journal_path=args.journal,
        journal_fsync=args.fsync,
        manifest_dir=args.manifest_dir,
        kill_rate=args.kill_rate,
        kill_seed=args.seed,
        kill_max=args.kill_max,
    )

    async def _serve() -> None:
        service = CCProfService(config)
        await service.start()
        log.result(
            "serve.listening",
            f"ccprof service listening on {args.socket} "
            f"({args.workers} workers)",
            socket=args.socket,
            workers=args.workers,
        )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        log.result("serve.stopped", "service stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """``ccprof submit``: send one job to a running service."""
    log = _logger(args)
    params: Dict[str, int] = {}
    for item in args.param:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ReproError(
                f"bad --param {item!r}; expected name=integer (e.g. n=64)"
            )
        try:
            params[key] = int(value)
        except ValueError as exc:
            raise ReproError(
                f"bad --param {item!r}; value must be an integer"
            ) from exc
    request = JobRequest(
        id=args.id,
        tenant=args.tenant,
        kind=args.kind,
        workload=args.workload,
        params=params,
        seed=args.seed,
        period=args.period,
        deadline_ms=args.deadline_ms,
        max_accesses=args.max_accesses,
        engine=args.engine,
    )
    try:
        response = submit_jobs(args.socket, [request], seed=args.seed)[
            request.id
        ]
    except (ConnectionError, OSError) as exc:
        raise ServiceError(
            f"cannot reach a ccprof service at {args.socket!r}: {exc}"
        ) from exc
    log.result(
        "submit.response",
        json.dumps(response.to_dict(), indent=2, sort_keys=True),
        **response.to_dict(),
    )
    if response.status == JobStatus.FAILED:
        error = response.error or {}
        raise ReproError(
            f"job {request.id!r} failed "
            f"[{error.get('reason', 'unknown')}]: "
            f"{error.get('message', 'no detail')}"
        )
    return 0


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    """The observability flags every subcommand shares."""
    verbosity = sub.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print detail events (span tree, metric snapshot)",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="print results and warnings only",
    )
    sub.add_argument(
        "--log-json", action="store_true",
        help="emit each output line as one JSON event object",
    )
    sub.add_argument(
        "--no-obs", action="store_true",
        help="disable the metrics registry and span tracer entirely "
             "(bit-for-bit pre-observability behaviour; no manifest)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ccprof",
        description="CCProf reproduction: lightweight cache-conflict detection",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list built-in workloads")
    _add_obs_flags(list_parser)
    list_parser.set_defaults(handler=_cmd_list)

    def add_strictness(sub: argparse.ArgumentParser) -> None:
        group = sub.add_mutually_exclusive_group()
        group.add_argument(
            "--strict", dest="strict", action="store_true",
            help="fail fast on degraded input (corrupt trace, empty profile)",
        )
        group.add_argument(
            "--lenient", dest="strict", action="store_false",
            help="salvage degraded input and report data-quality warnings "
                 "(default)",
        )
        sub.set_defaults(strict=False)

    for verb, handler, needs_output in (
        ("profile", _cmd_profile, True),
        ("analyze", _cmd_analyze, True),
        ("advise", _cmd_advise, False),
        ("compare", _cmd_compare, False),
        ("phases", _cmd_phases, False),
    ):
        sub = subparsers.add_parser(verb, help=f"{verb} a built-in workload")
        sub.add_argument("workload", help="workload name, e.g. adi or adi:optimized")
        sub.add_argument(
            "--period", type=int, default=1212,
            help="mean sampling period in L1 miss events (default: 1212)",
        )
        sub.add_argument("--seed", type=int, default=0, help="sampler RNG seed")
        sub.add_argument(
            "--engine", choices=backend_names(), default=None,
            help="simulation engine backend (default: batched); 'sharded' "
                 "fans the cache simulation over worker processes",
        )
        sub.add_argument(
            "--engine-workers", type=int, default=None, metavar="N",
            help="worker-process count for parallel engines (sharded); "
                 "other engines reject the option",
        )
        sub.add_argument(
            "--scalar", action="store_true",
            help="deprecated alias for --engine scalar (the per-access "
                 "reference engine)",
        )
        add_strictness(sub)
        _add_obs_flags(sub)
        if needs_output:
            sub.add_argument("-o", "--output", default=None, help="output file")
        if verb in ("profile", "analyze"):
            sub.add_argument(
                "--inject", default=None, metavar="SPEC",
                help="fault-injection spec, e.g. drop:0.2,skid:1 "
                     f"(faults: {', '.join(FAULT_NAMES)})",
            )
            sub.add_argument(
                "--max-events", type=int, default=None, metavar="N",
                help="watchdog budget: stop profiling after N qualifying "
                     "events and analyze the partial profile",
            )
            sub.add_argument(
                "--manifest", default=None, metavar="PATH",
                help="write a run manifest (config, timings, metrics, data "
                     "quality) to PATH; with -o, defaults to "
                     "<output>.manifest.json",
            )
        if verb == "analyze":
            sub.add_argument(
                "--screen-first", action="store_true",
                help="run the analytical screen first and skip profiling + "
                     "simulation entirely when it returns 'clear' (the "
                     "decision is recorded in the run manifest)",
            )
        if verb == "profile":
            sub.add_argument(
                "--self-overhead", action="store_true",
                help="measure the enabled obs layer's cost on the "
                     "lru_stream perf headline (exit 1 over the 5% target)",
            )
            sub.add_argument(
                "--quick", action="store_true",
                help="with --self-overhead: a 10x smaller measurement",
            )
        if verb in ("profile", "phases"):
            sub.add_argument(
                "--window", type=int, default=256,
                help="samples per analysis window (default: 256)",
            )
            sub.add_argument(
                "--stream", action="store_true",
                help="windowed streaming analysis: consume the sample "
                     "stream incrementally with O(window) state, emitting "
                     "a phase timeline (bit-identical verdicts to the "
                     "batch analyzer)",
            )
        if verb == "profile":
            sub.add_argument(
                "--timeline-jsonl", default=None, metavar="PATH",
                help="with --stream: export one JSON record per window "
                     "to PATH",
            )
        sub.set_defaults(handler=handler)

    screen = subparsers.add_parser(
        "screen",
        help="analytically screen a workload for conflicts (birthday-"
             "paradox + stride folding; no trace is run)",
    )
    screen.add_argument(
        "workload", help="workload name, e.g. gemm or gemm:optimized"
    )
    screen.add_argument(
        "--suspect-exit", action="store_true",
        help="exit 1 when the verdict is 'suspect' (for shell pipelines "
             "that gate a simulation on the screen)",
    )
    _add_obs_flags(screen)
    screen.set_defaults(handler=_cmd_screen)

    predict = subparsers.add_parser(
        "predict",
        help="statically predict victim sets from declared access patterns "
             "(no trace is run)",
    )
    predict.add_argument(
        "workload", help="workload name, e.g. gemm or gemm:optimized"
    )
    predict.add_argument(
        "--stats", action="store_true",
        help="print analysis-cache statistics (passes run / cache hits)",
    )
    _add_obs_flags(predict)
    predict.set_defaults(handler=_cmd_predict)

    sim = subparsers.add_parser("simulate", help="run a .din trace through the simulator")
    sim.add_argument("trace", help="path to a Dinero-format trace")
    sim.add_argument(
        "--cache", default="32k:64:8:lru",
        help="cache spec size:line:assoc[:policy] (default: the paper's L1)",
    )
    add_strictness(sim)
    _add_obs_flags(sim)
    sim.set_defaults(handler=_cmd_simulate)

    inspect = subparsers.add_parser(
        "inspect",
        help="render a run manifest or BENCH_*.json benchmark artifact",
    )
    inspect.add_argument(
        "manifest",
        help="path to a *.manifest.json / MANIFEST_*.json / BENCH_*.json "
             "artifact (type detected from content; unknown types exit 7)",
    )
    _add_obs_flags(inspect)
    inspect.set_defaults(handler=_cmd_inspect)

    watch_parser = subparsers.add_parser(
        "watch",
        help="diff a BENCH/MANIFEST trajectory and exit 13 on regression",
    )
    watch_parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="one directory of BENCH_*.json/MANIFEST_*.json artifacts "
             "(ordered by git history), or 2+ artifact files in "
             "chronological order",
    )
    watch_parser.add_argument(
        "--max-headline-drop", type=float, default=0.15, metavar="FRAC",
        help="relative headline-speedup drop tolerated between points "
             "(default: 0.15)",
    )
    watch_parser.add_argument(
        "--max-workload-drop", type=float, default=0.30, metavar="FRAC",
        help="relative per-workload speedup drop tolerated "
             "(default: 0.30)",
    )
    watch_parser.add_argument(
        "--max-obs-overhead", type=float, default=0.05, metavar="FRAC",
        help="absolute obs self-overhead budget per point (default: 0.05)",
    )
    watch_parser.add_argument(
        "--max-ipc", type=float, default=16.0, metavar="BYTES",
        help="absolute shipped-bytes-per-access budget per point "
             "(default: 16, the pre-arena pipe baseline)",
    )
    watch_parser.add_argument(
        "--max-conflict-growth", type=float, default=0.25, metavar="FRAC",
        help="absolute timeline conflict-fraction increase tolerated "
             "between points (default: 0.25)",
    )
    watch_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the trajectory report as JSON to PATH (written even "
             "when the gate fails, so CI can upload the evidence)",
    )
    _add_obs_flags(watch_parser)
    watch_parser.set_defaults(handler=_cmd_watch)

    serve = subparsers.add_parser(
        "serve",
        help="run the profiling service daemon on a local socket",
    )
    serve.add_argument(
        "--socket", default="ccprof.sock",
        help="unix socket path to listen on (default: ccprof.sock)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="worker pool size: concurrent jobs in execution (default: 4)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission queue bound; beyond it jobs are rejected with a "
             "retry-after hint (default: 64)",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=8,
        help="per-tenant cap on jobs queued+running (default: 8)",
    )
    serve.add_argument(
        "--deadline-ms", type=int, default=30_000,
        help="default per-job deadline; becomes the run's watchdog budget "
             "(default: 30000)",
    )
    serve.add_argument(
        "--max-accesses", type=int, default=None, metavar="N",
        help="default simulation budget per job (blown budget degrades to "
             "the static predictor)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="execution attempts per job before a worker crash becomes a "
             "terminal failure (default: 3)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=5.0,
        help="seconds an idle connection may sit mid-request before being "
             "dropped as a slow client (default: 5)",
    )
    serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="crash-safe job journal; on restart, received jobs resume and "
             "in-flight jobs fail cleanly",
    )
    serve.add_argument(
        "--fsync", action="store_true",
        help="fsync every journal append (durable but slower)",
    )
    serve.add_argument(
        "--manifest-dir", default=None, metavar="DIR",
        help="write one run manifest per terminal job under DIR",
    )
    serve.add_argument("--seed", type=int, default=0, help="chaos RNG seed")
    serve.add_argument(
        "--kill-rate", type=float, default=0.0, metavar="P",
        help="chaos: injected worker-kill probability per attempt",
    )
    serve.add_argument(
        "--kill-max", type=int, default=None, metavar="N",
        help="chaos: cap total injected kills at N",
    )
    _add_obs_flags(serve)
    serve.set_defaults(handler=_cmd_serve)

    submit = subparsers.add_parser(
        "submit", help="submit one job to a running ccprof service"
    )
    submit.add_argument("workload", help="workload spec, e.g. gemm or adi:optimized")
    submit.add_argument(
        "--socket", default="ccprof.sock",
        help="service socket path (default: ccprof.sock)",
    )
    submit.add_argument(
        "--kind", choices=JOB_KINDS, default="profile",
        help="job kind (default: profile)",
    )
    submit.add_argument("--id", default="cli-job", help="client-chosen job id")
    submit.add_argument("--tenant", default="cli", help="tenant identity")
    submit.add_argument(
        "--param", action="append", default=[], metavar="NAME=INT",
        help="workload sizing knob, repeatable (e.g. --param n=64)",
    )
    submit.add_argument("--seed", type=int, default=0, help="sampler RNG seed")
    submit.add_argument(
        "--period", type=int, default=1212,
        help="mean sampling period in L1 miss events (default: 1212)",
    )
    submit.add_argument(
        "--deadline-ms", type=int, default=None,
        help="per-job deadline override (default: service default)",
    )
    submit.add_argument(
        "--max-accesses", type=int, default=None, metavar="N",
        help="simulation budget override for this job",
    )
    submit.add_argument(
        "--engine", default=None, metavar="NAME",
        help="engine backend the service should run this job on "
        "(default: the service default, batched)",
    )
    _add_obs_flags(submit)
    submit.set_defaults(handler=_cmd_submit)
    return parser


def _emit_run_details(
    log: CliLogger, registry: MetricsRegistry, tracer: Tracer
) -> None:
    """The ``--verbose`` detail events: span tree + metric snapshot."""
    if not log.visible("detail"):
        return
    if tracer.enabled and tracer.roots:
        spans = [
            span.as_dict(depth)
            for root in tracer.roots
            for span, depth in root.walk()
        ]
        log.detail("trace.spans", "\nspans:\n" + tracer.render(), spans=spans)
    if registry.enabled:
        snapshot = registry.snapshot()
        if any(snapshot.values()):
            lines = ["metrics:"]
            for name, value in sorted(snapshot["counters"].items()):
                lines.append(f"  {name:<36} {value}")
            for name, value in sorted(snapshot["gauges"].items()):
                lines.append(f"  {name:<36} {value} (gauge)")
            for name, hist in sorted(snapshot["histograms"].items()):
                lines.append(
                    f"  {name:<36} count={hist['count']} sum={hist['sum']}"
                )
            log.detail("metrics.snapshot", "\n".join(lines), **snapshot)


def main(argv: Optional[list] = None) -> int:
    """CLI entry point.

    Every invocation gets a fresh metrics registry and tracer (installed
    as the process defaults for its duration), so repeated in-process
    calls — the test suite — never leak obs state into each other.

    Every expected failure exits with its error family's distinct nonzero
    code (``ReproError.exit_code``) and a one-line stderr diagnostic
    carrying the machine-readable family code — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    log = CliLogger.from_args(args)
    args._log = log
    no_obs = getattr(args, "no_obs", False)
    registry = NULL_REGISTRY if no_obs else MetricsRegistry()
    tracer = NULL_TRACER if no_obs else Tracer()
    try:
        with use_registry(registry), use_tracer(tracer):
            code = args.handler(args)
            _emit_run_details(log, registry, tracer)
        return code
    except ReproError as error:
        print(f"ccprof: error [{error.code}]: {error}", file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":
    sys.exit(main())
