"""repro — a full reproduction of CCProf (CGO 2018).

*Lightweight Detection of Cache Conflicts*, Roy, Song, Krishnamoorthy, Liu.

Quick start::

    from repro import CCProf
    from repro.workloads import AdiWorkload

    report = CCProf().run(AdiWorkload.original())
    print(report.render())

Layering (see DESIGN.md for the full inventory):

- ``repro.trace`` / ``repro.cache`` / ``repro.program`` / ``repro.pmu`` /
  ``repro.stats`` — the substrates: memory traces, a Dinero-IV-class cache
  simulator, CFG + Havlak loop analysis, PEBS-like address sampling, and
  from-scratch logistic regression.
- ``repro.core`` — the paper's contribution: the RCD metric, conflict
  periods, contribution factors, the conflict classifier, attribution, and
  the end-to-end profiler.
- ``repro.workloads`` / ``repro.perfmodel`` / ``repro.optimize`` — the
  evaluation apparatus: every benchmark of the paper as a symbolic trace
  generator, the machine model behind the speedup tables, and automated
  padding / loop-order advice.
- ``repro.robustness`` — fault injection, retry with backoff, and
  watchdog budgets: the machinery that keeps the pipeline producing
  best-effort reports under a degraded observation channel.
- ``repro.service`` — the long-running multi-tenant profiling daemon
  (``ccprof serve``): admission control with backpressure, per-request
  deadlines, graceful degradation to the static predictor, and a
  crash-safe job journal.
"""

from repro.cache.geometry import CacheGeometry
from repro.core.classifier import ConflictClassifier, Implication
from repro.core.contribution import DEFAULT_RCD_THRESHOLD, contribution_factor
from repro.core.profiler import AnalysisSettings, CCProf, OfflineAnalyzer
from repro.core.rcd import RcdAnalysis, compute_rcds
from repro.core.report import ConflictReport, DataQuality, LoopReport
from repro.errors import ReproError, ServiceError
from repro.pmu.periods import (
    FixedPeriod,
    GeometricPeriod,
    UniformJitterPeriod,
)
from repro.pmu.sampler import AddressSampler, SamplingResult
from repro.robustness import (
    FaultPipeline,
    RetryPolicy,
    SamplingBudget,
    retry_with_backoff,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CacheGeometry",
    "CCProf",
    "OfflineAnalyzer",
    "AnalysisSettings",
    "ConflictClassifier",
    "Implication",
    "ConflictReport",
    "LoopReport",
    "RcdAnalysis",
    "compute_rcds",
    "contribution_factor",
    "DEFAULT_RCD_THRESHOLD",
    "AddressSampler",
    "SamplingResult",
    "FixedPeriod",
    "UniformJitterPeriod",
    "GeometricPeriod",
    "ReproError",
    "ServiceError",
    "DataQuality",
    "FaultPipeline",
    "RetryPolicy",
    "SamplingBudget",
    "retry_with_backoff",
]
