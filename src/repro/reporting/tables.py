"""Plain-text table rendering.

Small and dependency-free; used by the benchmark harness to print rows that
line up with the paper's Tables 2, 3, and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    """A titled text table with uniform column widths."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append a row; cells are str()-converted."""
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render to aligned text."""
        return format_table(self.title, self.headers, self.rows)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a title + header + rows as aligned monospace text."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    divider = "-+-".join("-" * width for width in widths)

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines = [title, "=" * max(len(title), len(divider))]
    lines.append(render_row(headers))
    lines.append(divider)
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (``0.527`` -> ``52.7%``)."""
    return f"{value * 100:.{digits}f}%"


def format_speedup(value: float, digits: int = 2) -> str:
    """Render a ratio the way the paper does (``3.03x``)."""
    return f"{value:.{digits}f}x"
