"""CCPROF_result-style artifact writers.

The paper's artifact drops per-application ``*result`` files with the
loop-level conflict predictions and CDF series for the Figure 9 plots; the
benchmark harness uses these writers to leave the same paper trail.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Tuple, Union

from repro.core.report import ConflictReport

PathLike = Union[str, Path]


def write_result_file(path: PathLike, report: ConflictReport) -> Path:
    """Write one application's conflict analysis as a ``*result`` file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(report.render() + "\n", encoding="utf-8")
    return target


def write_cdf_series(
    path: PathLike, series: Sequence[Tuple[int, float]], label: str = ""
) -> Path:
    """Write an RCD CDF as two-column text (``rcd cumulative_probability``).

    The plottable data behind the paper's Figure 7/9 curves.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [f"# {label}", "# rcd cumulative_probability"]
    lines.extend(f"{rcd} {probability:.6f}" for rcd, probability in series)
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target
