"""Rendering: text tables and CCPROF_result-style files.

- :mod:`repro.reporting.tables` — plain-text table rendering used by the
  benchmark harness to print the paper's tables.
- :mod:`repro.reporting.files` — writers producing the artifact layout of
  the paper's reproduction scripts (``CCPROF_result/*result`` files).
"""

from repro.reporting.tables import Table, format_table
from repro.reporting.files import write_result_file, write_cdf_series

__all__ = ["Table", "format_table", "write_result_file", "write_cdf_series"]
