"""Performance trajectory harness (``make perf``).

Times the scalar reference engines against the columnar batched engines on
a fixed workload matrix, verifies that both produce identical results, and
records the measurements as a ``BENCH_<revision>.json`` artifact so the
repo accumulates a perf trajectory across revisions.

Run it as a module::

    python -m repro.perf            # full matrix
    python -m repro.perf --quick    # CI-sized smoke run

Programmatic entry points: :func:`~repro.perf.harness.run_benchmark`,
:func:`~repro.perf.schema.save_result`, :func:`~repro.perf.schema.load_result`.
"""

from repro.perf.harness import run_benchmark
from repro.perf.schema import (
    SCHEMA_VERSION,
    load_result,
    result_filename,
    save_result,
    validate_result,
)

__all__ = [
    "SCHEMA_VERSION",
    "load_result",
    "result_filename",
    "run_benchmark",
    "save_result",
    "validate_result",
]
