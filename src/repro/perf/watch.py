"""Trajectory watch: turn BENCH/MANIFEST artifacts into a regression gate.

The repo's perf trajectory — one ``BENCH_<rev>.json`` (and optionally a
``MANIFEST_<rev>.json``) per benchmarked revision — has always been a
*record*.  This module makes it a *detector*: :func:`load_trajectory`
reads a directory (or an explicit file list) into ordered
:class:`TrajectoryPoint` s, :func:`watch_trajectory` walks consecutive
pairs applying :class:`WatchThresholds`, and the resulting
:class:`TrajectoryReport` renders the trend and says whether anything
regressed.  ``ccprof watch`` exits through the ``watch`` error family
(exit 13) on regression so CI and the service can gate on it.

Threshold semantics (see DESIGN.md §9 for the rationale):

- **headline drop** is relative: ``(before - after) / before`` on the
  headline speedup, gated at 15% by default.
- **per-workload drop** is relative per common workload name, gated at
  30% — looser than the headline because individual workloads trade
  wins between revisions (the committed trajectory itself moves
  ``exact_rcd`` −24% while the headline rises 25%).
- **obs overhead** and **ipc bytes/access** are absolute per-point
  budgets (5% and the 16 B/access pipe baseline), matching the existing
  CI perf-smoke gates — the watch re-checks them over history, not just
  on the current run.
- **screen verdicts** regress only on a ``clear → suspect`` flip;
  ``unknown`` transitions are informational.
- **timeline conflict fraction** (from manifests carrying a streaming
  ``timeline`` section) regresses on an absolute increase beyond 0.25;
  per-phase victim-set drift is informational.

Gate flags embedded in the artifacts themselves (``headline.target_met``,
per-workload ``gate_met``) fail the watch whenever they are false —
*except* ``headline.sharded.target_met`` when the artifact says the gate
was not ``enforced`` (single-CPU benches record the miss without
claiming it matters).
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import WatchError, WatchRegressionError
from repro.obs.manifest import ManifestError, RunManifest
from repro.perf.schema import BenchSchemaError, load_result

PathLike = Union[str, Path]

#: Severity levels a finding can carry, in increasing order of alarm.
SEVERITIES = ("ok", "info", "regression")


@dataclass(frozen=True)
class WatchThresholds:
    """Configurable regression boundaries (defaults documented above).

    Attributes:
        max_headline_drop: Relative headline-speedup drop tolerated
            between consecutive points.
        max_workload_drop: Relative per-workload speedup drop tolerated.
        max_obs_overhead: Absolute obs self-overhead budget per point.
        max_ipc_bytes_per_access: Absolute shipped-bytes budget per point
            (the pre-arena pipe baseline).
        max_conflict_growth: Absolute timeline conflict-fraction increase
            tolerated between consecutive points.
    """

    max_headline_drop: float = 0.15
    max_workload_drop: float = 0.30
    max_obs_overhead: float = 0.05
    max_ipc_bytes_per_access: float = 16.0
    max_conflict_growth: float = 0.25

    def __post_init__(self) -> None:
        for name in (
            "max_headline_drop",
            "max_workload_drop",
            "max_obs_overhead",
            "max_ipc_bytes_per_access",
            "max_conflict_growth",
        ):
            value = getattr(self, name)
            if value < 0:
                raise WatchError(f"{name} must be >= 0, got {value}")


@dataclass
class TrajectoryPoint:
    """One revision's artifacts: its BENCH result and/or run manifest."""

    revision: str
    bench: Optional[Dict[str, object]] = None
    manifest: Optional[RunManifest] = None
    sources: List[str] = field(default_factory=list)

    @property
    def headline_speedup(self) -> Optional[float]:
        if self.bench is None:
            return None
        return float(self.bench["headline"]["speedup"])

    def workload_speedups(self) -> Dict[str, float]:
        if self.bench is None:
            return {}
        return {
            str(workload["name"]): float(workload["speedup"])
            for workload in self.bench["workloads"]
        }

    @property
    def obs_overhead(self) -> Optional[float]:
        if self.bench is None or "obs_overhead" not in self.bench:
            return None
        return float(self.bench["obs_overhead"]["overhead"])

    @property
    def ipc_bytes_per_access(self) -> Optional[float]:
        if self.bench is None:
            return None
        sharded = self.bench["headline"].get("sharded") or {}
        ipc = sharded.get("ipc")
        if ipc is None:
            return None
        return float(ipc["bytes_shipped_per_access"])

    @property
    def screen_verdict(self) -> Optional[str]:
        if self.bench is None or "screening" not in self.bench:
            return None
        return str(self.bench["screening"]["verdict"])

    @property
    def timeline(self) -> Optional[Dict[str, object]]:
        if self.manifest is None:
            return None
        return self.manifest.timeline


@dataclass(frozen=True)
class WatchFinding:
    """One observation about the trajectory.

    Attributes:
        transition: ``"rev_a -> rev_b"`` for pairwise checks, the bare
            revision for point-level checks.
        dimension: What was compared (``headline``, ``workload:name``,
            ``obs_overhead``, ``ipc``, ``screen``, ``timeline``,
            ``gate``).
        severity: ``ok`` / ``info`` / ``regression``.
        message: Human-readable summary with the numbers.
        before: Prior value (pairwise checks; None otherwise).
        after: Current value.
    """

    transition: str
    dimension: str
    severity: str
    message: str
    before: Optional[float] = None
    after: Optional[float] = None


@dataclass
class TrajectoryReport:
    """Everything one watch run concluded."""

    points: List[TrajectoryPoint]
    thresholds: WatchThresholds
    findings: List[WatchFinding] = field(default_factory=list)

    def regressions(self) -> List[WatchFinding]:
        """Findings that should fail the gate, in report order."""
        return [f for f in self.findings if f.severity == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the ``--report`` artifact CI uploads)."""
        return {
            "revisions": [point.revision for point in self.points],
            "thresholds": asdict(self.thresholds),
            "ok": self.ok,
            "findings": [asdict(finding) for finding in self.findings],
            "headline": {
                point.revision: point.headline_speedup
                for point in self.points
                if point.headline_speedup is not None
            },
        }

    def save(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="ascii") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    def render(self) -> str:
        """Multi-line text report: the trend, then every finding."""
        lines = [
            "perf trajectory: "
            + " -> ".join(point.revision for point in self.points)
        ]
        for point in self.points:
            headline = point.headline_speedup
            parts = [f"  {point.revision:<9}"]
            parts.append(
                f"headline {headline:6.2f}x" if headline is not None
                else "headline      -"
            )
            overhead = point.obs_overhead
            if overhead is not None:
                parts.append(f"obs {overhead:+.2%}")
            ipc = point.ipc_bytes_per_access
            if ipc is not None:
                parts.append(f"ipc {ipc:.4f} B/access")
            if point.timeline is not None:
                fraction = point.timeline.get("conflict_fraction", 0.0)
                parts.append(f"conflict {fraction:.2f}")
            lines.append("  ".join(parts))
        shown = [f for f in self.findings if f.severity != "ok"]
        if shown:
            lines.append("findings:")
            for finding in shown:
                lines.append(
                    f"  [{finding.severity.upper():<10}] "
                    f"{finding.transition}  {finding.dimension}: "
                    f"{finding.message}"
                )
        lines.append(
            "verdict: "
            + ("ok" if self.ok else f"{len(self.regressions())} regression(s)")
        )
        return "\n".join(lines)


# -- loading ------------------------------------------------------------


def _revision_of(path: Path) -> str:
    """Revision encoded in a ``BENCH_<rev>.json``/``MANIFEST_<rev>.json``
    name (falls back to the stem for free-form names)."""
    stem = path.stem
    for prefix in ("BENCH_", "MANIFEST_"):
        if stem.startswith(prefix):
            return stem[len(prefix):]
    return stem


def _git_order(directory: Path) -> List[str]:
    """Commit hashes of ``directory``'s repo, oldest first ([] outside
    git) — the authoritative ordering for a trajectory directory."""
    try:
        completed = subprocess.run(
            ["git", "rev-list", "--topo-order", "--reverse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
            cwd=str(directory),
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if completed.returncode != 0:
        return []
    return completed.stdout.split()


def _attach(point: TrajectoryPoint, path: Path) -> None:
    """Load ``path`` into ``point`` as a bench result or a manifest."""
    name = path.name
    if name.startswith("BENCH_"):
        try:
            point.bench = load_result(path)
        except BenchSchemaError as exc:
            raise WatchError(f"{path}: {exc}") from exc
    elif name.startswith("MANIFEST_"):
        try:
            point.manifest = RunManifest.load(path)
        except ManifestError as exc:
            raise WatchError(f"{path}: {exc}") from exc
    else:
        raise WatchError(
            f"{path}: not a trajectory artifact "
            "(expected BENCH_*.json or MANIFEST_*.json)"
        )
    point.sources.append(str(path))


def load_trajectory(paths: Sequence[PathLike]) -> List[TrajectoryPoint]:
    """Build the ordered trajectory from ``paths``.

    One directory argument globs its ``BENCH_*.json``/``MANIFEST_*.json``
    files, groups them by the revision in the filename, and orders the
    points by git history (topological, oldest first; file mtime when the
    directory is not inside a git checkout).  Multiple file arguments are
    taken in the given order — the caller is asserting the chronology —
    with same-revision BENCH/MANIFEST pairs merged into one point.
    """
    if not paths:
        raise WatchError("no trajectory inputs given")
    expanded: List[Path] = []
    if len(paths) == 1 and Path(paths[0]).is_dir():
        directory = Path(paths[0])
        expanded = sorted(directory.glob("BENCH_*.json")) + sorted(
            directory.glob("MANIFEST_*.json")
        )
        if not expanded:
            raise WatchError(
                f"{directory}: no BENCH_*.json or MANIFEST_*.json artifacts"
            )
        order = _git_order(directory)
    else:
        expanded = [Path(path) for path in paths]
        order = []

    points: Dict[str, TrajectoryPoint] = {}
    arrival: List[str] = []
    for path in expanded:
        if not path.is_file():
            raise WatchError(f"{path}: no such artifact")
        revision = _revision_of(path)
        if revision not in points:
            points[revision] = TrajectoryPoint(revision=revision)
            arrival.append(revision)
        _attach(points[revision], path)

    if order:
        # Git order: match each artifact revision as a prefix of a commit
        # hash; artifacts from unknown revisions keep arrival order at
        # the end (an orphaned artifact should not crash the gate).
        position = {}
        for revision in arrival:
            position[revision] = next(
                (
                    index
                    for index, commit in enumerate(order)
                    if commit.startswith(revision)
                ),
                len(order) + arrival.index(revision),
            )
        arrival.sort(key=lambda revision: position[revision])
    elif len(paths) == 1:
        # Directory outside git: mtime is the best available chronology.
        mtimes = {
            revision: min(Path(s).stat().st_mtime for s in point.sources)
            for revision, point in points.items()
        }
        arrival.sort(key=lambda revision: mtimes[revision])

    trajectory = [points[revision] for revision in arrival]
    if len(trajectory) < 2:
        raise WatchError(
            f"trajectory needs at least 2 points to diff, got {len(trajectory)}"
        )
    return trajectory


# -- checks -------------------------------------------------------------


def _relative_drop(before: float, after: float) -> float:
    """Fractional drop from ``before`` to ``after`` (<= 0 on improvement)."""
    if before <= 0:
        return 0.0
    return (before - after) / before


def _check_pair(
    before: TrajectoryPoint,
    after: TrajectoryPoint,
    thresholds: WatchThresholds,
) -> List[WatchFinding]:
    transition = f"{before.revision} -> {after.revision}"
    findings: List[WatchFinding] = []

    headline_before = before.headline_speedup
    headline_after = after.headline_speedup
    if headline_before is not None and headline_after is not None:
        drop = _relative_drop(headline_before, headline_after)
        if drop > thresholds.max_headline_drop:
            severity, note = "regression", "exceeds"
        elif drop > 0:
            severity, note = "info", "within"
        else:
            severity, note = "ok", "improved past"
        findings.append(
            WatchFinding(
                transition=transition,
                dimension="headline",
                severity=severity,
                message=(
                    f"speedup {headline_before:.2f}x -> {headline_after:.2f}x "
                    f"({-drop:+.1%}), {note} the "
                    f"{thresholds.max_headline_drop:.0%} drop threshold"
                ),
                before=headline_before,
                after=headline_after,
            )
        )

    speedups_before = before.workload_speedups()
    speedups_after = after.workload_speedups()
    for name in sorted(set(speedups_before) & set(speedups_after)):
        drop = _relative_drop(speedups_before[name], speedups_after[name])
        if drop > thresholds.max_workload_drop:
            severity = "regression"
        elif drop > thresholds.max_workload_drop / 2:
            severity = "info"
        else:
            continue
        findings.append(
            WatchFinding(
                transition=transition,
                dimension=f"workload:{name}",
                severity=severity,
                message=(
                    f"speedup {speedups_before[name]:.2f}x -> "
                    f"{speedups_after[name]:.2f}x ({-drop:+.1%}; "
                    f"threshold {thresholds.max_workload_drop:.0%})"
                ),
                before=speedups_before[name],
                after=speedups_after[name],
            )
        )
    for name in sorted(set(speedups_before) - set(speedups_after)):
        findings.append(
            WatchFinding(
                transition=transition,
                dimension=f"workload:{name}",
                severity="info",
                message="workload dropped from the bench suite",
                before=speedups_before[name],
            )
        )
    for name in sorted(set(speedups_after) - set(speedups_before)):
        findings.append(
            WatchFinding(
                transition=transition,
                dimension=f"workload:{name}",
                severity="info",
                message=f"new workload at {speedups_after[name]:.2f}x",
                after=speedups_after[name],
            )
        )

    verdict_before = before.screen_verdict
    verdict_after = after.screen_verdict
    if (
        verdict_before is not None
        and verdict_after is not None
        and verdict_before != verdict_after
    ):
        worsened = verdict_before == "clear" and verdict_after == "suspect"
        findings.append(
            WatchFinding(
                transition=transition,
                dimension="screen",
                severity="regression" if worsened else "info",
                message=f"screen verdict {verdict_before} -> {verdict_after}",
            )
        )

    timeline_before = before.timeline
    timeline_after = after.timeline
    if timeline_before is not None and timeline_after is not None:
        fraction_before = float(timeline_before.get("conflict_fraction", 0.0))
        fraction_after = float(timeline_after.get("conflict_fraction", 0.0))
        growth = fraction_after - fraction_before
        if growth > thresholds.max_conflict_growth:
            findings.append(
                WatchFinding(
                    transition=transition,
                    dimension="timeline",
                    severity="regression",
                    message=(
                        f"conflict fraction {fraction_before:.2f} -> "
                        f"{fraction_after:.2f} (+{growth:.2f}; threshold "
                        f"+{thresholds.max_conflict_growth:.2f})"
                    ),
                    before=fraction_before,
                    after=fraction_after,
                )
            )
        victims_before = _timeline_victims(timeline_before)
        victims_after = _timeline_victims(timeline_after)
        appeared = sorted(victims_after - victims_before)
        if appeared:
            findings.append(
                WatchFinding(
                    transition=transition,
                    dimension="timeline",
                    severity="info",
                    message=(
                        f"{len(appeared)} new victim set(s) in conflict "
                        f"phases: {appeared[:8]}"
                    ),
                )
            )
    return findings


def _timeline_victims(timeline: Dict[str, object]) -> set:
    victims: set = set()
    for window in timeline.get("windows", []):  # type: ignore[union-attr]
        if window.get("conflict"):
            victims.update(window.get("victim_sets", []))
    return victims


def _check_point(
    point: TrajectoryPoint, thresholds: WatchThresholds
) -> List[WatchFinding]:
    findings: List[WatchFinding] = []
    bench = point.bench
    if bench is None:
        return findings
    headline = bench["headline"]
    if not headline["target_met"]:
        findings.append(
            WatchFinding(
                transition=point.revision,
                dimension="gate",
                severity="regression",
                message=(
                    f"headline speedup {headline['speedup']:.2f}x misses its "
                    f"{headline['target_speedup']:.0f}x target"
                ),
                after=float(headline["speedup"]),
            )
        )
    if not headline["all_match"]:
        findings.append(
            WatchFinding(
                transition=point.revision,
                dimension="gate",
                severity="regression",
                message="bench recorded an engine/scalar mismatch",
            )
        )
    for workload in bench["workloads"]:
        if workload.get("gate_met") is False:
            findings.append(
                WatchFinding(
                    transition=point.revision,
                    dimension=f"gate:{workload['name']}",
                    severity="regression",
                    message=(
                        f"speedup {workload['speedup']:.2f}x under its "
                        f"{workload['min_speedup']:.1f}x floor"
                    ),
                    after=float(workload["speedup"]),
                )
            )
    sharded = headline.get("sharded")
    if sharded and not sharded["target_met"] and sharded.get("enforced"):
        findings.append(
            WatchFinding(
                transition=point.revision,
                dimension="gate:sharded",
                severity="regression",
                message=(
                    f"sharded {sharded['speedup_vs_batched']:.2f}x vs batched "
                    f"misses its enforced {sharded['target']:.1f}x target"
                ),
                after=float(sharded["speedup_vs_batched"]),
            )
        )
    overhead = point.obs_overhead
    if overhead is not None and overhead > thresholds.max_obs_overhead:
        findings.append(
            WatchFinding(
                transition=point.revision,
                dimension="obs_overhead",
                severity="regression",
                message=(
                    f"obs self-overhead {overhead:+.2%} over the "
                    f"{thresholds.max_obs_overhead:.0%} budget"
                ),
                after=overhead,
            )
        )
    ipc = point.ipc_bytes_per_access
    if ipc is not None and ipc >= thresholds.max_ipc_bytes_per_access:
        findings.append(
            WatchFinding(
                transition=point.revision,
                dimension="ipc",
                severity="regression",
                message=(
                    f"{ipc:.2f} B/access shipped at or above the "
                    f"{thresholds.max_ipc_bytes_per_access:.0f} B/access "
                    "pipe baseline"
                ),
                after=ipc,
            )
        )
    return findings


def watch_trajectory(
    points: Sequence[TrajectoryPoint],
    thresholds: Optional[WatchThresholds] = None,
) -> TrajectoryReport:
    """Apply every check over ``points``; returns the full report."""
    if len(points) < 2:
        raise WatchError(
            f"trajectory needs at least 2 points to diff, got {len(points)}"
        )
    thresholds = thresholds or WatchThresholds()
    report = TrajectoryReport(points=list(points), thresholds=thresholds)
    for point in points:
        report.findings.extend(_check_point(point, thresholds))
    for before, after in zip(points, points[1:]):
        report.findings.extend(_check_pair(before, after, thresholds))
    return report


def watch(
    paths: Sequence[PathLike],
    thresholds: Optional[WatchThresholds] = None,
    report_path: Optional[PathLike] = None,
) -> TrajectoryReport:
    """Load, check, optionally save the report — then return it.

    The report is written (when ``report_path`` is given) regardless of
    the verdict so CI uploads the evidence either way; raising on
    regression is the caller's move (:func:`regression_error` builds the
    exception the CLI maps onto exit 13).
    """
    report = watch_trajectory(load_trajectory(paths), thresholds)
    if report_path is not None:
        report.save(report_path)
    return report


def render_bench(result: Dict[str, object]) -> str:
    """Text rendering of one validated BENCH result (``ccprof inspect``).

    Shows the headline, the per-workload table, the per-backend engine
    matrix (v2) with any ipc sub-records, and the optional obs-overhead
    and screening records.
    """
    headline = result["headline"]
    lines = [
        f"bench result: revision {result['revision']} "
        f"(schema v{result['schema_version']}"
        + (", quick)" if result["quick"] else ")"),
        f"  headline: {headline['workload']} {headline['speedup']:.2f}x "
        f"(target {headline['target_speedup']:.0f}x "
        f"{'met' if headline['target_met'] else 'MISSED'}; "
        f"all engines match: {headline['all_match']})",
    ]
    for workload in result["workloads"]:
        gate = ""
        if "gate_met" in workload:
            gate = (
                f"  floor {workload['min_speedup']:.1f}x "
                f"{'met' if workload['gate_met'] else 'MISSED'}"
            )
        lines.append(
            f"  {workload['name']:<14} {workload['accesses']:>9} accesses  "
            f"{workload['speedup']:6.2f}x"
            f"{gate}"
        )
        for engine_name, record in sorted(
            workload.get("engines", {}).items()
        ):
            ipc = record.get("ipc")
            ipc_note = (
                f"  ipc {ipc['bytes_shipped_per_access']:.4f} B/access"
                if ipc
                else ""
            )
            lines.append(
                f"    {engine_name:<10} {record['seconds']:8.3f} s  "
                f"{record['accesses_per_sec']:>12.0f} acc/s  "
                f"{record['speedup']:6.2f}x  "
                f"{'match' if record['match'] else 'MISMATCH'}{ipc_note}"
            )
    sharded = headline.get("sharded")
    if sharded:
        enforced = "enforced" if sharded["enforced"] else "not enforced"
        lines.append(
            f"  sharded: {sharded['speedup_vs_batched']:.2f}x vs batched "
            f"with {sharded['workers']} workers (target "
            f"{sharded['target']:.1f}x "
            f"{'met' if sharded['target_met'] else 'missed'}, {enforced})"
        )
    overhead = result.get("obs_overhead")
    if overhead:
        lines.append(
            f"  obs overhead: {overhead['overhead']:+.2%} on "
            f"{overhead['workload']} (target <{overhead['target']:.0%}, "
            f"{'within' if overhead['within_target'] else 'OVER'})"
        )
    screening = result.get("screening")
    if screening:
        lines.append(
            f"  screening: {screening['workload']} -> "
            f"{screening['verdict']} in {screening['screen_seconds']:.4f} s "
            f"({screening['speedup']:.0f}x cheaper than simulation)"
        )
    return "\n".join(lines)


def regression_error(report: TrajectoryReport) -> WatchRegressionError:
    """The exit-13 error describing ``report``'s failing findings."""
    regressions = report.regressions()
    return WatchRegressionError(
        f"{len(regressions)} regression(s) across "
        f"{len(report.points)} trajectory points",
        regressions=[finding.message for finding in regressions],
    )
