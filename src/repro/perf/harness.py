"""Benchmark harness: the engine-backend matrix over the workload matrix.

Every benchmark runs the *same* prepared inputs through every selected
engine backend (from the :mod:`repro.engine` registry), asserts that each
backend agrees with the ``scalar`` reference exactly (a silent divergence
would make the speedup numbers meaningless), and reports throughput in
accesses/second.  Results are recorded in the version-2 ``BENCH_*.json``
schema: the v1 scalar/batched fields keep their v1 meanings, and every
workload additionally carries an ``engines`` map with one record per
benched backend.

The workload matrix spans the locality spectrum:

- ``lru_stream`` (headline) — an 8-byte-stride streaming sweep, the shape
  of the paper's Rodinia kernels.  High spatial locality is where the
  columnar engine collapses best; the ≥10x target is asserted here, and
  the sharded backend's ≥2x-over-batched target is recorded here.
- ``lru_zipf`` — hot/cold skew, the shape of pointer-heavy data accesses.
- ``lru_uniform`` — uniformly random lines: the adversarial floor, kept in
  the matrix so the trajectory records worst-case behaviour honestly.
- ``sampler_zipf`` — the full PEBS sampling pipeline (simulated L1 + period
  countdown + sample capture) through each backend's ``sample`` hook.
- ``exact_rcd`` — the offline RCD analysis stage through each backend's
  ``rcd_from_addresses`` hook (scalar dict-scan vs vectorized vs sharded).

Per-workload minimum-speedup gates (``MIN_SPEEDUPS``) pin the *batched*
speedup floor for every workload, so a tail workload (the ~3.5x
``lru_uniform``) cannot silently regress while the headline stays green.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.engine import (
    EngineBackend,
    available_workers,
    backend_names,
    get_backend,
)
from repro.errors import SamplingError
from repro.obs.manifest import git_revision
from repro.obs.metrics import get_registry
from repro.obs.overhead import measure_self_overhead
from repro.perf.schema import SCHEMA_VERSION
from repro.pmu.sampler import AddressSampler
from repro.trace.batch import DEFAULT_BATCH_SIZE, iter_batches
from repro.trace.record import MemoryAccess
from repro.trace.synthetic import uniform_trace, zipf_trace

#: The acceptance bar for the headline workload (batched vs scalar).
TARGET_SPEEDUP = 10.0

#: The sharded backend's acceptance bar on the headline workload,
#: measured against *batched* (enforced only on hosts with enough
#: usable CPUs for the configured worker count — see ``enforced``).
SHARDED_TARGET_SPEEDUP = 2.0

#: Worker-process count the matrix runs parallel backends with.
DEFAULT_WORKERS = 4

#: Accesses per cache benchmark (full / --quick).
FULL_ACCESSES = 400_000
QUICK_ACCESSES = 40_000

#: Per-workload floors for the batched-vs-scalar speedup (the v1
#: ``speedup`` field).  Set at roughly half the BENCH_468f2a7.json
#: measurements so machine noise does not flap the gate, while a real
#: regression (a workload falling back to scalar-shaped work) trips it.
MIN_SPEEDUPS: Dict[str, float] = {
    "lru_stream": 10.0,
    "lru_zipf": 2.5,
    "lru_uniform": 2.0,
    "sampler_zipf": 3.0,
    "exact_rcd": 2.0,
}


def stream_trace(
    count: int, *, stride: int = 8, lines: int = 8192, base: int = 0x6000_0000
) -> Iterator[MemoryAccess]:
    """Streaming stride-``stride`` sweep over a ``lines``-line footprint."""
    span = lines * 64
    for index in range(count):
        yield MemoryAccess(ip=0x400100, address=base + (index * stride) % span)


def _timed(action: Callable[[], object]) -> Tuple[float, object]:
    start = time.perf_counter()
    value = action()
    return time.perf_counter() - start, value


def _configured(backend: EngineBackend, workers: int) -> EngineBackend:
    """Apply the matrix's worker count to parallel backends.

    Parallel backends are also asked to drop their fallback crossovers —
    the matrix exists to measure the parallel path itself, not the
    heuristic that routes small traces around it.  Backends that do not
    expose crossover knobs just get ``workers``.
    """
    if "parallel" not in backend.capabilities:
        return backend
    try:
        return backend.configure(workers=workers, crossover=0, rcd_crossover=0)
    except SamplingError:
        return backend.configure(workers=workers)


#: Data-plane counters sampled around each parallel-backend run; their
#: deltas become the per-entry ``ipc`` sub-record.
_IPC_COUNTERS = (
    "engine.sharded.ipc.bytes_shipped",
    "engine.sharded.arena.bytes_mapped",
)

#: Transport cost of the pre-arena (PR 7) pipe data plane: two pickled
#: u8 columns (address + ip) shipped down per access, before counting
#: the reply masks.  The CI perf-smoke gate asserts the arena stays
#: under this floor.
PIPE_BASELINE_BYTES_PER_ACCESS = 16.0


def _ipc_totals() -> Optional[Tuple[int, ...]]:
    """Current data-plane counter totals (``None`` when obs is off)."""
    registry = get_registry()
    if not registry.enabled:
        return None
    return tuple(registry.counter(name).value for name in _IPC_COUNTERS)


def _cache_run(backend: EngineBackend, batches: List, geometry: CacheGeometry):
    stats = backend.simulate(batches, geometry=geometry, split_lines=False)
    return stats.as_dict()


def _sampler_run(backend: EngineBackend, batches: List, geometry: CacheGeometry):
    result = backend.sample(AddressSampler(geometry=geometry, seed=29), batches)
    return (
        result.samples,
        result.total_events,
        result.total_accesses,
        result.truncated,
        result.truncation_reason,
    )


def _rcd_run(backend: EngineBackend, addresses: np.ndarray, geometry: CacheGeometry):
    return backend.rcd_from_addresses(addresses, geometry)


def _rcd_canon(analysis) -> tuple:
    """Comparable form of an RCD analysis (built OUTSIDE the timed region:
    materializing per-observation objects costs more than the analysis
    itself and would wash out the engines' real difference)."""
    return (
        [(o.set_index, o.rcd, o.position) for o in analysis.observations],
        analysis.observation_count,
        analysis.histogram().counts,
    )


def _engine_matrix(
    name: str,
    kind: str,
    accesses: int,
    backends: Sequence[EngineBackend],
    run: Callable[[EngineBackend], object],
    workers: int,
    canon: Optional[Callable[[object], object]] = None,
) -> dict:
    """Time ``run`` per backend; fold into one v2 workload record.

    ``canon`` converts a run's output to its comparable form *outside*
    the timed region, for workloads whose natural output is expensive to
    canonicalize.
    """
    timings: Dict[str, float] = {}
    outputs: Dict[str, object] = {}
    ipc: Dict[str, dict] = {}
    for backend in backends:
        parallel = "parallel" in backend.capabilities
        before = _ipc_totals() if parallel else None
        seconds, output = _timed(lambda backend=backend: run(backend))
        if before is not None:
            after = _ipc_totals()
            shipped = after[0] - before[0]
            mapped = after[1] - before[1]
            ipc[backend.name] = {
                "bytes_shipped": shipped,
                "bytes_mapped": mapped,
                "bytes_shipped_per_access": shipped / max(accesses, 1),
            }
        timings[backend.name] = max(seconds, 1e-9)
        outputs[backend.name] = canon(output) if canon is not None else output
    reference = outputs["scalar"]
    scalar_seconds = timings["scalar"]
    engines = {}
    for backend in backends:
        backend_name = backend.name
        record = {
            "seconds": timings[backend_name],
            "accesses_per_sec": accesses / timings[backend_name],
            "speedup": scalar_seconds / timings[backend_name],
            "match": outputs[backend_name] == reference,
        }
        if "parallel" in backend.capabilities:
            record["workers"] = workers
            if backend_name in ipc:
                record["ipc"] = ipc[backend_name]
        engines[backend_name] = record
    batched_seconds = timings.get("batched", scalar_seconds)
    min_speedup = MIN_SPEEDUPS.get(name, 1.0)
    speedup = scalar_seconds / batched_seconds
    return {
        # v1 fields, v1 meanings (scalar reference vs batched columnar).
        "name": name,
        "kind": kind,
        "accesses": accesses,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "scalar_accesses_per_sec": accesses / scalar_seconds,
        "batched_accesses_per_sec": accesses / batched_seconds,
        "speedup": speedup,
        "match": all(record["match"] for record in engines.values()),
        # v2 fields: the full backend matrix and the per-workload gate.
        "engines": engines,
        "min_speedup": min_speedup,
        "gate_met": speedup >= min_speedup,
    }


#: The headline workload the ≥10x acceptance bar applies to.
HEADLINE_WORKLOAD = "lru_stream"


def _measure_screening(quick: bool) -> dict:
    """Screen time vs the simulation a ``clear`` verdict skips.

    Benched on the padded (conflict-free) gemm — the shape of the fleet
    request the "predict-cheap, simulate-only-suspects" path is for:
    the screen clears it and the full dynamic run never happens.  Both
    sides are measured cold (model build included) on the same sizing.
    """
    from repro.analysis.screening import screen_workload
    from repro.core.profiler import CCProf
    from repro.pmu.periods import UniformJitterPeriod
    from repro.workloads.polybench import GemmWorkload

    n = 24 if quick else 48

    start = time.perf_counter()
    screen = screen_workload(GemmWorkload(n=n, pad_bytes=64))
    screen_seconds = max(time.perf_counter() - start, 1e-9)

    start = time.perf_counter()
    CCProf(
        period=UniformJitterPeriod(97), seed=0, strict=False
    ).run(GemmWorkload(n=n, pad_bytes=64))
    simulate_seconds = time.perf_counter() - start

    return {
        "workload": f"gemm-padded(n={n})",
        "verdict": screen.verdict,
        "screen_seconds": screen_seconds,
        "simulate_seconds": simulate_seconds,
        "speedup": simulate_seconds / screen_seconds,
    }


def _resolve_backends(
    engines: Optional[Sequence[str]], workers: int
) -> List[EngineBackend]:
    """Selected + mandatory backends, scalar first (it is the baseline).

    ``scalar`` and ``batched`` are always benched: scalar is the
    reference every backend is diffed against, and batched is what the
    v1 fields and the per-workload gates are defined over.
    """
    names = list(engines) if engines is not None else backend_names()
    for mandatory in ("batched", "scalar"):
        if mandatory not in names:
            names.insert(0, mandatory)
    names.sort(key=lambda name: (name != "scalar", name))
    return [_configured(get_backend(name), workers) for name in names]


def run_benchmark(
    *,
    quick: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    accesses: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    engines: Optional[Sequence[str]] = None,
    workers: int = DEFAULT_WORKERS,
) -> dict:
    """Run the full matrix; returns a schema-valid (v2) result dict.

    Args:
        quick: CI-sized run (10x fewer accesses) — same matrix, same
            divergence checks, noisier numbers.
        batch_size: Records per batch for the batched engines.
        accesses: Override the per-workload trace length.
        progress: Optional callable invoked with one line per workload.
        engines: Backend names to bench (default: every registered
            backend).  ``scalar`` and ``batched`` are always included.
        workers: Worker-process count for parallel backends.
    """
    count = accesses if accesses is not None else (
        QUICK_ACCESSES if quick else FULL_ACCESSES
    )
    say = progress or (lambda _line: None)
    backends = _resolve_backends(engines, workers)
    geometry = CacheGeometry()

    matrix: List[dict] = []

    def record(entry: dict) -> None:
        matrix.append(entry)
        per_engine = "  ".join(
            f"{name} {engine['accesses_per_sec']:>11,.0f}/s"
            f" ({engine['speedup']:.1f}x)"
            for name, engine in sorted(entry["engines"].items())
        )
        flag = "ok" if entry["match"] else "DIVERGED"
        say(f"{entry['name']:12s} {per_engine}  {flag}")

    def cache_workload(name: str, trace: List[MemoryAccess]) -> dict:
        batches = list(iter_batches(iter(trace), batch_size))
        return _engine_matrix(
            name, "cache", len(trace), backends,
            lambda backend: _cache_run(backend, batches, geometry),
            workers,
        )

    record(cache_workload(HEADLINE_WORKLOAD, list(stream_trace(count))))
    record(cache_workload("lru_zipf", list(zipf_trace(count, 4096, seed=5))))
    record(
        cache_workload("lru_uniform", list(uniform_trace(count, 4096, seed=5)))
    )

    sampler_trace = list(zipf_trace(count, 4096, seed=7))
    sampler_batches = list(iter_batches(iter(sampler_trace), batch_size))
    record(
        _engine_matrix(
            "sampler_zipf", "sampler", len(sampler_trace), backends,
            lambda backend: _sampler_run(backend, sampler_batches, geometry),
            workers,
        )
    )

    rcd_addresses = np.fromiter(
        (access.address for access in zipf_trace(count, 4096, seed=9)),
        dtype=np.uint64,
    )
    record(
        _engine_matrix(
            "exact_rcd", "rcd", int(rcd_addresses.size), backends,
            lambda backend: _rcd_run(backend, rcd_addresses, geometry),
            workers,
            canon=_rcd_canon,
        )
    )

    # The overhead bound is a hard CI gate, so unlike the throughput
    # matrix it is always measured at full size: quick-run timed regions
    # (~5 ms) jitter past the 5% target on a loaded machine.
    overhead = measure_self_overhead(
        accesses=max(count, FULL_ACCESSES), repeats=5, batch_size=batch_size
    )
    say(
        f"{'obs_overhead':12s} bare {overhead.bare_seconds * 1e3:>9.3f} ms"
        f"  instrumented {overhead.instrumented_seconds * 1e3:>9.3f} ms"
        f"  ratio {overhead.ratio:5.3f}"
        f"  {'ok' if overhead.within_target else 'EXCEEDS TARGET'}"
    )

    screening = _measure_screening(quick)
    say(
        f"{'screening':12s} screen {screening['screen_seconds'] * 1e3:>9.3f} ms"
        f"  simulate {screening['simulate_seconds'] * 1e3:>9.3f} ms"
        f"  ({screening['speedup']:.0f}x saved on "
        f"'{screening['verdict']}')"
    )

    headline = next(w for w in matrix if w["name"] == HEADLINE_WORKLOAD)
    headline_record = {
        "workload": HEADLINE_WORKLOAD,
        "speedup": headline["speedup"],
        "target_speedup": TARGET_SPEEDUP,
        "target_met": headline["speedup"] >= TARGET_SPEEDUP,
        "all_match": all(w["match"] for w in matrix),
    }
    sharded_engine = headline["engines"].get("sharded")
    if sharded_engine is not None:
        # The 2x-over-batched bar only means something when the host can
        # actually run the workers in parallel; on smaller machines the
        # numbers are still recorded but the gate is not enforced.
        headline_record["sharded"] = {
            "workers": workers,
            "speedup_vs_batched": (
                headline["batched_seconds"] / sharded_engine["seconds"]
            ),
            "target": SHARDED_TARGET_SPEEDUP,
            "target_met": (
                headline["batched_seconds"] / sharded_engine["seconds"]
                >= SHARDED_TARGET_SPEEDUP
            ),
            "enforced": available_workers() >= workers,
        }
        if "ipc" in sharded_engine:
            # Surface the headline transport cost next to the speedup it
            # explains (CI gates it against the pre-arena pipe baseline).
            headline_record["sharded"]["ipc"] = sharded_engine["ipc"]
    return {
        "schema_version": SCHEMA_VERSION,
        "revision": git_revision(),
        "batch_size": batch_size,
        "quick": quick,
        "engine_workers": workers,
        "workloads": matrix,
        "obs_overhead": overhead.as_dict(),
        "screening": screening,
        "headline": headline_record,
    }
