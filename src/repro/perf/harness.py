"""Benchmark harness: scalar reference vs columnar batched engines.

Every benchmark in the matrix runs the *same* trace through both engines,
asserts that the results agree exactly (a silent divergence would make the
speedup number meaningless), and reports throughput in accesses/second.

The workload matrix spans the locality spectrum:

- ``lru_stream`` (headline) — an 8-byte-stride streaming sweep, the shape
  of the paper's Rodinia kernels.  High spatial locality is where the
  columnar engine collapses best; the ≥10x target is asserted here.
- ``lru_zipf`` — hot/cold skew, the shape of pointer-heavy data accesses.
- ``lru_uniform`` — uniformly random lines: the adversarial floor, kept in
  the matrix so the trajectory records worst-case behaviour honestly.
- ``sampler_zipf`` — the full PEBS sampling pipeline (simulated L1 + period
  countdown + sample capture), scalar ``run`` vs ``run_batched``.
- ``exact_rcd`` — exact-mode RCD measurement (simulate + per-set miss
  sequences), scalar ``run`` vs ``run_batched``.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.exact import ExactRcdMeasurer
from repro.obs.manifest import git_revision
from repro.obs.overhead import measure_self_overhead
from repro.perf.schema import SCHEMA_VERSION
from repro.pmu.sampler import AddressSampler
from repro.trace.batch import DEFAULT_BATCH_SIZE, iter_batches
from repro.trace.record import MemoryAccess
from repro.trace.synthetic import uniform_trace, zipf_trace

#: The acceptance bar for the headline workload.
TARGET_SPEEDUP = 10.0

#: Accesses per cache benchmark (full / --quick).
FULL_ACCESSES = 400_000
QUICK_ACCESSES = 40_000


def stream_trace(
    count: int, *, stride: int = 8, lines: int = 8192, base: int = 0x6000_0000
) -> Iterator[MemoryAccess]:
    """Streaming stride-``stride`` sweep over a ``lines``-line footprint."""
    span = lines * 64
    for index in range(count):
        yield MemoryAccess(ip=0x400100, address=base + (index * stride) % span)


def _timed(action: Callable[[], object]) -> Tuple[float, object]:
    start = time.perf_counter()
    value = action()
    return time.perf_counter() - start, value


def _cache_bench(
    name: str, trace: List[MemoryAccess], batch_size: int
) -> dict:
    """Scalar access loop vs access_batch over prepared inputs."""
    batches = list(iter_batches(iter(trace), batch_size))
    scalar_cache = SetAssociativeCache(CacheGeometry())

    def scalar() -> dict:
        access = scalar_cache.access
        for record in trace:
            access(record.address, record.ip)
        return scalar_cache.stats.as_dict()

    batched_cache = SetAssociativeCache(CacheGeometry())

    def batched() -> dict:
        access_batch = batched_cache.access_batch
        for batch in batches:
            access_batch(batch)
        return batched_cache.stats.as_dict()

    scalar_seconds, scalar_stats = _timed(scalar)
    batched_seconds, batched_stats = _timed(batched)
    return _workload_record(
        name,
        "cache",
        len(trace),
        scalar_seconds,
        batched_seconds,
        match=scalar_stats == batched_stats,
    )


def _sampler_bench(name: str, trace: List[MemoryAccess], batch_size: int) -> dict:
    batches = list(iter_batches(iter(trace), batch_size))

    def scalar():
        return AddressSampler(geometry=CacheGeometry(), seed=29).run(iter(trace))

    def batched():
        return AddressSampler(geometry=CacheGeometry(), seed=29).run_batched(
            batches, batch_size=batch_size
        )

    scalar_seconds, scalar_result = _timed(scalar)
    batched_seconds, batched_result = _timed(batched)
    match = (
        scalar_result.samples == batched_result.samples
        and scalar_result.total_events == batched_result.total_events
        and scalar_result.total_accesses == batched_result.total_accesses
    )
    return _workload_record(
        name, "sampler", len(trace), scalar_seconds, batched_seconds, match=match
    )


def _exact_bench(name: str, trace: List[MemoryAccess], batch_size: int) -> dict:
    batches = list(iter_batches(iter(trace), batch_size))

    def scalar():
        return ExactRcdMeasurer(geometry=CacheGeometry()).run(iter(trace))

    def batched():
        return ExactRcdMeasurer(geometry=CacheGeometry()).run_batched(
            batches, batch_size=batch_size
        )

    scalar_seconds, scalar_result = _timed(scalar)
    batched_seconds, batched_result = _timed(batched)
    match = (
        scalar_result.sequences == batched_result.sequences
        and scalar_result.total_accesses == batched_result.total_accesses
    )
    return _workload_record(
        name, "exact_rcd", len(trace), scalar_seconds, batched_seconds, match=match
    )


def _workload_record(
    name: str,
    kind: str,
    accesses: int,
    scalar_seconds: float,
    batched_seconds: float,
    *,
    match: bool,
) -> dict:
    scalar_seconds = max(scalar_seconds, 1e-9)
    batched_seconds = max(batched_seconds, 1e-9)
    return {
        "name": name,
        "kind": kind,
        "accesses": accesses,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "scalar_accesses_per_sec": accesses / scalar_seconds,
        "batched_accesses_per_sec": accesses / batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "match": match,
    }


#: The headline workload the ≥10x acceptance bar applies to.
HEADLINE_WORKLOAD = "lru_stream"


def run_benchmark(
    *,
    quick: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    accesses: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full matrix; returns a schema-valid result dict.

    Args:
        quick: CI-sized run (10x fewer accesses) — same matrix, same
            divergence checks, noisier numbers.
        batch_size: Records per batch for the batched engines.
        accesses: Override the per-workload trace length.
        progress: Optional callable invoked with one line per workload.
    """
    count = accesses if accesses is not None else (
        QUICK_ACCESSES if quick else FULL_ACCESSES
    )
    say = progress or (lambda _line: None)

    matrix: List[dict] = []

    def record(entry: dict) -> None:
        matrix.append(entry)
        say(
            f"{entry['name']:12s} scalar {entry['scalar_accesses_per_sec']:>12,.0f}/s"
            f"  batched {entry['batched_accesses_per_sec']:>12,.0f}/s"
            f"  speedup {entry['speedup']:5.1f}x"
            f"  {'ok' if entry['match'] else 'DIVERGED'}"
        )

    record(
        _cache_bench(
            HEADLINE_WORKLOAD, list(stream_trace(count)), batch_size
        )
    )
    record(
        _cache_bench(
            "lru_zipf", list(zipf_trace(count, 4096, seed=5)), batch_size
        )
    )
    record(
        _cache_bench(
            "lru_uniform", list(uniform_trace(count, 4096, seed=5)), batch_size
        )
    )
    record(
        _sampler_bench(
            "sampler_zipf", list(zipf_trace(count, 4096, seed=7)), batch_size
        )
    )
    record(
        _exact_bench(
            "exact_rcd", list(stream_trace(count)), batch_size
        )
    )

    # The overhead bound is a hard CI gate, so unlike the throughput
    # matrix it is always measured at full size: quick-run timed regions
    # (~5 ms) jitter past the 5% target on a loaded machine.
    overhead = measure_self_overhead(
        accesses=max(count, FULL_ACCESSES), repeats=5, batch_size=batch_size
    )
    say(
        f"{'obs_overhead':12s} bare {overhead.bare_seconds * 1e3:>9.3f} ms"
        f"  instrumented {overhead.instrumented_seconds * 1e3:>9.3f} ms"
        f"  ratio {overhead.ratio:5.3f}"
        f"  {'ok' if overhead.within_target else 'EXCEEDS TARGET'}"
    )

    headline = next(w for w in matrix if w["name"] == HEADLINE_WORKLOAD)
    result = {
        "schema_version": SCHEMA_VERSION,
        "revision": git_revision(),
        "batch_size": batch_size,
        "quick": quick,
        "workloads": matrix,
        "obs_overhead": overhead.as_dict(),
        "headline": {
            "workload": HEADLINE_WORKLOAD,
            "speedup": headline["speedup"],
            "target_speedup": TARGET_SPEEDUP,
            "target_met": headline["speedup"] >= TARGET_SPEEDUP,
            "all_match": all(w["match"] for w in matrix),
        },
    }
    return result
