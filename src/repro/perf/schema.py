"""The ``BENCH_<revision>.json`` result schema.

One file per benchmarked revision; the collection of files is the repo's
perf trajectory.  The schema is deliberately small and validated on both
save and load so a drifting harness fails loudly instead of silently
producing unreadable artifacts.

Version 2 extends version 1 with the engine-backend matrix: every
workload record gains an ``engines`` map (one timing/match record per
registered backend, keyed by engine name), a per-workload minimum-speedup
gate (``min_speedup`` / ``gate_met``), the result gains the configured
``engine_workers``, and the headline gains a ``sharded`` sub-record
(speedup over batched, its 2x target, and whether the gate is *enforced*
— it is only meaningful on machines with enough usable CPUs).  Every v1
field is retained with its v1 meaning (``speedup`` stays batched vs
scalar), so trajectory tooling reads both versions; the reader accepts
v1 files as-is.

Since the shared-memory data plane (PR 8), parallel engine entries and
the headline ``sharded`` record may additionally carry an *optional*
``ipc`` sub-record (:data:`_ENGINE_IPC_FIELDS`) measuring transport
cost; the version stays 2 and pre-arena v2 artifacts load unchanged.
Likewise, since the analytical screen landed a result may carry an
optional top-level ``screening`` record (:data:`_SCREENING_FIELDS`) —
screen time vs the simulation time a ``clear`` verdict saves.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ReproError

#: Bumped on any incompatible change to the result layout.  Readers
#: accept all versions in :data:`SUPPORTED_VERSIONS`.
SCHEMA_VERSION = 2

#: Versions :func:`validate_result` understands.
SUPPORTED_VERSIONS = frozenset({1, 2})

PathLike = Union[str, Path]


class BenchSchemaError(ReproError):
    """A benchmark result violated the BENCH_*.json schema."""


#: Required top-level fields and their types.
_TOP_FIELDS = {
    "schema_version": int,
    "revision": str,
    "batch_size": int,
    "quick": bool,
    "workloads": list,
    "headline": dict,
}

#: Required per-workload fields and their types.
_WORKLOAD_FIELDS = {
    "name": str,
    "kind": str,
    "accesses": int,
    "scalar_seconds": float,
    "batched_seconds": float,
    "scalar_accesses_per_sec": float,
    "batched_accesses_per_sec": float,
    "speedup": float,
    "match": bool,
}

#: Required headline fields and their types.
_HEADLINE_FIELDS = {
    "workload": str,
    "speedup": float,
    "target_speedup": float,
    "target_met": bool,
    "all_match": bool,
}

#: v2 additions ----------------------------------------------------------

#: Extra required top-level fields in a v2 result.
_TOP_FIELDS_V2 = {
    "engine_workers": int,
}

#: Extra required per-workload fields in a v2 result.
_WORKLOAD_FIELDS_V2 = {
    "engines": dict,
    "min_speedup": float,
    "gate_met": bool,
}

#: Required fields of one per-engine record inside ``engines``.
#: (Parallel engines additionally carry ``workers``; optional.)
_ENGINE_FIELDS = {
    "seconds": float,
    "accesses_per_sec": float,
    "speedup": float,
    "match": bool,
}

#: Fields of the optional ``ipc`` sub-record a parallel engine entry (and
#: the headline's ``sharded`` record) may carry since the shared-memory
#: data plane landed: exact control-pipe bytes moved during the run,
#: arena bytes mapped, and the shipped-bytes-per-access ratio the CI
#: perf-smoke gate compares against the pre-arena pipe baseline.
#: Pre-arena v2 artifacts without it remain valid.
_ENGINE_IPC_FIELDS = {
    "bytes_shipped": int,
    "bytes_mapped": int,
    "bytes_shipped_per_access": float,
}

#: Fields of the headline's ``sharded`` sub-record (optional: absent when
#: the sharded backend was not in the benched engine set).
_SHARDED_HEADLINE_FIELDS = {
    "workers": int,
    "speedup_vs_batched": float,
    "target": float,
    "target_met": bool,
    "enforced": bool,
}

#: Fields of the optional ``screening`` record (the analytical screen's
#: cost vs the simulation it can skip; absent from pre-screen artifacts,
#: which stay valid).  ``screen_seconds`` is one cold screen of the
#: workload (model build + passes); ``simulate_seconds`` is the full
#: dynamic profile+analyze run it replaces on a ``clear`` verdict;
#: ``speedup`` is their ratio — the per-request saving of the
#: "predict-cheap, simulate-only-suspects" fleet path.
_SCREENING_FIELDS = {
    "workload": str,
    "verdict": str,
    "screen_seconds": float,
    "simulate_seconds": float,
    "speedup": float,
}

#: Fields of the optional ``obs_overhead`` record (self-overhead of the
#: observability layer; absent from pre-obs artifacts, which stay valid).
_OBS_OVERHEAD_FIELDS = {
    "workload": str,
    "accesses": int,
    "repeats": int,
    "bare_seconds": float,
    "instrumented_seconds": float,
    "ratio": float,
    "overhead": float,
    "target": float,
    "within_target": bool,
}


def _check_fields(record: dict, fields: dict, where: str) -> None:
    for name, expected in fields.items():
        if name not in record:
            raise BenchSchemaError(f"{where}: missing field {name!r}")
        value = record[name]
        # bool is an int subclass; keep the two distinct in the schema.
        if expected is int and isinstance(value, bool):
            raise BenchSchemaError(f"{where}: field {name!r} must be int, got bool")
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            continue  # whole-number floats serialize as ints; accept them
        if not isinstance(value, expected):
            raise BenchSchemaError(
                f"{where}: field {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )


def validate_result(result: dict) -> dict:
    """Check a result dict against the schema; returns it for chaining."""
    if not isinstance(result, dict):
        raise BenchSchemaError(f"result must be a dict, got {type(result).__name__}")
    _check_fields(result, _TOP_FIELDS, "result")
    version = result["schema_version"]
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_VERSIONS))
        raise BenchSchemaError(
            f"unsupported schema_version {version} "
            f"(this reader understands {supported})"
        )
    if version >= 2:
        _check_fields(result, _TOP_FIELDS_V2, "result")
    if not result["workloads"]:
        raise BenchSchemaError("result: workloads list is empty")
    for index, workload in enumerate(result["workloads"]):
        if not isinstance(workload, dict):
            raise BenchSchemaError(f"workloads[{index}]: must be a dict")
        _check_fields(workload, _WORKLOAD_FIELDS, f"workloads[{index}]")
        if version >= 2:
            _check_fields(
                workload, _WORKLOAD_FIELDS_V2, f"workloads[{index}]"
            )
            engines = workload["engines"]
            if not engines:
                raise BenchSchemaError(
                    f"workloads[{index}]: engines map is empty"
                )
            for engine_name, record in engines.items():
                where = f"workloads[{index}].engines[{engine_name!r}]"
                if not isinstance(record, dict):
                    raise BenchSchemaError(f"{where}: must be a dict")
                _check_fields(record, _ENGINE_FIELDS, where)
                if "ipc" in record:
                    if not isinstance(record["ipc"], dict):
                        raise BenchSchemaError(f"{where}.ipc: must be a dict")
                    _check_fields(record["ipc"], _ENGINE_IPC_FIELDS, f"{where}.ipc")
    _check_fields(result["headline"], _HEADLINE_FIELDS, "headline")
    if version >= 2 and "sharded" in result["headline"]:
        sharded = result["headline"]["sharded"]
        if not isinstance(sharded, dict):
            raise BenchSchemaError("headline.sharded: must be a dict")
        _check_fields(sharded, _SHARDED_HEADLINE_FIELDS, "headline.sharded")
        if "ipc" in sharded:
            if not isinstance(sharded["ipc"], dict):
                raise BenchSchemaError("headline.sharded.ipc: must be a dict")
            _check_fields(
                sharded["ipc"], _ENGINE_IPC_FIELDS, "headline.sharded.ipc"
            )
    if "obs_overhead" in result:
        if not isinstance(result["obs_overhead"], dict):
            raise BenchSchemaError("obs_overhead: must be a dict")
        _check_fields(result["obs_overhead"], _OBS_OVERHEAD_FIELDS, "obs_overhead")
    if "screening" in result:
        if not isinstance(result["screening"], dict):
            raise BenchSchemaError("screening: must be a dict")
        _check_fields(result["screening"], _SCREENING_FIELDS, "screening")
    names = [workload["name"] for workload in result["workloads"]]
    if result["headline"]["workload"] not in names:
        raise BenchSchemaError(
            f"headline workload {result['headline']['workload']!r} "
            "not in the workload list"
        )
    return result


def result_filename(revision: str) -> str:
    """Canonical artifact name for one revision."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in revision)
    return f"BENCH_{safe or 'unknown'}.json"


def save_result(result: dict, directory: PathLike = ".") -> Path:
    """Validate and write one result (creating the directory if needed);
    returns the path written."""
    validate_result(result)
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / result_filename(result["revision"])
    with open(path, "w", encoding="ascii") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_result(path: PathLike) -> dict:
    """Read and validate one result file."""
    try:
        with open(path, "r", encoding="ascii") as handle:
            result = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchSchemaError(f"{path}: unreadable benchmark result: {exc}") from exc
    return validate_result(result)
