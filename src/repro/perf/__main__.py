"""``python -m repro.perf`` — run the benchmark matrix and record it.

Writes ``BENCH_<revision>.json`` plus a ``MANIFEST_<revision>.json`` run
manifest into ``--out`` (default: the current directory) and prints the
engine-backend matrix.  Exit status:

- 0 — ran; every backend agreed with the scalar reference on every
  workload (and, for full runs, every gate held).
- 1 — backend divergence from the scalar reference: a correctness bug.
- 2 — harness/schema error.
- 3 — full (non ``--quick``) run missed a speedup gate: a per-workload
  minimum-speedup floor, the headline target, or the sharded-vs-batched
  target where it is enforced (hosts with enough usable CPUs).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import backend_names
from repro.errors import ReproError
from repro.obs.manifest import RunManifest
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.perf.harness import DEFAULT_WORKERS, TARGET_SPEEDUP, run_benchmark
from repro.perf.schema import save_result
from repro.trace.batch import DEFAULT_BATCH_SIZE


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the engine backends; record the trajectory.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: 10x fewer accesses, same divergence checks, "
             "speedup gates reported but not enforced",
    )
    parser.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory to write BENCH_<revision>.json into (default: .)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        metavar="N",
        help=f"records per batch (default: {DEFAULT_BATCH_SIZE})",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        metavar="N",
        help="override per-workload trace length",
    )
    parser.add_argument(
        "--engines",
        choices=backend_names(),
        nargs="+",
        default=None,
        metavar="NAME",
        help="backends to bench (default: all registered; scalar and "
             "batched are always included)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        metavar="N",
        help=f"worker processes for parallel backends (default: {DEFAULT_WORKERS})",
    )
    args = parser.parse_args(argv)

    try:
        result = run_benchmark(
            quick=args.quick,
            batch_size=args.batch_size,
            accesses=args.accesses,
            progress=lambda line: print(line, flush=True),
            engines=args.engines,
            workers=args.workers,
        )
        path = save_result(result, args.out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    manifest = RunManifest(
        command="perf",
        workload="matrix",
        revision=result["revision"],
        config={
            "quick": args.quick,
            "batch_size": args.batch_size,
            "accesses": args.accesses,
            "engines": list(args.engines) if args.engines else None,
            "workers": args.workers,
        },
        stage_timings=get_tracer().stage_timings(),
        metrics=get_registry().snapshot(),
        outputs={"bench": str(path)},
    )
    manifest_path = manifest.save(
        Path(args.out) / f"MANIFEST_{result['revision']}.json"
    )

    headline = result["headline"]
    overhead = result["obs_overhead"]
    print(
        f"headline {headline['workload']}: {headline['speedup']:.1f}x "
        f"(target {TARGET_SPEEDUP:.0f}x, "
        f"{'met' if headline['target_met'] else 'NOT met'})"
    )
    sharded = headline.get("sharded")
    if sharded is not None:
        print(
            f"sharded vs batched: {sharded['speedup_vs_batched']:.2f}x with "
            f"{sharded['workers']} workers (target {sharded['target']:.0f}x, "
            f"{'met' if sharded['target_met'] else 'NOT met'}, "
            f"{'enforced' if sharded['enforced'] else 'not enforced on this host'})"
        )
    missed_gates = [
        f"{workload['name']} {workload['speedup']:.1f}x < "
        f"{workload['min_speedup']:.1f}x floor"
        for workload in result["workloads"]
        if not workload["gate_met"]
    ]
    for line in missed_gates:
        print(f"gate MISSED: {line}")
    print(
        f"obs overhead: {overhead['overhead']:+.2%} "
        f"(target <{overhead['target']:.0%}, "
        f"{'ok' if overhead['within_target'] else 'EXCEEDED'})"
    )
    print(f"wrote {path}")
    print(f"wrote {manifest_path}")
    if not headline["all_match"]:
        print(
            "error: an engine backend diverged from the scalar reference",
            file=sys.stderr,
        )
        return 1
    if not args.quick:
        gates_failed = bool(missed_gates) or not headline["target_met"]
        if sharded is not None and sharded["enforced"]:
            gates_failed = gates_failed or not sharded["target_met"]
        if gates_failed:
            print("error: speedup gate(s) missed on a full run", file=sys.stderr)
            return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
