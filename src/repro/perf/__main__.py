"""``python -m repro.perf`` — run the benchmark matrix and record it.

Writes ``BENCH_<revision>.json`` plus a ``MANIFEST_<revision>.json`` run
manifest into ``--out`` (default: the current directory) and prints the
matrix.  Exit status:

- 0 — ran, engines agreed on every workload.
- 1 — batch/scalar divergence (the results differ: a correctness bug).
- 2 — harness/schema error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.obs.manifest import RunManifest
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.perf.harness import TARGET_SPEEDUP, run_benchmark
from repro.perf.schema import save_result
from repro.trace.batch import DEFAULT_BATCH_SIZE


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the scalar vs batched engines; record the trajectory.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: 10x fewer accesses, same divergence checks",
    )
    parser.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory to write BENCH_<revision>.json into (default: .)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        metavar="N",
        help=f"records per batch (default: {DEFAULT_BATCH_SIZE})",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        metavar="N",
        help="override per-workload trace length",
    )
    args = parser.parse_args(argv)

    try:
        result = run_benchmark(
            quick=args.quick,
            batch_size=args.batch_size,
            accesses=args.accesses,
            progress=lambda line: print(line, flush=True),
        )
        path = save_result(result, args.out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    manifest = RunManifest(
        command="perf",
        workload="matrix",
        revision=result["revision"],
        config={
            "quick": args.quick,
            "batch_size": args.batch_size,
            "accesses": args.accesses,
        },
        stage_timings=get_tracer().stage_timings(),
        metrics=get_registry().snapshot(),
        outputs={"bench": str(path)},
    )
    manifest_path = manifest.save(
        Path(args.out) / f"MANIFEST_{result['revision']}.json"
    )

    headline = result["headline"]
    overhead = result["obs_overhead"]
    print(
        f"headline {headline['workload']}: {headline['speedup']:.1f}x "
        f"(target {TARGET_SPEEDUP:.0f}x, "
        f"{'met' if headline['target_met'] else 'NOT met'})"
    )
    print(
        f"obs overhead: {overhead['overhead']:+.2%} "
        f"(target <{overhead['target']:.0%}, "
        f"{'ok' if overhead['within_target'] else 'EXCEEDED'})"
    )
    print(f"wrote {path}")
    print(f"wrote {manifest_path}")
    if not headline["all_match"]:
        print(
            "error: batched engine diverged from the scalar reference",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
