"""Optimization guidance: turning conflict reports into transformations.

The paper fixes every case study by hand — row padding for NW, ADI, FFT,
Tiny-DNN and HimenoBMT; a loop-order change for Kripke — guided by CCProf's
code- and data-centric reports.  This package automates the guidance step:

- :mod:`repro.optimize.padding_advisor` — given the geometry and an array's
  layout, recommend the smallest row pad that de-aliases consecutive rows;
  given a conflict report, rank which arrays to pad.
- :mod:`repro.optimize.layout` — detect large-constant-stride access (the
  Kripke signature) and recommend a loop-order / layout change instead of a
  pad.
"""

from repro.optimize.padding_advisor import (
    PaddingRecommendation,
    advise_padding,
    recommend_pads_for_report,
)
from repro.optimize.layout import StrideDiagnosis, diagnose_stride

__all__ = [
    "PaddingRecommendation",
    "advise_padding",
    "recommend_pads_for_report",
    "StrideDiagnosis",
    "diagnose_stride",
]
