"""Stride diagnosis: when padding is the wrong fix.

Kripke's conflict (§6.5) is not a row-pitch accident — the loop nest walks
the innermost dimension of a 3-D array with a huge constant stride, and the
right fix is reordering the loops (or transposing the layout).  This module
looks at the sampled effective addresses of one loop and diagnoses whether
the dominant pattern is a large constant stride, so the advisor can steer
between "pad the rows" and "reorder the loops".
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.geometry import CacheGeometry


@dataclass(frozen=True)
class StrideDiagnosis:
    """Outcome of stride analysis on one loop's sampled addresses.

    Attributes:
        dominant_stride: The most common inter-sample address delta, or
            None when no non-zero delta repeats.
        dominant_share: Fraction of deltas equal to the dominant stride.
        sets_covered: Distinct cache sets a walk at that stride visits.
        aliases_sets: True when the walk covers no more sets than the
            associativity — the guaranteed-conflict condition.
        recommendation: ``"pad-rows"`` for pitch-scale aliasing strides,
            ``"reorder-loops"`` for much larger ones, ``"none"`` otherwise.
    """

    dominant_stride: Optional[int]
    dominant_share: float
    sets_covered: int
    aliases_sets: bool
    recommendation: str


def sets_covered_by_stride(stride: int, geometry: CacheGeometry) -> int:
    """Distinct cache sets visited by an unbounded walk at ``stride``.

    The walk's addresses modulo the mapping period are multiples of
    ``g = gcd(stride, period)``; they hit every set when ``g`` divides the
    line size, and only ``period / g`` sets when ``g`` is a whole number of
    lines.
    """
    period = geometry.mapping_period
    step = abs(stride) % period
    if step == 0:
        return 1
    g = math.gcd(step, period)
    if g <= geometry.line_size:
        return geometry.num_sets
    return period // g


def diagnose_stride(
    addresses: Sequence[int],
    geometry: CacheGeometry = CacheGeometry(),
    *,
    row_pitch_hint: Optional[int] = None,
    min_share: float = 0.4,
) -> StrideDiagnosis:
    """Diagnose the dominant access stride of a loop.

    Args:
        addresses: Sampled (or full) effective addresses, in time order.
        geometry: Cache geometry for the aliasing test.
        row_pitch_hint: The implicated array's row pitch, if known: a
            dominant stride comparable to it is a column walk fixable by
            padding; a stride orders of magnitude larger is a layout/loop
            order problem.
        min_share: Minimum share for a delta to count as dominant.
    """
    if len(addresses) < 3:
        return StrideDiagnosis(None, 0.0, geometry.num_sets, False, "none")
    deltas = Counter(
        addresses[index + 1] - addresses[index] for index in range(len(addresses) - 1)
    )
    deltas.pop(0, None)  # repeated samples on one address carry no stride info
    if not deltas:
        return StrideDiagnosis(None, 0.0, geometry.num_sets, False, "none")
    stride, count = deltas.most_common(1)[0]
    share = count / (len(addresses) - 1)
    covered = sets_covered_by_stride(stride, geometry)
    aliases = covered <= geometry.ways
    if share < min_share or not aliases:
        return StrideDiagnosis(stride, share, covered, aliases and share >= min_share, "none")
    pitch_scale = row_pitch_hint if row_pitch_hint is not None else geometry.mapping_period
    recommendation = "pad-rows" if abs(stride) <= 4 * pitch_scale else "reorder-loops"
    return StrideDiagnosis(stride, share, covered, True, recommendation)
