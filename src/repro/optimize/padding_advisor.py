"""Padding recommendations from conflict reports.

Closes the loop the paper leaves to the programmer: CCProf names the loop
and the data structure; the advisor computes how many bytes of row padding
de-alias that structure's rows with respect to the cache geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.report import ConflictReport
from repro.errors import AnalysisError
from repro.workloads.base import Array2D
from repro.workloads.padding import recommend_row_pad, row_set_stride, rows_per_set_cycle


@dataclass(frozen=True)
class PaddingRecommendation:
    """Advice for one array.

    Attributes:
        label: The array's allocation label.
        pad_bytes: Recommended row padding (0 = layout already fine).
        current_cycle: Rows before set phases repeat, before padding.
        padded_cycle: Same after padding.
        reason: Human-readable justification.
    """

    label: str
    pad_bytes: int
    current_cycle: int
    padded_cycle: int
    reason: str

    @property
    def is_needed(self) -> bool:
        """Whether any padding is actually recommended."""
        return self.pad_bytes > 0


def advise_padding(
    array: Array2D,
    geometry: CacheGeometry = CacheGeometry(),
    alignment: int = 8,
) -> PaddingRecommendation:
    """Recommend a row pad for one 2-D array.

    The recommendation targets the condition that defeats column-walk
    conflicts: consecutive row bases should cycle through at least
    ``num_sets`` distinct line phases before repeating.
    """
    current_cycle = rows_per_set_cycle(array.pitch, geometry)
    full_cycle_lines = geometry.num_sets
    if current_cycle * geometry.line_size >= geometry.mapping_period:
        return PaddingRecommendation(
            label=array.allocation.label,
            pad_bytes=0,
            current_cycle=current_cycle,
            padded_cycle=current_cycle,
            reason=(
                f"rows already cycle {current_cycle} phases "
                f"(>= {full_cycle_lines} sets); no pad needed"
            ),
        )
    pad = recommend_row_pad(array.cols, array.elem_size, geometry, alignment=alignment)
    extra = pad - array.pad_bytes
    if extra <= 0:
        # The array is already padded at least as much as we would suggest;
        # recompute relative to its actual pitch.
        extra = _smallest_extra_pad(array.pitch, geometry, alignment)
    padded_cycle = rows_per_set_cycle(array.pitch + extra, geometry)
    stride = row_set_stride(array.pitch, geometry)
    return PaddingRecommendation(
        label=array.allocation.label,
        pad_bytes=extra,
        current_cycle=current_cycle,
        padded_cycle=padded_cycle,
        reason=(
            f"pitch {array.pitch} advances {stride:.2f} sets/row and repeats "
            f"after {current_cycle} rows; +{extra} B reaches {padded_cycle} phases"
        ),
    )


def _smallest_extra_pad(pitch: int, geometry: CacheGeometry, alignment: int) -> int:
    for extra in range(alignment, geometry.mapping_period + 1, alignment):
        if rows_per_set_cycle(pitch + extra, geometry) * geometry.line_size >= (
            geometry.mapping_period
        ):
            return extra
    raise AnalysisError(f"no pad within one mapping period fixes pitch {pitch}")


def recommend_pads_for_report(
    report: ConflictReport,
    arrays: List[Array2D],
    geometry: CacheGeometry = CacheGeometry(),
    alignment: int = 8,
) -> List[PaddingRecommendation]:
    """Advise pads for the arrays implicated in a conflict report.

    Args:
        report: The analyzer's output.
        arrays: The candidate arrays (workload's 2-D allocations).
        geometry: Cache geometry the report was measured against.
        alignment: Pad granularity in bytes.

    Returns:
        One recommendation per implicated array, ordered by how many
        conflicting samples the report attributes to it.
    """
    implicated: List[str] = []
    for loop in report.conflicting_loops():
        for structure in loop.data_structures:
            if structure.label not in implicated:
                implicated.append(structure.label)
    by_label = {array.allocation.label: array for array in arrays}
    recommendations: List[PaddingRecommendation] = []
    for label in implicated:
        array = by_label.get(label)
        if array is None:
            continue  # scalar / 1-D / unknown structure: padding rows is moot
        recommendations.append(advise_padding(array, geometry, alignment=alignment))
    return recommendations
