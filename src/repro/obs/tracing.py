"""Span tracing: nested, timed stages with attributes.

The pipeline wraps each stage in ``with tracer.span("simulate",
workload=...)``; finished spans form a forest that can be rendered as a
tree (``ccprof`` verbose output, ``ccprof inspect``) or exported as JSONL
for machine consumption.  "Observing the Invisible" argues profilers
should be inspectable in flight, not only post-mortem — the tracer is that
hook for this reproduction.

A **disabled** tracer's :meth:`Tracer.span` returns one shared null
context manager, so tracing a stage in disabled mode costs a single
method call and no allocation.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

#: Cap on retained *root* spans: the global tracer lives for the whole
#: process, so an unbounded span log would be a slow leak.  Oldest roots
#: are dropped first; the drop count is reported in render()/export.
MAX_ROOT_SPANS = 512


class Span:
    """One finished (or in-flight) timed stage.

    Attributes:
        name: Stage name, e.g. ``"simulate"``.
        attributes: Key/value annotations given at creation or via
            :meth:`annotate`.
        start: Clock reading at entry.
        end: Clock reading at exit (None while in flight).
        children: Nested spans, in entry order.
        status: ``"ok"``, or ``"error"`` when the body raised.
        error: ``repr`` of the exception that escaped the body (if any).
    """

    __slots__ = (
        "name", "attributes", "start", "end", "children", "status", "error"
    )

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.status = "ok"
        self.error: Optional[str] = None

    @property
    def duration(self) -> float:
        """Wall seconds from entry to exit (0.0 while in flight)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attributes: object) -> None:
        """Attach further attributes to an open span."""
        self.attributes.update(attributes)

    def walk(self, depth: int = 0) -> Iterator[tuple]:
        """Yield ``(span, depth)`` depth-first over this subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def as_dict(self, depth: int = 0) -> Dict[str, object]:
        """One JSONL record for this span (children counted, not inlined)."""
        return {
            "name": self.name,
            "depth": depth,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
            "children": len(self.children),
        }


class _ActiveSpan:
    """Context manager that opens a :class:`Span` on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None:
            self._span.status = "error"
            self._span.error = repr(exc)
        self._tracer._pop(self._span)
        return False


class _NullSpan:
    """Shared no-op span context returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:  # noqa: ARG002
        return False

    def annotate(self, **attributes: object) -> None:  # noqa: ARG002
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested, timed spans; keeps the finished forest.

    Args:
        enabled: When False, :meth:`span` returns a shared null context
            manager and nothing is recorded.
        clock: Monotonic time source (injectable for deterministic tests).
        max_roots: Retained root-span cap (oldest dropped first).
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        max_roots: int = MAX_ROOT_SPANS,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.max_roots = max_roots
        self.roots: List[Span] = []
        self.dropped_roots = 0
        self._stack: List[Span] = []
        self._drop_warned = False

    def span(
        self, name: str, **attributes: object
    ) -> Union[_ActiveSpan, _NullSpan]:
        """A context manager timing one stage (nested under any open span)."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, Span(name, attributes))

    # -- stack maintenance (called by _ActiveSpan) ---------------------

    def _push(self, span: Span) -> None:
        span.start = self.clock()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        # Exceptions unwind spans strictly LIFO through __exit__, so the
        # top of stack is always the span being closed.
        self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
            overflow = len(self.roots) - self.max_roots
            if overflow > 0:
                del self.roots[:overflow]
                self.dropped_roots += overflow
                # Dropping history must never be silent: long-running
                # processes (the service daemon, streaming analysis) hit
                # the cap routinely, and a truncated span forest would
                # otherwise masquerade as the whole story.
                from repro.obs.metrics import get_registry

                get_registry().counter("obs.trace.roots_dropped").inc(overflow)
                if not self._drop_warned:
                    self._drop_warned = True
                    warnings.warn(
                        f"tracer root-span cap ({self.max_roots}) reached; "
                        "oldest spans are being dropped "
                        "(obs.trace.roots_dropped counts them)",
                        RuntimeWarning,
                        stacklevel=4,
                    )

    # -- queries -------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Forget every finished root span (open spans are untouched)."""
        self.roots.clear()
        self.dropped_roots = 0
        self._drop_warned = False

    def stage_timings(self) -> Dict[str, float]:
        """Total wall seconds per span name, over the whole forest.

        This is the ``stage_timings`` section of a
        :class:`~repro.obs.manifest.RunManifest`: nested spans are counted
        under their own name, so ``simulate`` time is *included* in its
        parent ``profile`` time, mirroring the tree rendering.
        """
        totals: Dict[str, float] = {}
        for root in self.roots:
            for span, _depth in root.walk():
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def render(self) -> str:
        """The span forest as an indented tree with durations."""
        lines: List[str] = []
        if self.dropped_roots:
            lines.append(f"({self.dropped_roots} older spans dropped)")
        for root in self.roots:
            for span, depth in root.walk():
                attributes = " ".join(
                    f"{key}={value}"
                    for key, value in sorted(span.attributes.items())
                )
                flag = "" if span.status == "ok" else f"  ERROR {span.error}"
                lines.append(
                    f"{'  ' * depth}{span.name:<{max(28 - 2 * depth, 1)}} "
                    f"{span.duration * 1e3:9.3f} ms"
                    + (f"  {attributes}" if attributes else "")
                    + flag
                )
        if not lines:
            return "(no spans recorded)"
        return "\n".join(lines)

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write one JSON record per span, depth-first; returns the count."""
        count = 0
        with open(path, "w", encoding="ascii") as handle:
            for root in self.roots:
                for span, depth in root.walk():
                    handle.write(
                        json.dumps(span.as_dict(depth), sort_keys=True) + "\n"
                    )
                    count += 1
        return count


#: The always-disabled tracer: install it to compile spans down to a
#: shared null context manager.
NULL_TRACER = Tracer(enabled=False)

_default_tracer = Tracer(enabled=True)
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer instrumented code opens spans on."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global default; returns the
    previous one so callers can restore it."""
    global _default_tracer
    with _tracer_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` (the test-injection hook)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
