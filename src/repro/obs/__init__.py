"""``repro.obs`` — the pipeline's own observability layer.

Metrics (:mod:`repro.obs.metrics`), span tracing
(:mod:`repro.obs.tracing`), run manifests (:mod:`repro.obs.manifest`),
CLI event logging (:mod:`repro.obs.logging`), and self-overhead
accounting (:mod:`repro.obs.overhead`).

Design contract, enforced by tests and the perf harness:

- **off-by-default-cheap** — a disabled registry hands out no-op
  instruments, a disabled tracer's spans are one shared null context
  manager, and hot engines only ever record per-batch or per-run
  aggregates;
- the *enabled* default layer must cost < 5% on the ``lru_stream``
  perf headline (``ccprof profile lru_stream --self-overhead``);
- with the null registry/tracer installed the pipeline's outputs are
  bit-for-bit identical to an uninstrumented build.
"""

from repro.obs.logging import CliLogger
from repro.obs.manifest import ManifestError, RunManifest, git_revision
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.overhead import (
    OVERHEAD_TARGET,
    OverheadReport,
    measure_self_overhead,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CliLogger",
    "Counter",
    "Gauge",
    "Histogram",
    "ManifestError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "OVERHEAD_TARGET",
    "OverheadReport",
    "RunManifest",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "git_revision",
    "measure_self_overhead",
    "set_registry",
    "set_tracer",
    "use_registry",
    "use_tracer",
]
