"""CLI event logging on top of the obs layer.

``ccprof`` historically printed bare status lines.  :class:`CliLogger`
keeps that exact stdout contract by default while making every line a
*named event* that can be:

- suppressed (``--quiet`` keeps results and warnings only),
- augmented (``--verbose`` adds detail events: stage timings, metric
  snapshots), or
- machine-read (``--log-json`` renders each event as one JSON object per
  line instead of prose).

Levels, lowest to highest: ``detail`` < ``info`` < ``result`` <
``warning``.  Default verbosity shows ``info`` and above; ``--quiet``
shows ``result`` and above; ``--verbose`` shows everything.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Dict, Optional

#: Event levels in ascending severity order.
_LEVELS: Dict[str, int] = {"detail": 0, "info": 1, "result": 2, "warning": 3}


class CliLogger:
    """Verbosity-aware, optionally machine-readable event stream.

    Args:
        verbosity: -1 (``--quiet``), 0 (default), or 1 (``--verbose``).
        json_mode: Emit one JSON object per event instead of plain text.
        stream: Output stream (stdout by default; injectable for tests).
    """

    def __init__(
        self,
        verbosity: int = 0,
        json_mode: bool = False,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.verbosity = verbosity
        self.json_mode = json_mode
        self.stream = stream if stream is not None else sys.stdout
        # --quiet raises the floor to "result"; --verbose lowers it to
        # "detail"; default shows "info" and above.
        self._floor = 1 - max(-1, min(1, verbosity))

    @classmethod
    def from_args(cls, args: object) -> "CliLogger":
        """Build from parsed CLI args (``--verbose/--quiet/--log-json``)."""
        verbosity = 0
        if getattr(args, "verbose", False):
            verbosity = 1
        elif getattr(args, "quiet", False):
            verbosity = -1
        return cls(
            verbosity=verbosity,
            json_mode=bool(getattr(args, "log_json", False)),
        )

    def visible(self, level: str) -> bool:
        """Whether events of ``level`` pass the verbosity floor."""
        return _LEVELS.get(level, 1) >= self._floor

    def emit(
        self,
        event: str,
        message: str = "",
        level: str = "info",
        **fields: object,
    ) -> None:
        """Emit one named event.

        In text mode, visible events print ``message`` exactly (keeping
        the historical stdout stable); in JSON mode every visible event
        becomes ``{"event": ..., "level": ..., "message": ..., **fields}``.
        """
        if not self.visible(level):
            return
        if self.json_mode:
            record = {"event": event, "level": level}
            if message:
                record["message"] = message
            record.update(fields)
            print(json.dumps(record, sort_keys=True), file=self.stream)
        elif message:
            print(message, file=self.stream)

    # -- level shorthands ----------------------------------------------

    def detail(self, event: str, message: str = "", **fields: object) -> None:
        """Verbose-only diagnostics (timings, metric snapshots)."""
        self.emit(event, message, level="detail", **fields)

    def info(self, event: str, message: str = "", **fields: object) -> None:
        """Default status lines (hidden by ``--quiet``)."""
        self.emit(event, message, level="info", **fields)

    def result(self, event: str, message: str = "", **fields: object) -> None:
        """Primary outputs (reports); survive ``--quiet``."""
        self.emit(event, message, level="result", **fields)

    def warning(self, event: str, message: str = "", **fields: object) -> None:
        """Degradations worth surfacing even in quiet mode."""
        self.emit(event, message, level="warning", **fields)
