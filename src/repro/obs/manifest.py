"""Run manifests: the self-describing record of one pipeline run.

Every ``ccprof profile``/``ccprof analyze`` invocation can leave behind a
small JSON manifest capturing *how* the run was produced — configuration,
cache geometry, seed, git revision — and *how it went* — per-stage wall
timings (from the span tracer), a metrics snapshot (from the registry),
and the report's data-quality section.  ``ccprof inspect <manifest>``
renders one back as text.

The manifest is the linkage layer: a ``*result`` report file, a sample
log, and a BENCH artifact each tell part of the story; the manifest next
to them says which config, code revision, and channel health produced
all three.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError

#: Bumped on any incompatible change to the manifest layout.
MANIFEST_VERSION = 1

#: Bumped on any incompatible change to the ``timeline`` section layout
#: (the streaming windowed analysis writes it; see
#: :meth:`repro.core.streaming.StreamingAnalysis.timeline_record`).
TIMELINE_VERSION = 1

#: Required / optional keys of the ``timeline`` section (strict: anything
#: else is rejected, like the manifest's own top level).
_TIMELINE_REQUIRED = {
    "version": int,
    "window": int,
    "min_window": int,
    "rcd_threshold": int,
    "cf_boundary": (int, float),
    "engine": str,
    "total_samples": int,
    "conflict_fraction": (int, float),
    "transitions": list,
    "coalesced": bool,
    "windows": list,
}
_TIMELINE_OPTIONAL = {
    "fallback_from": str,
}

#: Per-window record keys inside ``timeline["windows"]``.
_TIMELINE_WINDOW_FIELDS = {
    "index": int,
    "first_sample": int,
    "samples": int,
    "cf": (int, float),
    "conflict": bool,
    "victim_sets": list,
    "rcd_observations": int,
    "short_rcds": int,
    "sets_touched": int,
    "merged_from": int,
}

PathLike = Union[str, Path]


class ManifestError(ReproError):
    """A run manifest was unreadable or violated the schema."""

    code = "manifest"
    exit_code = 11


def git_revision() -> str:
    """Short revision of the working tree; ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"


def _check_fields(
    record: Dict[str, object],
    required: Dict[str, object],
    optional: Dict[str, object],
    label: str,
) -> None:
    """Strict field check shared by the timeline validators."""
    unknown = set(record) - set(required) - set(optional)
    if unknown:
        raise ManifestError(
            f"{label} has unknown fields: {', '.join(sorted(unknown))}"
        )
    for name, kind in required.items():
        if name not in record:
            raise ManifestError(f"{label} missing required field '{name}'")
        if not isinstance(record[name], kind) or (
            isinstance(record[name], bool) and kind is int
        ):
            raise ManifestError(
                f"{label} field '{name}' has wrong type "
                f"{type(record[name]).__name__}"
            )
    for name, kind in optional.items():
        if name in record and not isinstance(record[name], kind):
            raise ManifestError(
                f"{label} field '{name}' has wrong type "
                f"{type(record[name]).__name__}"
            )


def validate_timeline(timeline: object) -> Dict[str, object]:
    """Check a manifest ``timeline`` section against the strict schema.

    Returns the validated section; raises :class:`ManifestError` on any
    layout violation (wrong version, missing/unknown/mistyped fields —
    at the top level or inside any window record).
    """
    if not isinstance(timeline, dict):
        raise ManifestError(
            f"timeline must be a JSON object, got {type(timeline).__name__}"
        )
    version = timeline.get("version")
    if version != TIMELINE_VERSION:
        raise ManifestError(
            f"unsupported timeline version {version!r} "
            f"(this reader understands {TIMELINE_VERSION})"
        )
    _check_fields(timeline, _TIMELINE_REQUIRED, _TIMELINE_OPTIONAL, "timeline")
    for position, window in enumerate(timeline["windows"]):
        if not isinstance(window, dict):
            raise ManifestError(
                f"timeline window {position} must be an object, "
                f"got {type(window).__name__}"
            )
        _check_fields(
            window, _TIMELINE_WINDOW_FIELDS, {}, f"timeline window {position}"
        )
    return timeline


@dataclass
class RunManifest:
    """Everything needed to understand (and re-run) one pipeline run.

    Attributes:
        command: The verb that produced the run (``profile``, ``analyze``,
            ``perf`` ...).
        workload: Workload spec as given (``adi:optimized``).
        engine: ``batched`` or ``scalar``.
        seed: Sampler RNG seed.
        period: Mean sampling period.
        geometry: ``{"num_sets", "ways", "line_size"}`` of the profiled L1.
        revision: Git revision of the tree that ran.
        created: Unix timestamp of manifest creation.
        config: Remaining knobs (strictness, injection spec, budgets...).
        stage_timings: Wall seconds per pipeline stage, from the tracer.
        metrics: Registry snapshot (counters/gauges/histograms).
        data_quality: The report's DataQuality section as a dict.
        sampling: Run totals (samples/events/accesses, truncation).
        outputs: Artifact paths written alongside this manifest.
        timeline: Streaming windowed-analysis timeline (versioned,
            strict-schema — see :data:`TIMELINE_VERSION`); None for runs
            without ``--stream``.
    """

    command: str
    workload: str = ""
    engine: str = ""
    seed: int = 0
    period: float = 0.0
    geometry: Dict[str, int] = field(default_factory=dict)
    revision: str = ""
    created: float = 0.0
    config: Dict[str, object] = field(default_factory=dict)
    stage_timings: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    data_quality: Optional[Dict[str, object]] = None
    sampling: Dict[str, object] = field(default_factory=dict)
    outputs: Dict[str, str] = field(default_factory=dict)
    timeline: Optional[Dict[str, object]] = None
    version: int = MANIFEST_VERSION

    def __post_init__(self) -> None:
        if not self.revision:
            self.revision = git_revision()
        if not self.created:
            self.created = time.time()

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the on-disk layout)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output (strict on layout)."""
        if not isinstance(record, dict):
            raise ManifestError(
                f"manifest must be a JSON object, got {type(record).__name__}"
            )
        if "command" not in record:
            raise ManifestError("manifest missing required field 'command'")
        version = record.get("version", MANIFEST_VERSION)
        if version != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {version} "
                f"(this reader understands {MANIFEST_VERSION})"
            )
        known = {name for name in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(record) - known
        if unknown:
            raise ManifestError(
                f"manifest has unknown fields: {', '.join(sorted(unknown))}"
            )
        if record.get("timeline") is not None:
            validate_timeline(record["timeline"])
        return cls(**record)  # type: ignore[arg-type]

    def save(self, path: PathLike) -> Path:
        """Write the manifest as pretty JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="ascii") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    @classmethod
    def load(cls, path: PathLike) -> "RunManifest":
        """Read one manifest back (raises :class:`ManifestError`)."""
        try:
            with open(path, "r", encoding="ascii") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"{path}: unreadable manifest: {exc}") from exc
        return cls.from_dict(record)

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """Multi-line text rendering (``ccprof inspect``)."""
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(self.created))
        lines = [
            f"run manifest: {self.command} {self.workload}".rstrip(),
            f"  revision: {self.revision}  created: {when} UTC",
        ]
        if self.engine:
            lines.append(
                f"  engine: {self.engine}  seed: {self.seed}  "
                f"period: {self.period:.0f}"
            )
        if self.geometry:
            lines.append(
                "  geometry: "
                f"{self.geometry.get('num_sets', '?')} sets x "
                f"{self.geometry.get('ways', '?')} ways x "
                f"{self.geometry.get('line_size', '?')} B lines"
            )
        if self.config:
            parts = ", ".join(
                f"{key}={value}" for key, value in sorted(self.config.items())
            )
            lines.append(f"  config: {parts}")
        if self.sampling:
            samples = self.sampling.get("samples", 0)
            events = self.sampling.get("events", 0)
            accesses = self.sampling.get("accesses", 0)
            lines.append(
                f"  sampling: {samples} samples of {events} events "
                f"({accesses} accesses)"
            )
            if self.sampling.get("truncated"):
                lines.append(
                    "    truncated: "
                    f"{self.sampling.get('truncation_reason')}"
                )
        if self.stage_timings:
            lines.append("  stages:")
            for name, seconds in sorted(
                self.stage_timings.items(), key=lambda item: -item[1]
            ):
                lines.append(f"    {name:<24} {seconds * 1e3:9.3f} ms")
        lines.extend(self._render_timeline())
        lines.extend(self._render_quality())
        lines.extend(self._render_metrics())
        if self.outputs:
            lines.append("  outputs:")
            for label, path in sorted(self.outputs.items()):
                lines.append(f"    {label}: {path}")
        return "\n".join(lines)

    def _render_timeline(self) -> List[str]:
        timeline = self.timeline
        if not timeline:
            return []
        windows = timeline.get("windows", [])
        fraction = timeline.get("conflict_fraction", 0.0)
        engine = timeline.get("engine") or "?"
        fallback = timeline.get("fallback_from")
        lines = [
            "  timeline: "
            f"{len(windows)} windows of {timeline.get('window', '?')} samples"
            f" ({timeline.get('total_samples', '?')} total), "
            f"engine {engine}"
            + (f" (requested {fallback})" if fallback else ""),
            f"    conflict fraction: {fraction:.2f}"
            f"  transitions: {timeline.get('transitions', [])}"
            + ("  (coalesced)" if timeline.get("coalesced") else ""),
        ]
        if windows:
            # One mark per window: '#' conflicting, '.' clean — the phase
            # picture at a glance.
            marks = "".join(
                "#" if window.get("conflict") else "." for window in windows
            )
            lines.append(f"    phases: [{marks}]")
        for window in windows:
            if not window.get("conflict"):
                continue
            victims = window.get("victim_sets", [])
            shown = ", ".join(str(v) for v in victims[:8])
            if len(victims) > 8:
                shown += f", ... ({len(victims)} total)"
            lines.append(
                f"    window {window.get('index'):>4}  "
                f"cf {window.get('cf', 0.0):.3f}  "
                f"victims [{shown}]"
            )
        return lines

    def _render_quality(self) -> List[str]:
        quality = self.data_quality
        if not quality:
            return []
        degraded = bool(
            quality.get("samples_dropped")
            or quality.get("samples_quarantined")
            or quality.get("injected_faults")
            or quality.get("truncated")
            or quality.get("low_confidence_loops")
            or quality.get("warnings")
        )
        lines = [f"  data quality: {'DEGRADED' if degraded else 'clean'}"]
        for warning in quality.get("warnings", []):
            lines.append(f"    warning: {warning}")
        return lines

    def _render_metrics(self) -> List[str]:
        counters = self.metrics.get("counters", {}) if self.metrics else {}
        gauges = self.metrics.get("gauges", {}) if self.metrics else {}
        if not counters and not gauges:
            return []
        lines = ["  metrics:"]
        for name, value in sorted(counters.items()):
            lines.append(f"    {name:<36} {value}")
        for name, value in sorted(gauges.items()):
            lines.append(f"    {name:<36} {value} (gauge)")
        return lines

    # -- convenience ---------------------------------------------------

    def tripped_budgets(self) -> List[str]:
        """Budget limits that stopped the run (from the metric snapshot).

        The sampler records one ``pmu.budget.tripped.<limit>`` counter per
        watchdog stop, so a truncated run's manifest names the limit that
        fired — not just a free-text ``truncation_reason``.
        """
        counters = self.metrics.get("counters", {}) if self.metrics else {}
        prefix = "pmu.budget.tripped."
        return sorted(
            name[len(prefix):]
            for name, value in counters.items()
            if name.startswith(prefix) and value
        )
