"""Self-overhead accounting: what does watching the profiler cost?

The paper's pitch is a ~1.3% median profiling overhead; an observability
layer that costs more than that to *measure* would be self-defeating.
:func:`measure_self_overhead` runs the perf harness's ``lru_stream``
headline shape twice — once with the obs layer disabled (bare) and once
with a live registry and tracer (instrumented) — and reports the ratio.
The acceptance bar is instrumented/bare < 1 + :data:`OVERHEAD_TARGET`.

``ccprof profile lru_stream --self-overhead`` runs this from the CLI, and
``repro.perf.harness`` embeds the result in every ``BENCH_*.json`` as the
``obs_overhead`` field so CI can enforce the bound per revision.

Timing is best-of-``repeats`` with bare/instrumented runs interleaved, so
one scheduler hiccup cannot masquerade as obs overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, use_registry
from repro.obs.tracing import Tracer, use_tracer

# NOTE: this module deliberately imports nothing from repro.cache/repro.trace
# at module level.  Those hot-path modules import repro.obs.metrics, which
# executes repro.obs.__init__, which imports this module — a module-level
# import back into them would cycle while they are still initializing.

#: Maximum tolerated fractional overhead of the enabled obs layer on the
#: headline workload (instrumented/bare - 1).
OVERHEAD_TARGET = 0.05

#: Default accesses per timed run (full / --quick sized).
FULL_ACCESSES = 400_000
QUICK_ACCESSES = 40_000


@dataclass(frozen=True)
class OverheadReport:
    """Result of one paired instrumented-vs-bare measurement.

    Attributes:
        workload: Name of the measured shape (``lru_stream``).
        accesses: Accesses per timed run.
        repeats: Timed repetitions per mode (best-of is reported).
        bare_seconds: Best bare (obs disabled) wall time.
        instrumented_seconds: Best instrumented wall time.
        target: The fractional-overhead acceptance bar.
    """

    workload: str
    accesses: int
    repeats: int
    bare_seconds: float
    instrumented_seconds: float
    target: float = OVERHEAD_TARGET

    @property
    def ratio(self) -> float:
        """instrumented/bare wall-time ratio (1.0 = free)."""
        return self.instrumented_seconds / max(self.bare_seconds, 1e-12)

    @property
    def overhead(self) -> float:
        """Fractional overhead (ratio - 1; may be slightly negative)."""
        return self.ratio - 1.0

    @property
    def within_target(self) -> bool:
        """Whether the measured overhead meets the acceptance bar."""
        return self.overhead <= self.target

    def as_dict(self) -> dict:
        """The ``obs_overhead`` record embedded in ``BENCH_*.json``."""
        return {
            "workload": self.workload,
            "accesses": self.accesses,
            "repeats": self.repeats,
            "bare_seconds": self.bare_seconds,
            "instrumented_seconds": self.instrumented_seconds,
            "ratio": self.ratio,
            "overhead": self.overhead,
            "target": self.target,
            "within_target": self.within_target,
        }

    def render(self) -> str:
        """One-paragraph text rendering for the CLI."""
        verdict = "within" if self.within_target else "EXCEEDS"
        return "\n".join(
            [
                f"self-overhead ({self.workload}, {self.accesses} accesses, "
                f"best of {self.repeats}):",
                f"  bare         {self.bare_seconds * 1e3:9.3f} ms",
                f"  instrumented {self.instrumented_seconds * 1e3:9.3f} ms",
                f"  ratio        {self.ratio:9.4f}  "
                f"(overhead {self.overhead:+.2%}, {verdict} the "
                f"{self.target:.0%} target)",
            ]
        )


def _stream_batches(accesses: int, batch_size: Optional[int]) -> List["object"]:
    """The ``lru_stream`` headline trace, pre-batched (not timed)."""
    from repro.perf.harness import stream_trace
    from repro.trace.batch import DEFAULT_BATCH_SIZE, iter_batches

    return list(
        iter_batches(stream_trace(accesses), batch_size or DEFAULT_BATCH_SIZE)
    )


def _best_of(action: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - start)
    return best


def measure_self_overhead(
    accesses: int = FULL_ACCESSES,
    repeats: int = 3,
    batch_size: Optional[int] = None,
) -> OverheadReport:
    """Pair-time the headline workload with the obs layer off and on.

    Both modes run the identical work — a fresh L1 driven over the same
    pre-built ``lru_stream`` batches — differing only in the installed
    registry/tracer.  Per ``repeats`` round the bare and instrumented runs
    alternate; the best time of each side is compared.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.cache.set_assoc import SetAssociativeCache

    batches = _stream_batches(accesses, batch_size)
    geometry = CacheGeometry()

    def drive() -> None:
        cache = SetAssociativeCache(geometry)
        access_batch = cache.access_batch
        for batch in batches:
            access_batch(batch)

    def bare() -> None:
        with use_registry(NULL_REGISTRY), use_tracer(Tracer(enabled=False)):
            drive()

    def instrumented() -> None:
        with use_registry(MetricsRegistry()), use_tracer(Tracer()):
            drive()

    # Warm both paths once so allocator/caches reach steady state before
    # any timed run.
    bare()
    instrumented()
    bare_seconds = _best_of(bare, repeats)
    instrumented_seconds = _best_of(instrumented, repeats)
    return OverheadReport(
        workload="lru_stream",
        accesses=accesses,
        repeats=repeats,
        bare_seconds=bare_seconds,
        instrumented_seconds=instrumented_seconds,
    )
