"""Zero-dependency metrics: counters, gauges, log2-bucket histograms.

The paper's headline claim is that CCProf is *lightweight*; this module is
how the reproduction watches itself to keep that claim honest.  Three
instrument kinds cover the pipeline's needs:

- :class:`Counter` — monotonically increasing totals (samples emitted,
  cache misses, pass-cache hits).
- :class:`Gauge` — last-written values (configured budget limits, batch
  size in flight).
- :class:`Histogram` — fixed log2 buckets over non-negative integers
  (batch sizes, retry delays in microseconds).  Log2 bucketing makes the
  bucket index a single ``int.bit_length()`` call and keeps the layout
  identical across processes, so snapshots merge trivially.

Everything routes through a :class:`MetricsRegistry`.  A process-global
default (:func:`get_registry`) serves production code; tests inject their
own with :func:`use_registry`.  A **disabled** registry hands out shared
no-op instruments, so instrumented code pays one attribute check and a
method call that does nothing — the hot paths only ever record per-batch
or per-run aggregates, never per-access callbacks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Histogram bucket count: bucket 0 holds values <= 0, bucket k (1-based)
#: holds values with bit_length k, i.e. [2^(k-1), 2^k).  64 value buckets
#: cover the full non-negative int64 range; 2^63 (and anything larger)
#: lands in the final overflow bucket.
HISTOGRAM_BUCKETS = 65


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the running total."""
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta``."""
        self.value += delta


class Histogram:
    """Fixed log2-bucket histogram over non-negative integers.

    ``observe(v)`` charges bucket ``max(0, int(v).bit_length())`` (clamped
    to the final bucket), so bucket k counts values in ``[2^(k-1), 2^k)``;
    bucket 0 counts values <= 0.  Alongside the buckets the histogram keeps
    exact count/sum/min/max so means survive the bucketing.
    """

    __slots__ = ("name", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: List[int] = [0] * HISTOGRAM_BUCKETS
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    @staticmethod
    def bucket_index(value: int) -> int:
        """Bucket charged for ``value`` (clamped into the fixed layout)."""
        if value <= 0:
            return 0
        return min(int(value).bit_length(), HISTOGRAM_BUCKETS - 1)

    def observe(self, value: int) -> None:
        """Record one observation (floats are floored to ints)."""
        value = int(value)
        self.buckets[self.bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def nonzero_buckets(self) -> Dict[int, int]:
        """Sparse ``{bucket_index: count}`` view (snapshot-friendly)."""
        return {
            index: count
            for index, count in enumerate(self.buckets)
            if count
        }

    def as_dict(self) -> Dict[str, object]:
        """Snapshot form: exact moments plus the sparse buckets."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(index): count
                for index, count in self.nonzero_buckets().items()
            },
        }


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    """Shared do-nothing gauge handed out by disabled registries."""

    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass

    def add(self, delta: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by disabled registries."""

    __slots__ = ()

    def observe(self, value: int) -> None:  # noqa: ARG002
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named instruments, created on first use and cached by name.

    Args:
        enabled: When False the registry is inert — every accessor returns
            a shared no-op instrument and :meth:`snapshot` is empty.  The
            instrumented pipeline is then bit-for-bit identical to an
            uninstrumented one.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def reset(self) -> None:
        """Drop every instrument (tests; between paired overhead runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time export of every instrument, sorted by name.

        The layout is what :class:`~repro.obs.manifest.RunManifest`
        embeds: ``{"counters": {...}, "gauges": {...}, "histograms":
        {...}}`` with plain-JSON values throughout.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }


#: The always-disabled registry: install it (or pass it) to turn the
#: whole obs layer into no-ops.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry(enabled=True)
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented code records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-global default; returns the
    previous one so callers can restore it."""
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (the test-injection hook)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
