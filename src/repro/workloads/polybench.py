"""PolyBench/C kernels beyond ADI.

The paper's correctness study draws loops "from Rodinia and PolyBench/C
benchmark suite" (§5); only ADI is detailed in the case studies.  This
module models five more PolyBench kernels with their canonical loop nests
and power-of-two problem sizes — the configuration under which the linear-
algebra kernels exhibit the classic transposed-operand column walks — plus
padded variants:

- ``gemm``      C = alpha*A*B + beta*C  (B walked by column)
- ``2mm``       two chained matmuls (same signature, twice)
- ``jacobi-2d`` 5-point stencil (row-friendly: the clean control)
- ``fdtd-2d``   2.5D stencil over ex/ey/hz (row-friendly, clean)
- ``trmm``      triangular matmul (column walk over the triangle)

Each workload exposes ``original()`` / ``padded()`` like the case studies.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.descriptors import AffineAccess, affine2d
from repro.trace.record import MemoryAccess
from repro.workloads.base import Array2D, TraceWorkload

#: Matrix order: 128 doubles per row = 1024 B pitch = the 4-set fold.
DEFAULT_N = 128

#: One cache line of padding, the standard fix.
DEFAULT_PAD = 64


class GemmWorkload(TraceWorkload):
    """PolyBench ``gemm``: the inner product walks B by column.

    The (i, j, k) nest reads ``B[k][j]`` with k innermost: stride = B's
    pitch, the same conflict signature as ADI's column sweep.
    """

    def __init__(self, n: int = DEFAULT_N, pad_bytes: int = 0) -> None:
        super().__init__()
        if n < 4:
            raise ValueError(f"n must be >= 4: {n}")
        self.n = n
        self.pad_bytes = pad_bytes
        self.name = f"gemm{'-padded' if pad_bytes else ''}"
        self.a = Array2D.allocate(self.allocator, "A", n, n, 8, pad_bytes=pad_bytes)
        self.b = Array2D.allocate(self.allocator, "B", n, n, 8, pad_bytes=pad_bytes)
        self.c = Array2D.allocate(self.allocator, "C", n, n, 8, pad_bytes=pad_bytes)
        function = self.builder.function("kernel_gemm", file="gemm.c")
        function.begin_loop(line=30, label="i")
        function.begin_loop(line=31, label="j")
        function.begin_loop(line=33, label="k")
        self.ip_inner = function.add_statement(line=34)
        function.end_loop()
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = DEFAULT_N) -> "GemmWorkload":
        """Unpadded power-of-two layout."""
        return cls(n=n)

    @classmethod
    def padded(cls, n: int = DEFAULT_N) -> "GemmWorkload":
        """One line of padding per row."""
        return cls(n=n, pad_bytes=DEFAULT_PAD)

    def trace(self) -> Iterator[MemoryAccess]:
        n, a, b, c = self.n, self.a, self.b, self.c
        for i in range(n):
            for j in range(n):
                yield self.load(self.ip_inner, c.addr(i, j))
                for k in range(n):
                    yield self.load(self.ip_inner, a.addr(i, k))
                    yield self.load(self.ip_inner, b.addr(k, j))  # column walk
                yield self.store(self.ip_inner, c.addr(i, j))

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors: B's ``[k][j]`` read carries the conflict."""
        n = self.n
        return [
            affine2d(self.c, self.ip_inner, [(1, 0, n), (0, 1, n)]),
            affine2d(self.a, self.ip_inner, [(1, 0, n), (0, 0, n), (0, 1, n)]),
            affine2d(self.b, self.ip_inner, [(0, 0, n), (0, 1, n), (1, 0, n)]),
            affine2d(self.c, self.ip_inner, [(1, 0, n), (0, 1, n)], kind="store"),
        ]


class TwoMmWorkload(TraceWorkload):
    """PolyBench ``2mm``: D = A*B, E = D*C — two chained column walks."""

    def __init__(self, n: int = DEFAULT_N // 2, pad_bytes: int = 0) -> None:
        super().__init__()
        if n < 4:
            raise ValueError(f"n must be >= 4: {n}")
        self.n = n
        self.pad_bytes = pad_bytes
        self.name = f"2mm{'-padded' if pad_bytes else ''}"
        labels = ("A", "B", "C", "D", "E")
        self.matrices = {
            label: Array2D.allocate(self.allocator, label, n, n, 8, pad_bytes=pad_bytes)
            for label in labels
        }
        function = self.builder.function("kernel_2mm", file="2mm.c")
        function.begin_loop(line=40, label="mm1")
        self.ip_mm1 = function.add_statement(line=41)
        function.end_loop()
        function.begin_loop(line=50, label="mm2")
        self.ip_mm2 = function.add_statement(line=51)
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = DEFAULT_N // 2) -> "TwoMmWorkload":
        """Unpadded power-of-two layout."""
        return cls(n=n)

    @classmethod
    def padded(cls, n: int = DEFAULT_N // 2) -> "TwoMmWorkload":
        """One line of padding per row."""
        return cls(n=n, pad_bytes=DEFAULT_PAD)

    def _matmul(self, ip, left, right, out) -> Iterator[MemoryAccess]:
        n = self.n
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    yield self.load(ip, left.addr(i, k))
                    yield self.load(ip, right.addr(k, j))
                yield self.store(ip, out.addr(i, j))

    def trace(self) -> Iterator[MemoryAccess]:
        m = self.matrices
        yield from self._matmul(self.ip_mm1, m["A"], m["B"], m["D"])
        yield from self._matmul(self.ip_mm2, m["D"], m["C"], m["E"])

    def _matmul_patterns(self, ip, left, right, out) -> List[AffineAccess]:
        n = self.n
        return [
            affine2d(left, ip, [(1, 0, n), (0, 0, n), (0, 1, n)]),
            affine2d(right, ip, [(0, 0, n), (0, 1, n), (1, 0, n)]),
            affine2d(out, ip, [(1, 0, n), (0, 1, n)], kind="store"),
        ]

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors: both chained products walk a column."""
        m = self.matrices
        return self._matmul_patterns(
            self.ip_mm1, m["A"], m["B"], m["D"]
        ) + self._matmul_patterns(self.ip_mm2, m["D"], m["C"], m["E"])


class Jacobi2dWorkload(TraceWorkload):
    """PolyBench ``jacobi-2d``: the clean control — row-order 5-point
    stencil, no column walks, conflict-free at any pitch."""

    def __init__(self, n: int = 2 * DEFAULT_N, steps: int = 2, pad_bytes: int = 0) -> None:
        super().__init__()
        if n < 4 or steps <= 0:
            raise ValueError("need n >= 4 and steps >= 1")
        self.n = n
        self.steps = steps
        self.name = f"jacobi-2d{'-padded' if pad_bytes else ''}"
        self.a = Array2D.allocate(self.allocator, "A", n, n, 8, pad_bytes=pad_bytes)
        self.b = Array2D.allocate(self.allocator, "B", n, n, 8, pad_bytes=pad_bytes)
        function = self.builder.function("kernel_jacobi_2d", file="jacobi-2d.c")
        function.begin_loop(line=25, label="t")
        function.begin_loop(line=26, label="i")
        function.begin_loop(line=27, label="j")
        self.ip_stencil = function.add_statement(line=28)
        function.end_loop()
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = 2 * DEFAULT_N) -> "Jacobi2dWorkload":
        """The standard layout (already conflict-free by access order)."""
        return cls(n=n)

    @classmethod
    def padded(cls, n: int = 2 * DEFAULT_N) -> "Jacobi2dWorkload":
        """Padded variant (no-op for this access pattern, by design)."""
        return cls(n=n, pad_bytes=DEFAULT_PAD)

    def trace(self) -> Iterator[MemoryAccess]:
        n, a, b = self.n, self.a, self.b
        ip = self.ip_stencil
        for _step in range(self.steps):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    yield self.load(ip, a.addr(i, j))
                    yield self.load(ip, a.addr(i, j - 1))
                    yield self.load(ip, a.addr(i, j + 1))
                    yield self.load(ip, a.addr(i - 1, j))
                    yield self.load(ip, a.addr(i + 1, j))
                    yield self.store(ip, b.addr(i, j))
            a, b = b, a

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors: row-order stencil (capacity, not conflict)."""
        n, steps = self.n, self.steps
        dims = [(0, 0, steps), (1, 0, n - 2), (0, 1, n - 2)]
        ip = self.ip_stencil
        return [
            affine2d(self.a, ip, dims, origin=(1, 1)),
            affine2d(self.a, ip, dims, origin=(1, 0)),
            affine2d(self.a, ip, dims, origin=(1, 2)),
            affine2d(self.a, ip, dims, origin=(0, 1)),
            affine2d(self.a, ip, dims, origin=(2, 1)),
            affine2d(self.b, ip, dims, kind="store", origin=(1, 1)),
        ]


class Fdtd2dWorkload(TraceWorkload):
    """PolyBench ``fdtd-2d``: row-order sweeps over ex/ey/hz (clean)."""

    def __init__(self, n: int = 2 * DEFAULT_N, steps: int = 2, pad_bytes: int = 0) -> None:
        super().__init__()
        if n < 4 or steps <= 0:
            raise ValueError("need n >= 4 and steps >= 1")
        self.n = n
        self.steps = steps
        self.name = f"fdtd-2d{'-padded' if pad_bytes else ''}"
        self.ex = Array2D.allocate(self.allocator, "ex", n, n, 8, pad_bytes=pad_bytes)
        self.ey = Array2D.allocate(self.allocator, "ey", n, n, 8, pad_bytes=pad_bytes)
        self.hz = Array2D.allocate(self.allocator, "hz", n, n, 8, pad_bytes=pad_bytes)
        function = self.builder.function("kernel_fdtd_2d", file="fdtd-2d.c")
        function.begin_loop(line=40, label="t")
        function.begin_loop(line=41, label="field_updates")
        self.ip_update = function.add_statement(line=42)
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = 2 * DEFAULT_N) -> "Fdtd2dWorkload":
        """The standard layout."""
        return cls(n=n)

    @classmethod
    def padded(cls, n: int = 2 * DEFAULT_N) -> "Fdtd2dWorkload":
        """Padded variant (no-op for this access pattern)."""
        return cls(n=n, pad_bytes=DEFAULT_PAD)

    def trace(self) -> Iterator[MemoryAccess]:
        n, ex, ey, hz = self.n, self.ex, self.ey, self.hz
        ip = self.ip_update
        for _step in range(self.steps):
            for i in range(1, n):
                for j in range(1, n):
                    yield self.load(ip, hz.addr(i, j - 1))
                    yield self.load(ip, hz.addr(i - 1, j))
                    yield self.load(ip, ex.addr(i, j))
                    yield self.load(ip, ey.addr(i, j))
                    yield self.store(ip, ex.addr(i, j))
                    yield self.store(ip, ey.addr(i, j))
                    yield self.store(ip, hz.addr(i - 1, j - 1))

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors: row-order field sweeps (clean control)."""
        n, steps = self.n, self.steps
        dims = [(0, 0, steps), (1, 0, n - 1), (0, 1, n - 1)]
        ip = self.ip_update
        return [
            affine2d(self.hz, ip, dims, origin=(1, 0)),
            affine2d(self.hz, ip, dims, origin=(0, 1)),
            affine2d(self.ex, ip, dims, origin=(1, 1)),
            affine2d(self.ey, ip, dims, origin=(1, 1)),
            affine2d(self.ex, ip, dims, kind="store", origin=(1, 1)),
            affine2d(self.ey, ip, dims, kind="store", origin=(1, 1)),
            affine2d(self.hz, ip, dims, kind="store", origin=(0, 0)),
        ]


class TrmmWorkload(TraceWorkload):
    """PolyBench ``trmm``: B := A^T-ish triangular product; the reduction
    walks B by column over the triangle."""

    def __init__(self, n: int = DEFAULT_N, pad_bytes: int = 0) -> None:
        super().__init__()
        if n < 4:
            raise ValueError(f"n must be >= 4: {n}")
        self.n = n
        self.name = f"trmm{'-padded' if pad_bytes else ''}"
        self.a = Array2D.allocate(self.allocator, "A", n, n, 8, pad_bytes=pad_bytes)
        self.b = Array2D.allocate(self.allocator, "B", n, n, 8, pad_bytes=pad_bytes)
        function = self.builder.function("kernel_trmm", file="trmm.c")
        function.begin_loop(line=30, label="i")
        function.begin_loop(line=31, label="j")
        function.begin_loop(line=32, label="k")
        self.ip_inner = function.add_statement(line=33)
        function.end_loop()
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = DEFAULT_N) -> "TrmmWorkload":
        """Unpadded power-of-two layout."""
        return cls(n=n)

    @classmethod
    def padded(cls, n: int = DEFAULT_N) -> "TrmmWorkload":
        """One line of padding per row."""
        return cls(n=n, pad_bytes=DEFAULT_PAD)

    def trace(self) -> Iterator[MemoryAccess]:
        n, a, b = self.n, self.a, self.b
        ip = self.ip_inner
        for i in range(n):
            for j in range(n):
                for k in range(i + 1, n):
                    yield self.load(ip, a.addr(k, i))  # column walk of A
                    yield self.load(ip, b.addr(k, j))  # column walk of B
                yield self.store(ip, b.addr(i, j))

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors for the triangular product.

        The triangular bound (k from i+1) is approximated by the full
        rectangular extent: the footprint and per-window pressure of the
        column walks are unchanged, only trip counts are overstated by 2x.
        """
        n = self.n
        ip = self.ip_inner
        return [
            affine2d(self.a, ip, [(0, 1, n), (0, 0, n), (1, 0, n)]),
            affine2d(self.b, ip, [(0, 0, n), (0, 1, n), (1, 0, n)]),
            affine2d(self.b, ip, [(1, 0, n), (0, 1, n)], kind="store"),
        ]


#: PolyBench workload factories keyed by kernel name.
POLYBENCH_KERNELS = {
    "gemm": GemmWorkload,
    "2mm": TwoMmWorkload,
    "jacobi-2d": Jacobi2dWorkload,
    "fdtd-2d": Fdtd2dWorkload,
    "trmm": TrmmWorkload,
}
