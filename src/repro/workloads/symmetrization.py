"""The symmetrization kernel of Figure 2 (paper §2.1).

    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        A[i][j] = 0.5 * (A[i][j] + A[j][i]);

On a 128x128 matrix of doubles, a row is 1024 B = 16 lines, so rows recycle
the 64 L1 sets every 4 rows: the column walk ``A[j][i]`` hammers only 4
sets (Figure 2-b).  A 64-byte pad per row shifts each row's mapping by one
set (Figure 2-c), spreading the column walk across all 64 sets; the paper
measures up to 91.4% fewer L2 misses from this pad.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.descriptors import AffineAccess, affine2d
from repro.trace.record import MemoryAccess
from repro.workloads.base import Array2D, TraceWorkload

#: The paper's matrix order.
DEFAULT_N = 128

#: The paper's pad: one cache line per row.
DEFAULT_PAD = 64


class SymmetrizationWorkload(TraceWorkload):
    """Matrix symmetrization, original or padded.

    Args:
        n: Matrix order (paper: 128).
        pad_bytes: Row padding (0 = original, 64 = the paper's fix).
        sweeps: How many times the loop nest runs (quantum-chemistry codes
            call this kernel repeatedly; >1 also separates cold misses from
            the steady-state conflict behaviour).
    """

    def __init__(self, n: int = DEFAULT_N, pad_bytes: int = 0, sweeps: int = 2) -> None:
        super().__init__()
        if n <= 0 or sweeps <= 0:
            raise ValueError("n and sweeps must be positive")
        self.n = n
        self.pad_bytes = pad_bytes
        self.sweeps = sweeps
        self.name = f"symmetrization{'-padded' if pad_bytes else ''}"
        self.a = Array2D.allocate(
            self.allocator, "A", rows=n, cols=n, elem_size=8, pad_bytes=pad_bytes
        )
        function = self.builder.function("symmetrize", file="symm.c")
        function.begin_loop(line=3)  # for i
        function.begin_loop(line=4)  # for j
        self.ip_row = function.add_statement(line=5)  # A[i][j] load
        self.ip_col = function.add_statement(line=5)  # A[j][i] load
        self.ip_store = function.add_statement(line=5)  # A[i][j] store
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = DEFAULT_N, sweeps: int = 2) -> "SymmetrizationWorkload":
        """The unpadded kernel."""
        return cls(n=n, pad_bytes=0, sweeps=sweeps)

    @classmethod
    def padded(cls, n: int = DEFAULT_N, sweeps: int = 2) -> "SymmetrizationWorkload":
        """The paper's 64-byte-per-row fix."""
        return cls(n=n, pad_bytes=DEFAULT_PAD, sweeps=sweeps)

    def trace(self) -> Iterator[MemoryAccess]:
        a = self.a
        for _sweep in range(self.sweeps):
            for i in range(self.n):
                for j in range(self.n):
                    yield self.load(self.ip_row, a.addr(i, j))
                    yield self.load(self.ip_col, a.addr(j, i))
                    yield self.store(self.ip_store, a.addr(i, j))

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors for the three access sites of line 5.

        Dimensions are (sweep, i, j) outermost-first; the column walk
        ``A[j][i]`` advances one row pitch per j — the conflict carrier.
        """
        n, sweeps, a = self.n, self.sweeps, self.a
        return [
            affine2d(a, self.ip_row, [(0, 0, sweeps), (1, 0, n), (0, 1, n)]),
            affine2d(a, self.ip_col, [(0, 0, sweeps), (0, 1, n), (1, 0, n)]),
            affine2d(
                a, self.ip_store, [(0, 0, sweeps), (1, 0, n), (0, 1, n)], kind="store"
            ),
        ]
