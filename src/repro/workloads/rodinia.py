"""The Rodinia benchmark suite for Figure 7 (paper §5.1).

Figure 7 plots the RCD CDF of 18 Rodinia applications: Needleman-Wunsch is
the outlier (88% of L1 misses below RCD 8), while the rest are balanced
(10-20% below RCD 8).  Native Rodinia binaries cannot run here, so each
application is represented by a synthetic access-pattern generator that
captures the *memory-reference character* of its hot kernel — streaming,
stencil, gather, pointer chase, blocked factorization — with layouts chosen
the way the real data structures fall (non-power-of-two rows, index-driven
irregularity), which is what makes them conflict-free in practice.  ``nw``
maps to the real :class:`~repro.workloads.nw.NeedlemanWunschWorkload`.

This substitution is documented in DESIGN.md: Figure 7's claim is about the
*separation* between one conflict-heavy app and many balanced ones, which
these generators preserve by construction of their strides, not by
hard-coding any RCD values.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List

from repro.trace.record import MemoryAccess
from repro.workloads.base import Array1D, Array2D, TraceWorkload
from repro.workloads.nw import NeedlemanWunschWorkload


class _PatternWorkload(TraceWorkload):
    """A single-hot-loop workload around one access-pattern generator."""

    def __init__(self, app: str, file: str, line: int) -> None:
        super().__init__()
        self.name = app
        function = self.builder.function(f"{app}_kernel", file=file)
        function.begin_loop(line=line)
        self.ip = function.add_statement(line=line + 1)
        function.end_loop()
        function.finish()


class StreamingWorkload(_PatternWorkload):
    """Sequential sweep over a large buffer (memory-bandwidth kernels)."""

    def __init__(self, app: str, file: str, line: int, *, kib: int = 512, sweeps: int = 3) -> None:
        super().__init__(app, file, line)
        self.array = Array1D.allocate(self.allocator, f"{app}_buf", kib * 128, 8)
        self.sweeps = sweeps

    def trace(self) -> Iterator[MemoryAccess]:
        for _sweep in range(self.sweeps):
            for index in range(self.array.length):
                yield self.load(self.ip, self.array.addr(index))


class Stencil2DWorkload(_PatternWorkload):
    """Five-point stencil on a grid with a conflict-free (odd) pitch."""

    def __init__(
        self, app: str, file: str, line: int, *, rows: int = 160, cols: int = 250, sweeps: int = 2
    ) -> None:
        super().__init__(app, file, line)
        self.grid = Array2D.allocate(self.allocator, f"{app}_grid", rows, cols, 8)
        self.out = Array2D.allocate(self.allocator, f"{app}_out", rows, cols, 8)
        self.sweeps = sweeps

    def trace(self) -> Iterator[MemoryAccess]:
        grid, out = self.grid, self.out
        for _sweep in range(self.sweeps):
            for i in range(1, grid.rows - 1):
                for j in range(1, grid.cols - 1):
                    yield self.load(self.ip, grid.addr(i, j))
                    yield self.load(self.ip, grid.addr(i - 1, j))
                    yield self.load(self.ip, grid.addr(i + 1, j))
                    yield self.load(self.ip, grid.addr(i, j - 1))
                    yield self.load(self.ip, grid.addr(i, j + 1))
                    yield self.store(self.ip, out.addr(i, j))


class GatherWorkload(_PatternWorkload):
    """Index-driven gathers over a large table (irregular kernels)."""

    def __init__(
        self,
        app: str,
        file: str,
        line: int,
        *,
        table_entries: int = 65536,
        gathers: int = 150000,
        seed: int = 7,
    ) -> None:
        super().__init__(app, file, line)
        self.table = Array1D.allocate(self.allocator, f"{app}_table", table_entries, 8)
        self.index = Array1D.allocate(self.allocator, f"{app}_index", gathers, 4)
        self.gathers = gathers
        self.seed = seed

    def trace(self) -> Iterator[MemoryAccess]:
        rng = random.Random(self.seed)
        entries = self.table.length
        for position in range(self.gathers):
            yield self.load(self.ip, self.index.addr(position), size=4)
            yield self.load(self.ip, self.table.addr(rng.randrange(entries)))


class PointerChaseWorkload(_PatternWorkload):
    """Pseudo-random pointer chase (tree/graph traversal kernels)."""

    def __init__(
        self, app: str, file: str, line: int, *, nodes: int = 32768, hops: int = 200000, seed: int = 11
    ) -> None:
        super().__init__(app, file, line)
        # 64-byte "nodes": one line each, like a B+tree or CSR adjacency.
        self.nodes = Array1D.allocate(self.allocator, f"{app}_nodes", nodes, 64)
        self.hops = hops
        self.seed = seed

    def trace(self) -> Iterator[MemoryAccess]:
        rng = random.Random(self.seed)
        current = 0
        for _hop in range(self.hops):
            yield self.load(self.ip, self.nodes.addr(current), size=8)
            current = rng.randrange(self.nodes.length)


class FeatureMatrixWorkload(_PatternWorkload):
    """Row-major points-by-features sweep (kmeans/nn/streamcluster style).

    The feature count is deliberately non-power-of-two, as in the real
    inputs (kmeans: 34 features), so rows never alias in cache.
    """

    def __init__(
        self, app: str, file: str, line: int, *, points: int = 4096, features: int = 34, sweeps: int = 2
    ) -> None:
        super().__init__(app, file, line)
        self.points = Array2D.allocate(self.allocator, f"{app}_points", points, features, 8)
        self.centers = Array2D.allocate(self.allocator, f"{app}_centers", 8, features, 8)
        self.sweeps = sweeps

    def trace(self) -> Iterator[MemoryAccess]:
        points, centers = self.points, self.centers
        for _sweep in range(self.sweeps):
            for point in range(points.rows):
                center = point % centers.rows
                for feature in range(points.cols):
                    yield self.load(self.ip, points.addr(point, feature))
                    yield self.load(self.ip, centers.addr(center, feature))


class BlockedLuWorkload(_PatternWorkload):
    """Blocked LU factorization on an odd-pitch matrix (lud)."""

    def __init__(self, app: str, file: str, line: int, *, n: int = 240, block: int = 16) -> None:
        super().__init__(app, file, line)
        # 240 doubles = 1920 B pitch: coprime enough with 4096 to spread.
        self.matrix = Array2D.allocate(self.allocator, f"{app}_matrix", n, n, 8, pad_bytes=8)
        self.block = block

    def trace(self) -> Iterator[MemoryAccess]:
        matrix = self.matrix
        n, block = matrix.rows, self.block
        for pivot in range(0, n, block):
            for i in range(pivot, min(pivot + block, n)):
                for j in range(pivot, n):
                    yield self.load(self.ip, matrix.addr(i, j))
                    yield self.load(self.ip, matrix.addr(j, i) if j < n else matrix.addr(i, j))
                    yield self.store(self.ip, matrix.addr(i, j))


#: Factories for the 18 Figure-7 applications.  Files/lines are nominal
#: hot-kernel coordinates so reports read like real Rodinia output.
RODINIA_FACTORIES: Dict[str, Callable[[], TraceWorkload]] = {
    "backprop": lambda: FeatureMatrixWorkload("backprop", "backprop_kernel.c", 45, features=17),
    "bfs": lambda: PointerChaseWorkload("bfs", "bfs.cpp", 137),
    "b+tree": lambda: PointerChaseWorkload("b+tree", "kernel_cpu.c", 93, nodes=16384),
    "cfd": lambda: GatherWorkload("cfd", "euler3d_cpu.cpp", 305),
    "heartwall": lambda: Stencil2DWorkload("heartwall", "main.c", 512, rows=120, cols=230),
    "hotspot": lambda: Stencil2DWorkload("hotspot", "hotspot.c", 183),
    "hotspot3D": lambda: Stencil2DWorkload("hotspot3D", "3D.c", 128, rows=200, cols=202),
    "kmeans": lambda: FeatureMatrixWorkload("kmeans", "kmeans_clustering.c", 160),
    "lavaMD": lambda: GatherWorkload("lavaMD", "kernel_cpu.c", 123, table_entries=16384),
    "leukocyte": lambda: Stencil2DWorkload("leukocyte", "track_ellipse.c", 210, rows=150, cols=219),
    "lud": lambda: BlockedLuWorkload("lud", "lud.c", 66),
    "myocyte": lambda: StreamingWorkload("myocyte", "master.c", 80, kib=256),
    "nn": lambda: FeatureMatrixWorkload("nn", "nn.c", 99, points=8192, features=6),
    "nw": lambda: NeedlemanWunschWorkload.original(n=256),
    "particlefilter": lambda: GatherWorkload("particlefilter", "ex_particle.c", 400),
    "pathfinder": lambda: StreamingWorkload("pathfinder", "pathfinder.cpp", 99, kib=384),
    "srad": lambda: Stencil2DWorkload("srad", "srad.cpp", 150, rows=170, cols=253),
    "streamcluster": lambda: FeatureMatrixWorkload("streamcluster", "streamcluster.cpp", 653, points=2048, features=50),
}

#: The 18 application names, in the suite's canonical order.
RODINIA_APPS: List[str] = list(RODINIA_FACTORIES)


def make_rodinia_workload(app: str) -> TraceWorkload:
    """Instantiate the synthetic workload for one Rodinia application."""
    try:
        factory = RODINIA_FACTORIES[app]
    except KeyError:
        known = ", ".join(RODINIA_APPS)
        raise KeyError(f"unknown Rodinia app {app!r} (known: {known})") from None
    return factory()
