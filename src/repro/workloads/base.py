"""Workload base class and array-layout helpers.

A :class:`TraceWorkload` owns three things the profiler consumes:

- ``trace()`` — the memory-access stream of the kernel;
- ``image`` — a program image whose CFG encodes the kernel's loop nest;
- ``allocator`` — the virtual heap holding the kernel's arrays.

The array helpers encode layout exactly the way C does — row pitch in
bytes, optionally padded — because pitch modulo the cache mapping period is
the whole story of conflict misses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.errors import AllocationError
from repro.program.builder import ImageBuilder
from repro.program.image import ProgramImage
from repro.trace.allocator import Allocation, VirtualAllocator
from repro.trace.record import AccessKind, MemoryAccess

if TYPE_CHECKING:
    from repro.analysis.descriptors import AffineAccess


@dataclass(frozen=True)
class Array1D:
    """A 1-D array on the virtual heap."""

    allocation: Allocation
    elem_size: int
    length: int

    @classmethod
    def allocate(
        cls, allocator: VirtualAllocator, label: str, length: int, elem_size: int = 8
    ) -> "Array1D":
        """Allocate ``length`` elements of ``elem_size`` bytes."""
        allocation = allocator.malloc(length * elem_size, label)
        return cls(allocation=allocation, elem_size=elem_size, length=length)

    def addr(self, index: int) -> int:
        """Address of element ``index``."""
        if not 0 <= index < self.length:
            raise AllocationError(
                f"{self.allocation.label}[{index}] out of bounds (len {self.length})"
            )
        return self.allocation.start + index * self.elem_size


@dataclass(frozen=True)
class Array2D:
    """A row-major 2-D array with optional per-row padding.

    ``pitch`` is the byte distance between consecutive rows — the quantity
    the paper's padding optimizations change.
    """

    allocation: Allocation
    elem_size: int
    rows: int
    cols: int
    pitch: int

    @classmethod
    def allocate(
        cls,
        allocator: VirtualAllocator,
        label: str,
        rows: int,
        cols: int,
        elem_size: int = 8,
        pad_bytes: int = 0,
        align: Optional[int] = None,
    ) -> "Array2D":
        """Allocate ``rows`` x ``cols`` elements, padding each row by
        ``pad_bytes`` (the paper's row-padding transformation)."""
        if pad_bytes < 0:
            raise AllocationError(f"pad_bytes must be non-negative: {pad_bytes}")
        pitch = cols * elem_size + pad_bytes
        allocation = allocator.malloc(rows * pitch, label, align=align)
        return cls(
            allocation=allocation,
            elem_size=elem_size,
            rows=rows,
            cols=cols,
            pitch=pitch,
        )

    def addr(self, row: int, col: int) -> int:
        """Address of element (row, col)."""
        return self.allocation.start + row * self.pitch + col * self.elem_size

    @property
    def pad_bytes(self) -> int:
        """Bytes of padding at the end of each row."""
        return self.pitch - self.cols * self.elem_size


@dataclass(frozen=True)
class Array3D:
    """A 3-D array laid out ``[dim0][dim1][dim2]`` with padded extents.

    ``extent1`` / ``extent2`` are the *allocated* sizes of the inner two
    dimensions (>= the logical sizes); raising them is how HimenoBMT's
    "pad the 1st and 2nd dimension" optimization is expressed.
    """

    allocation: Allocation
    elem_size: int
    dim0: int
    dim1: int
    dim2: int
    extent1: int
    extent2: int

    @classmethod
    def allocate(
        cls,
        allocator: VirtualAllocator,
        label: str,
        dim0: int,
        dim1: int,
        dim2: int,
        elem_size: int = 8,
        pad1: int = 0,
        pad2: int = 0,
    ) -> "Array3D":
        """Allocate with ``pad1``/``pad2`` extra elements on the inner dims."""
        extent1 = dim1 + pad1
        extent2 = dim2 + pad2
        allocation = allocator.malloc(dim0 * extent1 * extent2 * elem_size, label)
        return cls(
            allocation=allocation,
            elem_size=elem_size,
            dim0=dim0,
            dim1=dim1,
            dim2=dim2,
            extent1=extent1,
            extent2=extent2,
        )

    def addr(self, i: int, j: int, k: int) -> int:
        """Address of element (i, j, k)."""
        linear = (i * self.extent1 + j) * self.extent2 + k
        return self.allocation.start + linear * self.elem_size

    @property
    def plane_bytes(self) -> int:
        """Bytes per dim0 slice — the stride that aliases planes."""
        return self.extent1 * self.extent2 * self.elem_size


class TraceWorkload(ABC):
    """Base class for all benchmark workloads.

    Subclasses allocate their arrays from :attr:`allocator`, declare their
    loop nest through :attr:`builder` (statement IPs drive code-centric
    attribution), and implement :meth:`trace`.
    """

    #: Short identifier used in reports; subclasses override.
    name: str = "workload"

    def __init__(self) -> None:
        self.allocator = VirtualAllocator()
        self.builder = ImageBuilder()
        self._image: Optional[ProgramImage] = None

    @property
    def image(self) -> ProgramImage:
        """The program image (built lazily on first use)."""
        if self._image is None:
            self._image = self.builder.build()
        return self._image

    @abstractmethod
    def trace(self) -> Iterator[MemoryAccess]:
        """Yield the kernel's memory-access stream."""

    def access_patterns(self) -> "List[AffineAccess]":
        """Declared affine access descriptors for static analysis.

        Workloads whose kernels are affine loop nests override this to
        describe each access site as an
        :class:`~repro.analysis.descriptors.AffineAccess`; the static
        passes (``repro.analysis``) predict victim sets from these without
        running :meth:`trace`.  The default — no declarations — opts the
        workload out of static prediction.
        """
        return []

    def load(self, ip: int, address: int, size: int = 8) -> MemoryAccess:
        """Convenience constructor for a load access."""
        return MemoryAccess(ip=ip, address=address, kind=AccessKind.LOAD, size=size)

    def store(self, ip: int, address: int, size: int = 8) -> MemoryAccess:
        """Convenience constructor for a store access."""
        return MemoryAccess(ip=ip, address=address, kind=AccessKind.STORE, size=size)

    def l1_stats(
        self, geometry: CacheGeometry = CacheGeometry(), policy: str = "lru"
    ) -> CacheStats:
        """Run the trace through a standalone L1; return its statistics."""
        cache = SetAssociativeCache(geometry, policy=policy)
        return cache.run_trace(self.trace())

    def hierarchy_result(self, hierarchy: Optional[CacheHierarchy] = None) -> HierarchyResult:
        """Run the trace through a full hierarchy (default: Broadwell)."""
        if hierarchy is None:
            hierarchy = CacheHierarchy.broadwell()
        return hierarchy.run_trace(self.trace())

    def access_count(self) -> int:
        """Length of the trace (consumes one full generation)."""
        return sum(1 for _ in self.trace())
