"""Workloads: symbolic trace generators for every benchmark in the paper.

Native binaries (Rodinia, PolyBench, MKL, Tiny-DNN, Kripke, HimenoBMT) are
not runnable here, and profiling the Python interpreter's own cache
behaviour would be meaningless — so each workload reproduces the *address
stream* of its kernel: the same loop structure, array layouts, strides,
tiling, and (crucially) the same base-address arithmetic modulo the cache
mapping period that causes the conflicts the paper studies.  Conflict
misses are a pure function of that stream plus the cache geometry, which is
what makes this substitution faithful (see DESIGN.md §2).

Every workload carries a program image (so loop attribution is real) and a
virtual allocator (so data-centric attribution is real), and exists in an
*original* and an *optimized* variant mirroring the paper's transformations.
"""

from repro.workloads.base import Array1D, Array2D, Array3D, TraceWorkload
from repro.workloads.padding import PaddingSpec, padded_pitch
from repro.workloads.symmetrization import SymmetrizationWorkload
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.adi import AdiWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.himeno import HimenoWorkload
from repro.workloads.polybench import (
    POLYBENCH_KERNELS,
    Fdtd2dWorkload,
    GemmWorkload,
    Jacobi2dWorkload,
    TrmmWorkload,
    TwoMmWorkload,
)
from repro.workloads.rodinia import RODINIA_APPS, make_rodinia_workload
from repro.workloads.training import TrainingLoop, training_loops

__all__ = [
    "TraceWorkload",
    "Array1D",
    "Array2D",
    "Array3D",
    "PaddingSpec",
    "padded_pitch",
    "SymmetrizationWorkload",
    "NeedlemanWunschWorkload",
    "AdiWorkload",
    "Fft2dWorkload",
    "TinyDnnFcWorkload",
    "KripkeWorkload",
    "HimenoWorkload",
    "POLYBENCH_KERNELS",
    "GemmWorkload",
    "TwoMmWorkload",
    "Jacobi2dWorkload",
    "Fdtd2dWorkload",
    "TrmmWorkload",
    "RODINIA_APPS",
    "make_rodinia_workload",
    "TrainingLoop",
    "training_loops",
]

#: The six case-study workload factories of §6, keyed by paper name.
CASE_STUDIES = {
    "NW": NeedlemanWunschWorkload,
    "MKL FFT": Fft2dWorkload,
    "ADI": AdiWorkload,
    "Tiny_DNN": TinyDnnFcWorkload,
    "Kripke": KripkeWorkload,
    "HimenoBMT": HimenoWorkload,
}
