"""PolyBench/C ADI — Alternating Direction Implicit solver (paper §6.2).

Listing 2 of the paper: the column sweep walks matrix ``u`` down a column
(``u[j][i]``), so consecutive references are one full row pitch apart.
With N a power of two the pitch is a multiple of the 4096-byte L1 mapping
period and every reference of the walk lands in the *same* set — the paper
measures RCD = 1 here, its most extreme conflict.  A 32-byte row pad breaks
the alignment (speedups 1.26x / 1.70x in Table 3).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.descriptors import AffineAccess, affine2d
from repro.trace.record import MemoryAccess
from repro.workloads.base import Array2D, TraceWorkload

#: PolyBench LARGE uses N=1024; scaled to keep one step ~1M accesses while
#: preserving pitch ≡ 0 (mod 4096): 256 doubles/row = 2048 B, so the column
#: walk recycles exactly 2 sets — still far beyond 8-way capacity.
DEFAULT_N = 256

#: The paper's fix: 32 bytes per row.
DEFAULT_PAD = 32


class AdiWorkload(TraceWorkload):
    """ADI, original or padded.

    Args:
        n: Grid size (power of two reproduces the conflict).
        pad_bytes: Row padding on the swept matrices (0 = original).
        steps: Time steps (each = one column sweep + one row sweep).
    """

    def __init__(self, n: int = DEFAULT_N, pad_bytes: int = 0, steps: int = 1) -> None:
        super().__init__()
        if n < 4 or steps <= 0:
            raise ValueError("need n >= 4 and steps >= 1")
        self.n = n
        self.pad_bytes = pad_bytes
        self.steps = steps
        self.name = f"adi{'-padded' if pad_bytes else ''}"
        self.u = Array2D.allocate(self.allocator, "u", n, n, 8, pad_bytes=pad_bytes)
        self.v = Array2D.allocate(self.allocator, "v", n, n, 8, pad_bytes=pad_bytes)
        self.p = Array2D.allocate(self.allocator, "p", n, n, 8, pad_bytes=pad_bytes)
        self.q = Array2D.allocate(self.allocator, "q", n, n, 8, pad_bytes=pad_bytes)
        function = self.builder.function("kernel_adi", file="adi.c")
        # Column sweep (the Listing 2 hot loop).
        function.begin_loop(line=40, label="column_sweep_i")
        function.begin_loop(line=45)
        self.ip_col = function.add_statement(line=46)
        function.end_loop()
        function.begin_loop(line=52)
        self.ip_col_back = function.add_statement(line=53)
        function.end_loop()
        function.end_loop()
        # Row sweep.
        function.begin_loop(line=60, label="row_sweep_i")
        function.begin_loop(line=65)
        self.ip_row = function.add_statement(line=66)
        function.end_loop()
        function.begin_loop(line=72)
        self.ip_row_back = function.add_statement(line=73)
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = DEFAULT_N, steps: int = 1) -> "AdiWorkload":
        """Unpadded PolyBench layout."""
        return cls(n=n, steps=steps)

    @classmethod
    def padded(cls, n: int = DEFAULT_N, steps: int = 1) -> "AdiWorkload":
        """The paper's 32-byte row pad."""
        return cls(n=n, pad_bytes=DEFAULT_PAD, steps=steps)

    def trace(self) -> Iterator[MemoryAccess]:
        n = self.n
        u, v, p, q = self.u, self.v, self.p, self.q
        for _step in range(self.steps):
            # Column sweep: forward substitution down each column of v/u,
            # with row-major helpers p and q.
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    yield self.load(self.ip_col, u.addr(j, i))        # column walk
                    yield self.load(self.ip_col, u.addr(j, i - 1))
                    yield self.load(self.ip_col, u.addr(j, i + 1))
                    yield self.store(self.ip_col, p.addr(i, j))
                    yield self.store(self.ip_col, q.addr(i, j))
                # Back substitution up the column of v.
                for j in range(n - 2, 0, -1):
                    yield self.load(self.ip_col_back, p.addr(i, j))
                    yield self.load(self.ip_col_back, q.addr(i, j))
                    yield self.load(self.ip_col_back, v.addr(j + 1, i))  # column walk
                    yield self.store(self.ip_col_back, v.addr(j, i))
            # Row sweep: same dance along rows (cache friendly direction).
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    yield self.load(self.ip_row, v.addr(i, j))
                    yield self.load(self.ip_row, v.addr(i - 1, j))
                    yield self.load(self.ip_row, v.addr(i + 1, j))
                    yield self.store(self.ip_row, p.addr(i, j))
                    yield self.store(self.ip_row, q.addr(i, j))
                for j in range(n - 2, 0, -1):
                    yield self.load(self.ip_row_back, p.addr(i, j))
                    yield self.load(self.ip_row_back, q.addr(i, j))
                    yield self.load(self.ip_row_back, u.addr(i, j + 1))
                    yield self.store(self.ip_row_back, u.addr(i, j))

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors for all four inner loops.

        Dimensions are (step, i, j) outermost-first.  Column walks declare
        ``(0, 1, ...)`` outer / ``(1, 0, ...)`` inner — one row pitch per
        inner iteration, the Listing 2 signature.  Descending j walks are
        declared ascending: the footprint and window pressure are
        direction-independent.
        """
        n, steps = self.n, self.steps
        m = n - 2  # interior extent
        u, v, p, q = self.u, self.v, self.p, self.q
        col = [(0, 0, steps), (0, 1, m), (1, 0, m)]  # column walk (j inner)
        row = [(0, 0, steps), (1, 0, m), (0, 1, m)]  # row walk (j inner)
        return [
            # Column sweep, forward substitution (adi.c:45).
            affine2d(u, self.ip_col, col, origin=(1, 1)),
            affine2d(u, self.ip_col, col, origin=(1, 0)),
            affine2d(u, self.ip_col, col, origin=(1, 2)),
            affine2d(p, self.ip_col, row, kind="store", origin=(1, 1)),
            affine2d(q, self.ip_col, row, kind="store", origin=(1, 1)),
            # Column sweep, back substitution (adi.c:52).
            affine2d(p, self.ip_col_back, row, origin=(1, 1)),
            affine2d(q, self.ip_col_back, row, origin=(1, 1)),
            affine2d(v, self.ip_col_back, col, origin=(2, 1)),
            affine2d(v, self.ip_col_back, col, kind="store", origin=(1, 1)),
            # Row sweep, forward (adi.c:65) — the cache-friendly direction.
            affine2d(v, self.ip_row, row, origin=(1, 1)),
            affine2d(v, self.ip_row, row, origin=(0, 1)),
            affine2d(v, self.ip_row, row, origin=(2, 1)),
            affine2d(p, self.ip_row, row, kind="store", origin=(1, 1)),
            affine2d(q, self.ip_row, row, kind="store", origin=(1, 1)),
            # Row sweep, back (adi.c:72).
            affine2d(p, self.ip_row_back, row, origin=(1, 1)),
            affine2d(q, self.ip_row_back, row, origin=(1, 1)),
            affine2d(u, self.ip_row_back, row, origin=(1, 2)),
            affine2d(u, self.ip_row_back, row, kind="store", origin=(1, 1)),
        ]
