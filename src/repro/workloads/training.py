"""The 16 labelled training loops of §5.2.

The paper trains its logistic-regression classifier "with 16 representative
loops where eight of them suffer from cache conflicts, while the rest do
not", labelled by full cache simulation.  The original 16 loops are not
itemized in the paper, so this module provides 16 synthetic loop contexts
with the same population structure: eight conflict patterns of varying
severity (few-set column walks, strided folds, moving victims) and eight
clean patterns (streams, coprime strides, stencils, small working sets).

Each entry generates a standalone trace for one loop so experiments can
sample it at any period and ask the ground-truth simulator for its label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List

from repro.cache.geometry import CacheGeometry
from repro.trace.record import MemoryAccess
from repro.workloads.base import Array1D, Array2D, TraceWorkload


class _LoopWorkload(TraceWorkload):
    """A single loop emitting a parameterized address pattern."""

    def __init__(self, name: str, pattern: Callable, *, repeats: int) -> None:
        super().__init__()
        self.name = name
        self.repeats = repeats
        self._pattern = pattern
        function = self.builder.function(f"{name}_fn", file="train.c")
        function.begin_loop(line=1)
        self.ip = function.add_statement(line=2)
        function.end_loop()
        function.finish()

    def trace(self) -> Iterator[MemoryAccess]:
        yield from self._pattern(self)


@dataclass(frozen=True)
class TrainingLoop:
    """One labelled training loop.

    Attributes:
        name: Identifier used in experiment tables.
        has_conflict: The design label (validated against the ground-truth
            simulator by the tests).
        factory: Builds a fresh workload for the loop.
    """

    name: str
    has_conflict: bool
    factory: Callable[[], TraceWorkload]


def _column_walk(sets_used: int, geometry: CacheGeometry, repeats: int):
    """Fold 128 lines onto ``sets_used`` sets — conflict.

    With 8 ways per set, ``128 / sets_used`` >= 16 lines compete per set,
    guaranteeing steady-state eviction for every ``sets_used <= 8``.
    """

    def pattern(workload: _LoopWorkload) -> Iterator[MemoryAccess]:
        lines = 128
        array = workload.allocator.malloc((lines + 1) * geometry.mapping_period, "walk")
        for _ in range(workload.repeats):
            for i in range(lines):
                base = array.start + i * geometry.mapping_period
                offset = (i % sets_used) * geometry.line_size
                yield workload.load(workload.ip, base + offset)

    return pattern


def _moving_victim(geometry: CacheGeometry, burst: int):
    """Hammer one set for ``burst`` misses, then move on.

    The conflict period equals ``burst`` misses: sampling can only catch the
    victim when the mean period undercuts the burst (Figure 6's CP > SP
    condition), so these two loops are the ones a coarse period misses —
    the paper's HimenoBMT-style cases that pull F1 below 1 at period 1212.
    """

    def pattern(workload: _LoopWorkload) -> Iterator[MemoryAccess]:
        array = workload.allocator.malloc(32 * geometry.mapping_period, "victims")
        for repeat in range(workload.repeats):
            victim = repeat % geometry.num_sets
            for i in range(burst):
                address = (
                    array.start
                    + victim * geometry.line_size
                    + (i % 16) * geometry.mapping_period
                )
                yield workload.load(workload.ip, address)

    return pattern


def _stream(geometry: CacheGeometry, lines: int):
    """Sequential sweep over ``lines`` lines — clean."""

    def pattern(workload: _LoopWorkload) -> Iterator[MemoryAccess]:
        array = workload.allocator.malloc(lines * geometry.line_size, "stream")
        for _ in range(workload.repeats):
            for i in range(lines):
                yield workload.load(workload.ip, array.start + i * geometry.line_size)

    return pattern


def _coprime_stride(geometry: CacheGeometry, stride_lines: int, count: int):
    """Strided walk whose stride is coprime with the set count — clean."""

    def pattern(workload: _LoopWorkload) -> Iterator[MemoryAccess]:
        span = count * stride_lines * geometry.line_size
        array = workload.allocator.malloc(span, "strided")
        for _ in range(workload.repeats):
            for i in range(count):
                yield workload.load(
                    workload.ip,
                    array.start + i * stride_lines * geometry.line_size,
                )

    return pattern


def _stencil(geometry: CacheGeometry, rows: int, cols: int):
    """Five-point stencil on an odd-pitch grid — clean."""

    def pattern(workload: _LoopWorkload) -> Iterator[MemoryAccess]:
        grid = Array2D.allocate(workload.allocator, "grid", rows, cols, elem_size=8)
        for _ in range(workload.repeats):
            for i in range(1, rows - 1):
                for j in range(1, cols - 1, 7):
                    yield workload.load(workload.ip, grid.addr(i, j))
                    yield workload.load(workload.ip, grid.addr(i - 1, j))
                    yield workload.load(workload.ip, grid.addr(i + 1, j))

    return pattern


def _gather(entries: int, count: int, seed: int):
    """Pseudo-random gathers over a large table — clean (balanced)."""

    def pattern(workload: _LoopWorkload) -> Iterator[MemoryAccess]:
        import random

        table = Array1D.allocate(workload.allocator, "table", entries, 8)
        rng = random.Random(seed)
        for _ in range(workload.repeats):
            for _i in range(count):
                yield workload.load(workload.ip, table.addr(rng.randrange(entries)))

    return pattern


def training_loops(
    geometry: CacheGeometry = CacheGeometry(), repeats: int = 60
) -> List[TrainingLoop]:
    """The 16 training loops: 8 conflicting, 8 clean.

    Args:
        geometry: L1 geometry the conflict patterns target.
        repeats: Iterations per loop (controls trace length).
    """

    def loop(name: str, conflict: bool, pattern_factory: Callable) -> TrainingLoop:
        return TrainingLoop(
            name=name,
            has_conflict=conflict,
            factory=lambda: _LoopWorkload(name, pattern_factory, repeats=repeats),
        )

    g = geometry
    return [
        # --- eight conflicting loops, decreasing severity ---
        loop("conf-1set", True, _column_walk(1, g, repeats)),
        loop("conf-2set", True, _column_walk(2, g, repeats)),
        loop("conf-3set", True, _column_walk(3, g, repeats)),
        loop("conf-4set", True, _column_walk(4, g, repeats)),
        loop("conf-6set", True, _column_walk(6, g, repeats)),
        loop("conf-8set", True, _column_walk(8, g, repeats)),
        loop("conf-burst512", True, _moving_victim(g, burst=512)),
        loop("conf-burst768", True, _moving_victim(g, burst=768)),
        # --- eight clean loops ---
        loop("clean-stream-2x", False, _stream(g, lines=2 * g.num_sets * g.ways)),
        loop("clean-stream-4x", False, _stream(g, lines=4 * g.num_sets * g.ways)),
        loop("clean-stride-3", False, _coprime_stride(g, stride_lines=3, count=512)),
        loop("clean-stride-5", False, _coprime_stride(g, stride_lines=5, count=512)),
        loop("clean-stride-7", False, _coprime_stride(g, stride_lines=7, count=512)),
        loop("clean-stencil", False, _stencil(g, rows=40, cols=250)),
        loop("clean-gather-a", False, _gather(entries=16384, count=1024, seed=3)),
        loop("clean-gather-b", False, _gather(entries=32768, count=1024, seed=4)),
    ]
