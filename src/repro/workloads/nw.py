"""Rodinia Needleman-Wunsch (paper §6.1, Tables 2/3/4, Listing 1).

Tiled dynamic-programming DNA alignment over two (N+1)x(N+1) ``int``
matrices, ``input_itemsets`` and ``reference``, allocated back to back.
The kernel processes 16x16 tiles along anti-diagonals in two phases
(top-left, then bottom-right); each tile copies a slab of both big matrices
into small locals, computes, and writes back.

The conflicts are structural: the matrix pitch ``(N+1)*4`` is nearly 0
modulo the 4096-byte L1 mapping period, so the 16 consecutive rows a tile
copy touches recycle very few cache sets, and the two matrices' bases are
separated by ``(N+1)^2*4`` — also nearly 0 modulo the period — so both tile
copies in the same iteration fight for the *same* sets (the "inter-array
conflict" of §6.1).  The paper's fix pads ``reference`` rows by 32 bytes
and ``input_itemsets`` rows by 288 bytes.

Loops are labelled with the ``needle.cpp`` line numbers of Table 4 so the
reproduction's reports read like the paper's.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.analysis.descriptors import AffineAccess, affine2d
from repro.trace.record import MemoryAccess
from repro.workloads.base import Array2D, TraceWorkload

#: Rodinia's tile edge.
TILE = 16

#: The paper's pads (reference, input_itemsets), in bytes per row.
PAPER_PADS = (32, 288)

#: Default matrix order; the paper uses 2048, scaled down so one trace stays
#: in the low millions of accesses (the conflict arithmetic is preserved —
#: see class docstring).
DEFAULT_N = 512


class NeedlemanWunschWorkload(TraceWorkload):
    """Tiled NW, original or padded.

    Args:
        n: Sequence length (matrix order is n+1; use multiples of 16).
        reference_pad: Row pad on ``reference`` (paper fix: 32).
        input_pad: Row pad on ``input_itemsets`` (paper fix: 288).
    """

    def __init__(
        self, n: int = DEFAULT_N, reference_pad: int = 0, input_pad: int = 0
    ) -> None:
        super().__init__()
        if n % TILE:
            raise ValueError(f"n must be a multiple of {TILE}: {n}")
        self.n = n
        self.name = f"nw{'-padded' if (reference_pad or input_pad) else ''}"
        order = n + 1
        # Allocation order matches Rodinia: reference then input_itemsets,
        # contiguous on the heap — that adjacency is what aligns them.
        self.reference = Array2D.allocate(
            self.allocator, "reference", order, order, elem_size=4,
            pad_bytes=reference_pad,
        )
        self.input_itemsets = Array2D.allocate(
            self.allocator, "input_itemsets", order, order, elem_size=4,
            pad_bytes=input_pad,
        )
        # Tile-local scratch (Rodinia's __shared__-style locals).
        self.temp_local = Array2D.allocate(
            self.allocator, "temp_local", TILE + 1, TILE + 1, elem_size=4
        )
        self.ref_local = Array2D.allocate(
            self.allocator, "ref_local", TILE, TILE, elem_size=4
        )
        self._ips: Dict[int, int] = {}
        self._declare_image()

    @classmethod
    def original(cls, n: int = DEFAULT_N) -> "NeedlemanWunschWorkload":
        """The unpadded Rodinia layout."""
        return cls(n=n)

    @classmethod
    def padded(cls, n: int = DEFAULT_N) -> "NeedlemanWunschWorkload":
        """The paper's 32/288-byte row pads."""
        return cls(n=n, reference_pad=PAPER_PADS[0], input_pad=PAPER_PADS[1])

    def _declare_image(self) -> None:
        """Declare the 11 Table-4 loops of needle.cpp."""
        function = self.builder.function("nw_cpu", file="needle.cpp")
        # Initialization loops.
        function.begin_loop(line=273)
        self._ips[273] = function.add_statement(line=274)
        function.end_loop()
        function.begin_loop(line=289)
        self._ips[289] = function.add_statement(line=290)
        function.end_loop()
        # Phase 1 (top-left): per-tile copy / copy / compute / writeback.
        function.begin_loop(line=120, label="phase1_tiles")
        function.begin_loop(line=128)
        self._ips[128] = function.add_statement(line=129)
        function.end_loop()
        function.begin_loop(line=138)
        self._ips[138] = function.add_statement(line=139)
        function.end_loop()
        function.begin_loop(line=147)
        self._ips[147] = function.add_statement(line=148)
        function.end_loop()
        function.begin_loop(line=159)
        self._ips[159] = function.add_statement(line=160)
        function.end_loop()
        function.end_loop()
        # Phase 2 (bottom-right).
        function.begin_loop(line=180, label="phase2_tiles")
        function.begin_loop(line=189)
        self._ips[189] = function.add_statement(line=190)
        function.end_loop()
        function.begin_loop(line=199)
        self._ips[199] = function.add_statement(line=200)
        function.end_loop()
        function.begin_loop(line=208)
        self._ips[208] = function.add_statement(line=209)
        function.end_loop()
        function.begin_loop(line=220)
        self._ips[220] = function.add_statement(line=221)
        function.end_loop()
        function.end_loop()
        # Traceback.
        function.begin_loop(line=320)
        self._ips[320] = function.add_statement(line=321)
        function.end_loop()
        function.finish()

    def loop_name(self, line: int) -> str:
        """Report name of the loop declared at ``needle.cpp:line``."""
        if line not in self._ips:
            raise KeyError(f"no loop at needle.cpp:{line}")
        return f"needle.cpp:{line}"

    def access_patterns(self) -> List[AffineAccess]:
        """Static descriptors for the copy/compute/writeback tile loops.

        Tile iteration is declared as a full ``blocks x blocks`` rectangle
        (the anti-diagonal schedule covers a triangle per phase; footprints
        are unchanged).  Note the known modelling limit this workload
        exercises: NW's measured conflicts are *inter-array* — tile copies
        of ``input_itemsets``, ``reference`` and the locals fighting for
        the same sets — which per-access window analysis cannot see, so the
        static report is expected to under-predict here (see
        ``examples/static_vs_dynamic.py``).
        """
        blocks = self.n // TILE
        order = self.n + 1
        inp, ref = self.input_itemsets, self.reference
        temp, local = self.temp_local, self.ref_local
        patterns: List[AffineAccess] = [
            # needle.cpp:273 - first row, then first column.
            affine2d(inp, self._ips[273], [(0, 1, order)], kind="store"),
            affine2d(inp, self._ips[273], [(1, 0, order)], kind="store"),
            # needle.cpp:289 - row-major reference fill.
            affine2d(
                inp, self._ips[289], [(1, 0, order - 1), (0, 0, order - 1)],
                origin=(1, 0),
            ),
            affine2d(
                ref, self._ips[289], [(1, 0, order - 1), (0, 1, order - 1)],
                kind="store", origin=(1, 1),
            ),
        ]
        for copy_in, copy_ref, compute, writeback in (
            (128, 138, 147, 159),
            (189, 199, 208, 220),
        ):
            tiles_in = [(TILE, 0, blocks), (0, TILE, blocks)]
            patterns.extend(
                [
                    affine2d(
                        inp, self._ips[copy_in],
                        tiles_in + [(1, 0, TILE + 1), (0, 1, TILE + 1)],
                    ),
                    affine2d(
                        temp, self._ips[copy_in],
                        [(0, 0, blocks), (0, 0, blocks),
                         (1, 0, TILE + 1), (0, 1, TILE + 1)],
                        kind="store",
                    ),
                    affine2d(
                        ref, self._ips[copy_ref],
                        tiles_in + [(1, 0, TILE), (0, 1, TILE)],
                        origin=(1, 1),
                    ),
                    affine2d(
                        local, self._ips[copy_ref],
                        [(0, 0, blocks), (0, 0, blocks), (1, 0, TILE), (0, 1, TILE)],
                        kind="store",
                    ),
                    affine2d(
                        temp, self._ips[compute],
                        [(0, 0, blocks), (0, 0, blocks), (1, 0, TILE), (0, 1, TILE)],
                    ),
                    affine2d(
                        inp, self._ips[writeback],
                        tiles_in + [(1, 0, TILE), (0, 1, TILE)],
                        kind="store", origin=(1, 1),
                    ),
                ]
            )
        # needle.cpp:320 - diagonal traceback (descending both indices).
        patterns.append(
            affine2d(inp, self._ips[320], [(-1, -1, self.n)], origin=(self.n, self.n))
        )
        return patterns

    def trace(self) -> Iterator[MemoryAccess]:
        yield from self._init_loops()
        blocks = self.n // TILE
        # Phase 1: anti-diagonals growing from the top-left corner.
        for diagonal in range(blocks):
            for bx in range(diagonal + 1):
                by = diagonal - bx
                yield from self._tile(by, bx, lines=(128, 138, 147, 159))
        # Phase 2: anti-diagonals shrinking toward the bottom-right corner.
        for diagonal in range(blocks - 2, -1, -1):
            for bx in range(diagonal + 1):
                by = diagonal - bx
                yield from self._tile(
                    blocks - 1 - by, blocks - 1 - bx, lines=(189, 199, 208, 220)
                )
        yield from self._traceback()

    def _init_loops(self) -> Iterator[MemoryAccess]:
        order = self.n + 1
        # needle.cpp:273 - first row/column score initialization.
        ip = self._ips[273]
        for j in range(order):
            yield self.store(ip, self.input_itemsets.addr(0, j), size=4)
        for i in range(order):
            yield self.store(ip, self.input_itemsets.addr(i, 0), size=4)
        # needle.cpp:289 - fill the reference (similarity) matrix; a plain
        # row-major stream, so heavy but conflict-free (Table 4: 64 sets).
        ip = self._ips[289]
        for i in range(1, order):
            for j in range(1, order):
                yield self.load(ip, self.input_itemsets.addr(i, 0), size=4)
                yield self.store(ip, self.reference.addr(i, j), size=4)

    def _tile(self, by: int, bx: int, lines) -> Iterator[MemoryAccess]:
        copy_in, copy_ref, compute, writeback = lines
        row0, col0 = by * TILE, bx * TILE
        # Copy input tile (+ boundary) into the local temp (Listing 1).
        ip = self._ips[copy_in]
        for ty in range(TILE + 1):
            for tx in range(TILE + 1):
                yield self.load(ip, self.input_itemsets.addr(row0 + ty, col0 + tx), size=4)
                yield self.store(ip, self.temp_local.addr(ty, tx), size=4)
        # Copy reference tile into the local ref.
        ip = self._ips[copy_ref]
        for ty in range(TILE):
            for tx in range(TILE):
                yield self.load(ip, self.reference.addr(row0 + 1 + ty, col0 + 1 + tx), size=4)
                yield self.store(ip, self.ref_local.addr(ty, tx), size=4)
        # Compute on the locals (cache-resident: few misses, Table 4's
        # tiny-contribution compute loops).
        ip = self._ips[compute]
        for ty in range(1, TILE + 1):
            for tx in range(1, TILE + 1):
                yield self.load(ip, self.temp_local.addr(ty - 1, tx - 1), size=4)
                yield self.load(ip, self.temp_local.addr(ty - 1, tx), size=4)
                yield self.load(ip, self.temp_local.addr(ty, tx - 1), size=4)
                yield self.load(ip, self.ref_local.addr(ty - 1, tx - 1), size=4)
                yield self.store(ip, self.temp_local.addr(ty, tx), size=4)
        # Write the tile back.
        ip = self._ips[writeback]
        for ty in range(TILE):
            for tx in range(TILE):
                yield self.load(ip, self.temp_local.addr(ty + 1, tx + 1), size=4)
                yield self.store(ip, self.input_itemsets.addr(row0 + 1 + ty, col0 + 1 + tx), size=4)

    def _traceback(self) -> Iterator[MemoryAccess]:
        # needle.cpp:320 - walk the optimal path from the bottom-right.
        ip = self._ips[320]
        i = j = self.n
        while i > 0 and j > 0:
            yield self.load(ip, self.input_itemsets.addr(i - 1, j - 1), size=4)
            yield self.load(ip, self.input_itemsets.addr(i - 1, j), size=4)
            yield self.load(ip, self.input_itemsets.addr(i, j - 1), size=4)
            i -= 1
            j -= 1
