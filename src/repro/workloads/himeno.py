"""Riken HimenoBMT — 19-point Jacobi Poisson solver (paper §6.6, Listing 5).

Per grid point the kernel reads 19 values across seven float arrays
(``a`` with 4 planes, ``b`` and ``c`` with 3 each, ``p``, ``wrk1``,
``bnd``) and writes ``wrk2``.  With power-of-two extents every array plane
is a multiple of the 4096-byte mapping period, so all ~19 same-(i,j,k)
references collapse onto the same few cache sets — and because (i,j,k)
advances every iteration, the victim set *moves* constantly: the conflict
period is tiny, which is exactly why the paper needs high-frequency
sampling (27x overhead) to catch this one.

The paper's fix pads the 1st and 2nd dimensions (here: +1 element on each
inner extent).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.trace.record import MemoryAccess
from repro.trace.allocator import Allocation
from repro.workloads.base import TraceWorkload

FLOAT_SIZE = 4

#: Grid extents (mimax, mjmax, mkmax); powers of two alias every plane.
DEFAULT_DIMS = (32, 32, 32)


class _Matrix4D:
    """Himeno's ``Matrix`` struct: ``m[n][i][j][k]`` with padded extents."""

    def __init__(
        self,
        allocation: Allocation,
        planes: int,
        dims: tuple,
        extents: tuple,
    ) -> None:
        self.allocation = allocation
        self.planes = planes
        self.dims = dims
        self.extents = extents

    def addr(self, n: int, i: int, j: int, k: int) -> int:
        ei, ej, ek = self.extents
        linear = ((n * ei + i) * ej + j) * ek + k
        return self.allocation.start + linear * FLOAT_SIZE


class HimenoWorkload(TraceWorkload):
    """The Jacobi loop nest of Listing 5, original or padded.

    Args:
        dims: (imax, jmax, kmax) grid extents.
        pad: Extra elements added to the 1st and 2nd padded dimensions
            (the paper's optimization; 0 = original).
        iterations: Jacobi sweeps.
    """

    def __init__(
        self,
        dims: tuple = DEFAULT_DIMS,
        pad: int = 0,
        iterations: int = 1,
    ) -> None:
        super().__init__()
        imax, jmax, kmax = dims
        if min(imax, jmax, kmax) < 4 or iterations <= 0:
            raise ValueError("dims must be >= 4 and iterations positive")
        self.dims = dims
        self.pad = pad
        self.iterations = iterations
        self.name = f"himeno{'-padded' if pad else ''}"
        extents = (imax, jmax + pad, kmax + pad)
        self._extents = extents

        def matrix(label: str, planes: int) -> _Matrix4D:
            size = planes * extents[0] * extents[1] * extents[2] * FLOAT_SIZE
            return _Matrix4D(self.allocator.malloc(size, label), planes, dims, extents)

        # Allocation order follows himenoBMT.c's initmt().
        self.p = matrix("p", 1)
        self.bnd = matrix("bnd", 1)
        self.wrk1 = matrix("wrk1", 1)
        self.wrk2 = matrix("wrk2", 1)
        self.a = matrix("a", 4)
        self.b = matrix("b", 3)
        self.c = matrix("c", 3)

        function = self.builder.function("jacobi", file="himenoBMT.c")
        function.begin_loop(line=4, label="i")
        function.begin_loop(line=5, label="j")
        function.begin_loop(line=6, label="k")
        self.ip_body = function.add_statement(line=7, count=19)
        function.end_loop()
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, dims: tuple = DEFAULT_DIMS, iterations: int = 1) -> "HimenoWorkload":
        """Power-of-two extents: every plane aliases."""
        return cls(dims=dims, pad=0, iterations=iterations)

    @classmethod
    def padded(cls, dims: tuple = DEFAULT_DIMS, iterations: int = 1) -> "HimenoWorkload":
        """The paper's dimension padding (+1 on the two inner extents)."""
        return cls(dims=dims, pad=1, iterations=iterations)

    def trace(self) -> Iterator[MemoryAccess]:
        imax, jmax, kmax = self.dims
        ip = self.ip_body
        a, b, c = self.a, self.b, self.c
        p, bnd, wrk1, wrk2 = self.p, self.bnd, self.wrk1, self.wrk2
        for _it in range(self.iterations):
            for i in range(1, imax - 1):
                for j in range(1, jmax - 1):
                    for k in range(1, kmax - 1):
                        reads: List[int] = [
                            a.addr(0, i, j, k),
                            p.addr(0, i + 1, j, k),
                            a.addr(1, i, j, k),
                            p.addr(0, i, j + 1, k),
                            a.addr(2, i, j, k),
                            p.addr(0, i, j, k + 1),
                            b.addr(0, i, j, k),
                            p.addr(0, i + 1, j + 1, k),
                            p.addr(0, i - 1, j + 1, k),
                            b.addr(1, i, j, k),
                            p.addr(0, i, j + 1, k + 1),
                            p.addr(0, i, j - 1, k + 1),
                            b.addr(2, i, j, k),
                            p.addr(0, i + 1, j, k + 1),
                            p.addr(0, i - 1, j, k + 1),
                            c.addr(0, i, j, k),
                            p.addr(0, i - 1, j, k),
                            c.addr(1, i, j, k),
                            p.addr(0, i, j - 1, k),
                            c.addr(2, i, j, k),
                            p.addr(0, i, j, k - 1),
                            wrk1.addr(0, i, j, k),
                            a.addr(3, i, j, k),
                            p.addr(0, i, j, k),
                            bnd.addr(0, i, j, k),
                        ]
                        for address in reads:
                            yield self.load(ip, address, size=FLOAT_SIZE)
                        yield self.store(ip, wrk2.addr(0, i, j, k), size=FLOAT_SIZE)
