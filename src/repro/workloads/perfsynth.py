"""Synthetic perf-headline workload: the ``lru_stream`` sweep.

The perf harness times every engine backend on a streaming stride sweep
(the ``lru_stream`` headline in ``BENCH_*.json``).  Registering the same
pattern as a real workload lets every front end — ``ccprof
profile``/``analyze``, the service, the docs' quickstart — drive the
perf headline through any registered engine (``--engine sharded``), not
just the benchmark harness.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.record import MemoryAccess
from repro.workloads.base import Array1D, TraceWorkload


class LruStreamWorkload(TraceWorkload):
    """Stride sweep over a ``lines``-line footprint (the perf headline).

    The original variant sweeps a footprint far beyond L1, so at steady
    state every line misses — a pure eviction-pressure workload.  The
    optimized variant is the classic blocking transformation: the same
    access count, tiled so each pass stays L1-resident.
    """

    name = "lru_stream"

    def __init__(
        self, *, lines: int = 8192, stride: int = 8, sweeps: int = 1
    ) -> None:
        super().__init__()
        function = self.builder.function("stream_kernel", file="stream.c")
        function.begin_loop(line=3)
        self.ip = function.add_statement(line=4)
        function.end_loop()
        function.finish()
        # lines x 64B expressed as 8-byte elements.
        self.buf = Array1D.allocate(self.allocator, "stream_buf", lines * 8, 8)
        self.stride = stride
        self.sweeps = sweeps

    @classmethod
    def original(
        cls, *, lines: int = 8192, stride: int = 8, sweeps: int = 1
    ) -> "LruStreamWorkload":
        return cls(lines=lines, stride=stride, sweeps=sweeps)

    @classmethod
    def blocked(
        cls, *, lines: int = 8192, stride: int = 8, sweeps: int = 1
    ) -> "LruStreamWorkload":
        """The tiled variant: same total accesses, L1-resident passes."""
        tile = min(lines, 256)
        return cls(
            lines=tile, stride=stride, sweeps=sweeps * max(1, lines // tile)
        )

    def trace(self) -> Iterator[MemoryAccess]:
        start = self.buf.allocation.start
        steps = (self.buf.length * self.buf.elem_size) // self.stride
        for _sweep in range(self.sweeps):
            for index in range(steps):
                yield self.load(self.ip, start + index * self.stride)
