"""Kripke particle-edit kernel (paper §6.5, Listing 4).

    for (z) for (d) for (g)
        part += w * (*sdom.psi)(g, d, z) * vol;

``psi`` is laid out group-major — element (g, d, z) lives at linear index
``(g * D + d) * Z + z`` — but the loop nest iterates g innermost, so each
innermost step jumps ``D * Z * 8`` bytes.  With power-of-two direction/zone
counts that stride is a multiple of the L1 mapping period: every psi
reference of the inner loop lands in the same set.

The paper's fix is not padding but a *loop-order* transformation ("simply
transforming to row-order"): iterate g, d, z with z innermost, making psi
accesses unit-stride.  Speedups of 94.6x / 11.1x (loop only) follow.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.record import MemoryAccess
from repro.workloads.base import Array1D, Array3D, TraceWorkload

#: Problem shape: groups x directions x zones.  D * Z * 8 = 32 KiB, a
#: multiple of the 4 KiB mapping period — the conflict condition.
DEFAULT_GROUPS = 32
DEFAULT_DIRECTIONS = 32
DEFAULT_ZONES = 128


class KripkeWorkload(TraceWorkload):
    """The particle-edit reduction, column order (original) or row order.

    Args:
        groups: Energy groups (G).
        directions: Angular directions (D).
        zones: Spatial zones (Z).
        row_order: False = the original conflicting nest (z, d, g);
            True = the optimized nest (g, d, z).
        sweeps: Number of kernel invocations.
    """

    def __init__(
        self,
        groups: int = DEFAULT_GROUPS,
        directions: int = DEFAULT_DIRECTIONS,
        zones: int = DEFAULT_ZONES,
        row_order: bool = False,
        sweeps: int = 2,
    ) -> None:
        super().__init__()
        if min(groups, directions, zones, sweeps) <= 0:
            raise ValueError("all dimensions and sweeps must be positive")
        self.groups = groups
        self.directions = directions
        self.zones = zones
        self.row_order = row_order
        self.sweeps = sweeps
        self.name = f"kripke{'-roworder' if row_order else ''}"
        # psi(g, d, z): dim0 = g, dim1 = d, dim2 = z.
        self.psi = Array3D.allocate(
            self.allocator, "psi", groups, directions, zones, elem_size=8
        )
        self.volume = Array1D.allocate(self.allocator, "volume", zones, 8)
        self.direction_weights = Array1D.allocate(self.allocator, "dirs_w", directions, 8)
        function = self.builder.function("particle_edit", file="Kripke/Kernel.cpp")
        function.begin_loop(line=1, label="zones")
        self.ip_vol = function.add_statement(line=2)
        function.begin_loop(line=3, label="directions")
        self.ip_w = function.add_statement(line=4)
        function.begin_loop(line=5, label="groups")
        self.ip_psi = function.add_statement(line=6)
        function.end_loop()
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, **kwargs) -> "KripkeWorkload":
        """The conflicting column-order nest of Listing 4."""
        return cls(row_order=False, **kwargs)

    @classmethod
    def optimized(cls, **kwargs) -> "KripkeWorkload":
        """The paper's row-order transformation."""
        return cls(row_order=True, **kwargs)

    def trace(self) -> Iterator[MemoryAccess]:
        psi, volume, weights = self.psi, self.volume, self.direction_weights
        for _sweep in range(self.sweeps):
            if self.row_order:
                # Optimized: z innermost matches psi's layout (unit stride).
                for g in range(self.groups):
                    for d in range(self.directions):
                        yield self.load(self.ip_w, weights.addr(d))
                        for z in range(self.zones):
                            yield self.load(self.ip_vol, volume.addr(z))
                            yield self.load(self.ip_psi, psi.addr(g, d, z))
            else:
                # Original: g innermost jumps D*Z*8 bytes per step.
                for z in range(self.zones):
                    yield self.load(self.ip_vol, volume.addr(z))
                    for d in range(self.directions):
                        yield self.load(self.ip_w, weights.addr(d))
                        for g in range(self.groups):
                            yield self.load(self.ip_psi, psi.addr(g, d, z))
