"""2D FFT with power-of-two dimensions (the MKL FFT case, paper §6.3).

"Cache conflict is a well-known issue for multidimensional Fourier
transformation with data of 2-power sizes on each dimension."  A 2D FFT
runs 1D transforms over every row (unit stride — harmless) and then over
every column: the column pass strides by the full row pitch, which for a
2^k x 2^k complex matrix is a multiple of the L1 mapping period — every
butterfly operand of a column lands in one cache set.

MKL is closed source, so CCProf "cannot attribute the samples to the code
but can associate samples to anonymous code blocks"; this workload builds
its program image with ``anonymous=True`` to reproduce exactly that: loops
report as ``mkl_fft2d@<ip>``.

The paper's fix pads each row by 8 (complex) elements.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.record import MemoryAccess
from repro.workloads.base import Array2D, TraceWorkload

#: Bytes per complex-double element.
COMPLEX_SIZE = 16

#: The paper transforms 4096x4096; scaled so a full 2D pass stays ~1M
#: accesses (128 x 128 keeps the pitch at 2048 B — still ≡ 0 mod 2048,
#: recycling 2 of 64 sets on the column pass).
DEFAULT_N = 128

#: The paper's fix: 8 elements per row.
DEFAULT_PAD_ELEMENTS = 8


def _bit_reverse(value: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class Fft2dWorkload(TraceWorkload):
    """Row-column 2D FFT over complex doubles, original or padded.

    Args:
        n: Transform size per dimension (power of two).
        pad_elements: Complex elements of padding per row (paper fix: 8).
    """

    def __init__(self, n: int = DEFAULT_N, pad_elements: int = 0) -> None:
        super().__init__()
        if n < 4 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 4: {n}")
        self.n = n
        self.pad_elements = pad_elements
        self.name = f"mkl-fft{'-padded' if pad_elements else ''}"
        self.data = Array2D.allocate(
            self.allocator,
            "fft_data",
            rows=n,
            cols=n,
            elem_size=COMPLEX_SIZE,
            pad_bytes=pad_elements * COMPLEX_SIZE,
        )
        # Twiddle-factor table: read-only, unit stride, stays hot.
        self.twiddles = Array2D.allocate(
            self.allocator, "twiddles", rows=1, cols=n, elem_size=COMPLEX_SIZE
        )
        function = self.builder.function("mkl_fft2d", file="<mkl>", anonymous=True)
        function.begin_loop(line=100, label="row_pass")
        function.begin_loop(line=101)
        self.ip_row = function.add_statement(line=102)
        function.end_loop()
        function.end_loop()
        function.begin_loop(line=200, label="column_pass")
        function.begin_loop(line=201)
        self.ip_col = function.add_statement(line=202)
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(cls, n: int = DEFAULT_N) -> "Fft2dWorkload":
        """Unpadded power-of-two layout."""
        return cls(n=n)

    @classmethod
    def padded(cls, n: int = DEFAULT_N) -> "Fft2dWorkload":
        """The paper's 8-element row pad."""
        return cls(n=n, pad_elements=DEFAULT_PAD_ELEMENTS)

    def _fft_1d_accesses(self, ip: int, element_addr) -> Iterator[MemoryAccess]:
        """Radix-2 decimation-in-time butterfly access pattern.

        Args:
            ip: Instruction pointer of the pass.
            element_addr: index -> address mapping for the 1D slice.
        """
        n = self.n
        bits = n.bit_length() - 1
        # Bit-reversal permutation (reads + writes of swapped pairs).
        for index in range(n):
            swapped = _bit_reverse(index, bits)
            if swapped > index:
                yield self.load(ip, element_addr(index), size=COMPLEX_SIZE)
                yield self.load(ip, element_addr(swapped), size=COMPLEX_SIZE)
                yield self.store(ip, element_addr(index), size=COMPLEX_SIZE)
                yield self.store(ip, element_addr(swapped), size=COMPLEX_SIZE)
        # log2(n) butterfly stages.
        half = 1
        while half < n:
            for start in range(0, n, half * 2):
                for offset in range(half):
                    top = element_addr(start + offset)
                    bottom = element_addr(start + offset + half)
                    yield self.load(ip, self.twiddles.addr(0, offset), size=COMPLEX_SIZE)
                    yield self.load(ip, top, size=COMPLEX_SIZE)
                    yield self.load(ip, bottom, size=COMPLEX_SIZE)
                    yield self.store(ip, top, size=COMPLEX_SIZE)
                    yield self.store(ip, bottom, size=COMPLEX_SIZE)
            half *= 2

    def trace(self) -> Iterator[MemoryAccess]:
        data = self.data
        # Pass 1: FFT every row (unit stride within the row).
        for row in range(self.n):
            yield from self._fft_1d_accesses(
                self.ip_row, lambda index, row=row: data.addr(row, index)
            )
        # Pass 2: FFT every column (full-pitch stride — the conflict pass).
        for col in range(self.n):
            yield from self._fft_1d_accesses(
                self.ip_col, lambda index, col=col: data.addr(index, col)
            )
