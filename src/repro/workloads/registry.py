"""Workload registry: one place that resolves a spec string to a workload.

Historically the ``name`` / ``name:optimized`` resolution lived inside the
CLI, which meant anything else wanting to build workloads by name — the
profiling service, the load harness, tests — had to import ``repro.cli``.
The registry inverts that layering: the CLI and the service both delegate
here.

Specs take the form ``name[:variant]`` where ``variant`` is ``original``
(default) or ``optimized``.  Factories may also accept sizing keyword
arguments (``n``, ``sweeps``...), which the service forwards from a job's
``params`` so multi-tenant load tests can run many tiny jobs instead of a
few paper-sized ones.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ReproError
from repro.workloads.adi import AdiWorkload
from repro.workloads.base import TraceWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.himeno import HimenoWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.perfsynth import LruStreamWorkload
from repro.workloads.polybench import (
    Fdtd2dWorkload,
    GemmWorkload,
    Jacobi2dWorkload,
    TrmmWorkload,
    TwoMmWorkload,
)
from repro.workloads.rodinia import RODINIA_APPS, make_rodinia_workload
from repro.workloads.symmetrization import SymmetrizationWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload

WorkloadFactory = Callable[..., TraceWorkload]

#: (original factory, optimized factory) per registered workload name.
WORKLOADS: Dict[str, Tuple[WorkloadFactory, WorkloadFactory]] = {
    "symmetrization": (SymmetrizationWorkload.original, SymmetrizationWorkload.padded),
    "nw": (NeedlemanWunschWorkload.original, NeedlemanWunschWorkload.padded),
    "adi": (AdiWorkload.original, AdiWorkload.padded),
    "fft": (Fft2dWorkload.original, Fft2dWorkload.padded),
    "tinydnn": (TinyDnnFcWorkload.original, TinyDnnFcWorkload.padded),
    "kripke": (KripkeWorkload.original, KripkeWorkload.optimized),
    "himeno": (HimenoWorkload.original, HimenoWorkload.padded),
    "gemm": (GemmWorkload.original, GemmWorkload.padded),
    "2mm": (TwoMmWorkload.original, TwoMmWorkload.padded),
    "trmm": (TrmmWorkload.original, TrmmWorkload.padded),
    "jacobi-2d": (Jacobi2dWorkload.original, Jacobi2dWorkload.padded),
    "fdtd-2d": (Fdtd2dWorkload.original, Fdtd2dWorkload.padded),
    "lru_stream": (LruStreamWorkload.original, LruStreamWorkload.blocked),
}


def workload_names() -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """``(case_study_names, rodinia_names)`` in registration order."""
    return tuple(WORKLOADS), tuple(RODINIA_APPS)


def resolve_workload(spec: str, **params: object) -> TraceWorkload:
    """Build a workload from ``name`` or ``name:variant``.

    Args:
        spec: Registry spec, e.g. ``adi`` or ``adi:optimized``.
        params: Extra keyword arguments forwarded to the factory (sizing
            knobs such as ``n=64``).  A factory that rejects a parameter
            raises :class:`ReproError` rather than ``TypeError`` so callers
            get the family exit code.

    Raises:
        ReproError: Unknown name, unknown variant, or unsupported params.
    """
    name, _, variant = spec.partition(":")
    if variant not in ("", "original", "optimized"):
        raise ReproError(
            f"unknown variant {variant!r}; use 'original' or 'optimized'"
        )
    if name in WORKLOADS:
        original, optimized = WORKLOADS[name]
        factory: WorkloadFactory = (
            optimized if variant == "optimized" else original
        )
        try:
            return factory(**params)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            # TypeError: unknown keyword; ValueError: factory-level sizing
            # validation (e.g. nw requires n % 16 == 0).  Both are caller
            # errors, not internal ones.
            raise ReproError(
                f"workload {name!r} rejected params {sorted(params)}: {exc}"
            ) from exc
    if name in RODINIA_APPS:
        if variant == "optimized":
            raise ReproError(f"no optimized variant for Rodinia app {name!r}")
        if params:
            raise ReproError(
                f"Rodinia app {name!r} takes no params, got {sorted(params)}"
            )
        return make_rodinia_workload(name)
    known = ", ".join(sorted({*WORKLOADS, *RODINIA_APPS}))
    raise ReproError(f"unknown workload {name!r}; known: {known}")
