"""Padding arithmetic.

The paper's optimizations append bytes to array rows so that consecutive
rows stop mapping to the same cache sets.  These helpers express and reason
about such pads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError


@dataclass(frozen=True)
class PaddingSpec:
    """Padding applied to one array.

    Attributes:
        label: The array's allocation label.
        row_pad_bytes: Bytes appended to each row (2-D arrays).
        dim_pads: Extra elements per dimension (3-D arrays), keyed by
            dimension index.
    """

    label: str
    row_pad_bytes: int = 0
    dim_pads: Dict[int, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.row_pad_bytes < 0:
            raise AnalysisError(f"row pad must be non-negative: {self.row_pad_bytes}")
        if self.dim_pads is None:
            object.__setattr__(self, "dim_pads", {})


def padded_pitch(cols: int, elem_size: int, pad_bytes: int) -> int:
    """Row pitch in bytes after padding."""
    return cols * elem_size + pad_bytes


def row_set_stride(pitch: int, geometry: CacheGeometry) -> float:
    """Cache sets advanced per row, as a real number.

    An integer multiple of ``geometry.num_sets`` (i.e. stride ~ 0 mod N)
    means every row starts in the same set — the conflict condition.
    """
    return (pitch / geometry.line_size) % geometry.num_sets


def rows_per_set_cycle(pitch: int, geometry: CacheGeometry) -> int:
    """How many consecutive rows map to distinct set phases.

    The number of distinct values of ``row * pitch mod mapping_period``
    before they repeat: ``period / gcd(pitch, period)``.  Small values
    (e.g. 4 for the unpadded symmetrization matrix) mean column walks
    recycle few sets; the ideal pad drives this to ``num_sets`` or more.
    """
    period = geometry.mapping_period
    return period // math.gcd(pitch, period)


def recommend_row_pad(
    cols: int, elem_size: int, geometry: CacheGeometry, alignment: int = 1
) -> int:
    """Smallest pad making the row phase cycle through every set.

    Searches pads (multiples of ``alignment``) until the row start
    addresses cycle through at least ``num_sets`` distinct line phases —
    the condition under which a column walk of the array spreads across
    the whole cache.
    """
    if cols <= 0 or elem_size <= 0:
        raise AnalysisError("cols and elem_size must be positive")
    if alignment <= 0:
        raise AnalysisError(f"alignment must be positive: {alignment}")
    target_cycle = geometry.num_sets * geometry.line_size
    for pad in range(0, geometry.mapping_period + 1, alignment):
        pitch = padded_pitch(cols, elem_size, pad)
        if rows_per_set_cycle(pitch, geometry) * geometry.line_size >= target_cycle:
            return pad
    raise AnalysisError(
        f"no pad up to one mapping period fixes cols={cols}, elem={elem_size}"
    )
