"""Tiny-DNN fully-connected forward propagation (paper §6.4, Listing 3).

    for (cnn_size_t i = 0; i < out_size_; i++)
      for (cnn_size_t c = 0; c < in_size_; c++)
        a[i] += W[c * out_size_ + i] * in[c];

The weight matrix is ``in_size x out_size`` row-major, but the inner loop
walks a *column* of it: stride ``out_size * sizeof(float)`` bytes.  For
power-of-two layer widths the stride divides the L1 mapping period and the
whole column folds onto a handful of sets.  The paper's fix pads the weight
array's rows.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.record import MemoryAccess
from repro.workloads.base import Array1D, Array2D, TraceWorkload

#: tiny-dnn stores weights as float.
FLOAT_SIZE = 4

#: Layer shape: a CIFAR-style fully-connected layer with power-of-two
#: widths (the conflict-triggering configuration).  The column stride is
#: ``out_size * 4 = 1024`` bytes, so the weight walk recycles 4 of 64 sets.
DEFAULT_IN_SIZE = 512
DEFAULT_OUT_SIZE = 256

#: Pad: one cache line of extra floats per weight row.
DEFAULT_PAD_ELEMENTS = 16


class TinyDnnFcWorkload(TraceWorkload):
    """Fully-connected forward pass, original or padded.

    Args:
        in_size: Input neurons.
        out_size: Output neurons.
        pad_elements: Extra floats per weight row (0 = original).
        batches: Number of forward passes (training iterates many).
    """

    def __init__(
        self,
        in_size: int = DEFAULT_IN_SIZE,
        out_size: int = DEFAULT_OUT_SIZE,
        pad_elements: int = 0,
        batches: int = 2,
    ) -> None:
        super().__init__()
        if in_size <= 0 or out_size <= 0 or batches <= 0:
            raise ValueError("layer sizes and batches must be positive")
        self.in_size = in_size
        self.out_size = out_size
        self.pad_elements = pad_elements
        self.batches = batches
        self.name = f"tiny-dnn-fc{'-padded' if pad_elements else ''}"
        self.weights = Array2D.allocate(
            self.allocator,
            "W",
            rows=in_size,
            cols=out_size,
            elem_size=FLOAT_SIZE,
            pad_bytes=pad_elements * FLOAT_SIZE,
        )
        self.input = Array1D.allocate(self.allocator, "in", in_size, FLOAT_SIZE)
        self.activation = Array1D.allocate(self.allocator, "a", out_size, FLOAT_SIZE)
        function = self.builder.function("fc_forward", file="fully_connected_layer.h")
        function.begin_loop(line=98, label="out_neurons")
        function.begin_loop(line=99)
        self.ip_mac = function.add_statement(line=100)
        function.end_loop()
        function.end_loop()
        function.finish()

    @classmethod
    def original(
        cls, in_size: int = DEFAULT_IN_SIZE, out_size: int = DEFAULT_OUT_SIZE
    ) -> "TinyDnnFcWorkload":
        """Unpadded weight layout."""
        return cls(in_size=in_size, out_size=out_size)

    @classmethod
    def padded(
        cls, in_size: int = DEFAULT_IN_SIZE, out_size: int = DEFAULT_OUT_SIZE
    ) -> "TinyDnnFcWorkload":
        """Weight rows padded by one cache line."""
        return cls(
            in_size=in_size, out_size=out_size, pad_elements=DEFAULT_PAD_ELEMENTS
        )

    def trace(self) -> Iterator[MemoryAccess]:
        ip = self.ip_mac
        for _batch in range(self.batches):
            for i in range(self.out_size):
                for c in range(self.in_size):
                    # W[c * out_size + i]: column walk of the weight matrix.
                    yield self.load(ip, self.weights.addr(c, i), size=FLOAT_SIZE)
                    yield self.load(ip, self.input.addr(c), size=FLOAT_SIZE)
                    yield self.store(ip, self.activation.addr(i), size=FLOAT_SIZE)
