"""Cache geometry and address-bit extraction.

Figure 1 of the paper: a reference address splits into tag, index, and
offset bits.  The index bits select the cache set, the tag identifies the
line within the set, and the offset picks the byte within the line.

The default geometry everywhere in this reproduction is the paper's L1:
32 KiB, 8-way set-associative, 64 B lines → 64 sets, because "throughout the
evaluation section, we measure the RCDs on the L1 cache, which is 8-way
set-associative with total 64 cache sets" (§5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level.

    Attributes:
        line_size: Cache line (block) size in bytes; power of two.
        num_sets: Number of sets; power of two.
        ways: Associativity (lines per set).
    """

    line_size: int = 64
    num_sets: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_size):
            raise GeometryError(f"line size must be a power of two: {self.line_size}")
        if not _is_power_of_two(self.num_sets):
            raise GeometryError(f"set count must be a power of two: {self.num_sets}")
        if self.ways <= 0:
            raise GeometryError(f"associativity must be positive: {self.ways}")

    @classmethod
    def from_capacity(cls, capacity: int, line_size: int = 64, ways: int = 8) -> "CacheGeometry":
        """Build a geometry from total capacity in bytes.

        Example:
            >>> CacheGeometry.from_capacity(32 * 1024)
            CacheGeometry(line_size=64, num_sets=64, ways=8)
        """
        if not _is_power_of_two(capacity):
            raise GeometryError(f"capacity must be a power of two: {capacity}")
        denominator = line_size * ways
        if capacity % denominator:
            raise GeometryError(
                f"capacity {capacity} not divisible by line_size*ways = {denominator}"
            )
        return cls(line_size=line_size, num_sets=capacity // denominator, ways=ways)

    @property
    def capacity(self) -> int:
        """Total cache capacity in bytes."""
        return self.line_size * self.num_sets * self.ways

    @property
    def offset_bits(self) -> int:
        """Number of low bits selecting the byte within a line."""
        return self.line_size.bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Number of bits selecting the cache set."""
        return self.num_sets.bit_length() - 1

    @property
    def modular_indexing(self) -> bool:
        """Whether the set index is the plain modular index bits.

        True here; hashed geometries (e.g.
        :class:`~repro.cache.hashing.XorFoldedGeometry`) override it so
        static analyses that reason in residue arithmetic over
        :attr:`mapping_period` can refuse rather than silently compute
        wrong set indices.
        """
        return True

    @property
    def mapping_period(self) -> int:
        """Bytes after which addresses map to the same set again.

        Two addresses whose distance is a multiple of this period index the
        same set; this is the quantity padding perturbs.
        """
        return self.line_size * self.num_sets

    def line_address(self, address: int) -> int:
        """Line-aligned base address of ``address``."""
        return address & ~(self.line_size - 1)

    def line_number(self, address: int) -> int:
        """Global line number of ``address`` (address / line size)."""
        return address >> self.offset_bits

    def set_index(self, address: int) -> int:
        """Index bits of ``address``: which set it maps to (Figure 1)."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag(self, address: int) -> int:
        """Tag bits of ``address``: line identity within its set."""
        return address >> (self.offset_bits + self.index_bits)

    def offset(self, address: int) -> int:
        """Offset bits of ``address``: byte position within the line."""
        return address & (self.line_size - 1)

    # -- vectorized column variants ------------------------------------
    #
    # Each *_array method is the columnar counterpart of the scalar method
    # above it, operating elementwise on a u8 address column.  The scalar
    # forms remain the reference semantics; the differential tests assert
    # bit-identical results.

    def line_addresses(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`line_address` over an address column."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        return addresses & np.uint64(~(self.line_size - 1) & 0xFFFF_FFFF_FFFF_FFFF)

    def line_numbers(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`line_number` over an address column."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        return addresses >> np.uint64(self.offset_bits)

    def set_indices(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`set_index` over an address column."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        return (addresses >> np.uint64(self.offset_bits)) & np.uint64(
            self.num_sets - 1
        )

    def tags(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`tag` over an address column."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        return addresses >> np.uint64(self.offset_bits + self.index_bits)

    def offsets(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`offset` over an address column."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        return addresses & np.uint64(self.line_size - 1)

    def lines_spanned_array(
        self, addresses: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`lines_spanned` over address/size columns."""
        sizes = np.asarray(sizes)
        if sizes.size and int(sizes.min()) <= 0:
            raise GeometryError("sizes must be positive")
        addresses = np.asarray(addresses, dtype=np.uint64)
        first = addresses >> np.uint64(self.offset_bits)
        last = (addresses + sizes.astype(np.uint64) - np.uint64(1)) >> np.uint64(
            self.offset_bits
        )
        return (last - first + np.uint64(1)).astype(np.int64)

    def lines_spanned(self, address: int, size: int) -> int:
        """Number of distinct cache lines an access of ``size`` bytes touches."""
        if size <= 0:
            raise GeometryError(f"size must be positive: {size}")
        first = self.line_number(address)
        last = self.line_number(address + size - 1)
        return last - first + 1

    def describe(self) -> str:
        """Human-readable one-line summary."""
        kib = self.capacity / 1024
        return (
            f"{kib:g} KiB, {self.ways}-way, {self.num_sets} sets, "
            f"{self.line_size} B lines"
        )


#: The paper's evaluation L1: 32 KiB, 8-way, 64 sets, 64 B lines.
PAPER_L1 = CacheGeometry(line_size=64, num_sets=64, ways=8)

#: The paper's per-core L2 on both machines: 256 KiB, 8-way.
PAPER_L2 = CacheGeometry.from_capacity(256 * 1024, line_size=64, ways=8)

#: Broadwell E7-4830v4 shared LLC: 35 MiB (modelled as 16-way).  35 MiB is
#: not a power of two; we round down to 32 MiB to keep indexable geometry.
BROADWELL_LLC = CacheGeometry.from_capacity(32 * 1024 * 1024, line_size=64, ways=16)

#: Skylake E3-1240v5 shared LLC: 8 MiB, 16-way.
SKYLAKE_LLC = CacheGeometry.from_capacity(8 * 1024 * 1024, line_size=64, ways=16)
