"""Multi-level cache hierarchy simulation.

Table 3 of the paper reports miss reductions at L1, L2, and LLC after
padding.  This module chains set-associative levels: a reference that misses
level *i* is forwarded to level *i+1*.  The model is uniprocessor (like the
paper's ground-truth Dinero IV) with inclusive-on-fill behaviour and no
write-back traffic modelling — stores count as references at each level they
reach, which is the granularity the paper's PMU counters observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.cache.geometry import (
    BROADWELL_LLC,
    PAPER_L1,
    PAPER_L2,
    SKYLAKE_LLC,
    CacheGeometry,
)
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.trace.record import MemoryAccess


@dataclass(frozen=True)
class LevelStats:
    """Summary of one level after a hierarchy run."""

    name: str
    accesses: int
    hits: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        """Misses per access at this level."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class HierarchyResult:
    """Per-level statistics for one simulated trace."""

    levels: List[LevelStats]

    def level(self, name: str) -> LevelStats:
        """Look up a level by name (e.g. ``"L1"``)."""
        for entry in self.levels:
            if entry.name == name:
                return entry
        raise KeyError(f"no cache level named {name!r}")

    def misses(self) -> List[int]:
        """Miss counts in level order."""
        return [entry.misses for entry in self.levels]


class CacheHierarchy:
    """A chain of set-associative cache levels.

    Args:
        geometries: Per-level geometries, innermost (L1) first.
        names: Level names; defaults to L1, L2, L3, ...
        policy: Replacement policy used at every level.
    """

    def __init__(
        self,
        geometries: Sequence[CacheGeometry],
        names: Sequence[str] = (),
        policy: str = "lru",
    ) -> None:
        if not geometries:
            raise ValueError("a hierarchy needs at least one level")
        if names and len(names) != len(geometries):
            raise ValueError("names and geometries must have equal length")
        self.names = list(names) or [f"L{i + 1}" for i in range(len(geometries))]
        self.levels = [SetAssociativeCache(g, policy=policy) for g in geometries]

    @classmethod
    def broadwell(cls) -> "CacheHierarchy":
        """The paper's Intel Broadwell (E7-4830v4) per-core view."""
        return cls([PAPER_L1, PAPER_L2, BROADWELL_LLC], names=["L1", "L2", "LLC"])

    @classmethod
    def skylake(cls) -> "CacheHierarchy":
        """The paper's Intel Skylake (E3-1240v5) per-core view."""
        return cls([PAPER_L1, PAPER_L2, SKYLAKE_LLC], names=["L1", "L2", "LLC"])

    def access(self, address: int, ip: int = 0) -> int:
        """Reference one address.

        Returns:
            The number of levels that missed (0 = L1 hit, ``len(levels)`` =
            the reference went to memory).
        """
        depth = 0
        for cache in self.levels:
            result = cache.access(address, ip)
            if result.hit:
                return depth
            depth += 1
        return depth

    def access_record(self, access: MemoryAccess) -> int:
        """Reference a record, splitting line straddlers; returns the
        deepest miss depth among the touched lines."""
        geometry = self.levels[0].geometry
        spanned = geometry.lines_spanned(access.address, access.size)
        if spanned == 1:
            return self.access(access.address, access.ip)
        base = geometry.line_address(access.address)
        return max(
            self.access(base + index * geometry.line_size, access.ip)
            for index in range(spanned)
        )

    def run_trace(self, stream: Iterable[MemoryAccess]) -> HierarchyResult:
        """Drive a trace through every level and summarize."""
        for access in stream:
            self.access_record(access)
        return self.result()

    def result(self) -> HierarchyResult:
        """Snapshot current per-level statistics."""
        summaries = [
            LevelStats(
                name=name,
                accesses=cache.stats.accesses,
                hits=cache.stats.hits,
                misses=cache.stats.misses,
            )
            for name, cache in zip(self.names, self.levels)
        ]
        return HierarchyResult(levels=summaries)

    def level_stats(self, name: str) -> CacheStats:
        """Full :class:`CacheStats` of a level (per-set counters etc.)."""
        for level_name, cache in zip(self.names, self.levels):
            if level_name == name:
                return cache.stats
        raise KeyError(f"no cache level named {name!r}")


def miss_reduction(before: HierarchyResult, after: HierarchyResult) -> List[float]:
    """Fractional per-level miss reduction between two runs.

    Positive values mean the ``after`` run misses less; this is the
    quantity Table 3 reports (e.g. "LLC reduction 52.7%").  Levels with no
    misses before report 0.0.
    """
    reductions: List[float] = []
    for level_before, level_after in zip(before.levels, after.levels):
        if level_before.misses == 0:
            reductions.append(0.0)
        else:
            delta = level_before.misses - level_after.misses
            reductions.append(delta / level_before.misses)
    return reductions
