"""Trace-driven cache simulator substrate.

The paper validates CCProf against the Dinero IV uniprocessor cache
simulator fed by Pin memory traces.  This package is our functional
equivalent:

- :mod:`repro.cache.geometry` — cache geometry and the index/tag/offset bit
  extraction from Figure 1 of the paper.
- :mod:`repro.cache.replacement` — LRU, FIFO, random, and tree-PLRU
  replacement policies.
- :mod:`repro.cache.set_assoc` — the single-level set-associative cache.
- :mod:`repro.cache.hierarchy` — multi-level (L1/L2/LLC) simulation used for
  the Table 3 miss-reduction measurements.
- :mod:`repro.cache.classify` — classical three-C miss classification
  (cold/capacity/conflict) via a fully-associative shadow cache.
- :mod:`repro.cache.stats` — per-set, per-IP, and per-level counters.
- :mod:`repro.cache.dinero` — a Dinero-IV-flavoured front end (config
  strings, ``.din`` trace runner).
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePlruPolicy,
    make_policy,
)
from repro.cache.set_assoc import AccessResult, SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult, LevelStats
from repro.cache.classify import MissClass, ThreeCClassifier
from repro.cache.stats import CacheStats
from repro.cache.dinero import DineroConfig, simulate_dinero_trace
from repro.cache.reuse import ReuseProfile, conflict_gap, reuse_distances
from repro.cache.translation import (
    FramePolicy,
    PageMapper,
    PhysicallyIndexedHierarchy,
)
from repro.cache.hashing import XorFoldedGeometry, dissolves_stride
from repro.cache.prefetch import NextLinePrefetcher, PrefetchStats, StridePrefetcher
from repro.cache.victim import VictimCachedL1, VictimCacheStats

__all__ = [
    "ReuseProfile",
    "reuse_distances",
    "conflict_gap",
    "FramePolicy",
    "PageMapper",
    "PhysicallyIndexedHierarchy",
    "VictimCachedL1",
    "VictimCacheStats",
    "XorFoldedGeometry",
    "dissolves_stride",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "PrefetchStats",
    "CacheGeometry",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "TreePlruPolicy",
    "make_policy",
    "SetAssociativeCache",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyResult",
    "LevelStats",
    "MissClass",
    "ThreeCClassifier",
    "CacheStats",
    "DineroConfig",
    "simulate_dinero_trace",
]
