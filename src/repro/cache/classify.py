"""Classical three-C miss classification.

The paper's §1 recalls the classical model [Patterson & Hennessy]: cold
(compulsory), capacity, and conflict misses.  The standard operational
definition, which this module implements:

- **cold**: the line was never referenced before;
- **capacity**: a non-cold miss that would *also* miss in a fully-associative
  LRU cache of the same total capacity — the working set simply does not
  fit;
- **conflict**: a non-cold miss that the fully-associative cache would have
  hit — the miss exists only because of restricted set placement.

CCProf itself never computes this (it infers conflicts statistically from
RCD), but the classifier provides the ground truth our accuracy experiments
(Fig. 8) and correctness tests validate against, playing the role of the
paper's Dinero IV runs.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.trace.record import MemoryAccess


class MissClass(enum.Enum):
    """Outcome classes for one cache reference."""

    HIT = "hit"
    COLD = "cold"
    CAPACITY = "capacity"
    CONFLICT = "conflict"


class _FullyAssociativeLru:
    """Fully-associative LRU cache of ``capacity_lines`` lines.

    Implemented over :class:`collections.OrderedDict` so every operation is
    O(1): membership, move-to-front, and LRU eviction.
    """

    def __init__(self, capacity_lines: int) -> None:
        self.capacity_lines = capacity_lines
        self._lines: "OrderedDict[int, None]" = OrderedDict()

    def access(self, line: int) -> bool:
        """Reference ``line``; return True on hit."""
        if line in self._lines:
            self._lines.move_to_end(line)
            return True
        if len(self._lines) >= self.capacity_lines:
            self._lines.popitem(last=False)
        self._lines[line] = None
        return False


@dataclass
class ClassificationCounts:
    """Aggregate three-C tallies, overall and per instruction pointer."""

    hits: int = 0
    cold: int = 0
    capacity: int = 0
    conflict: int = 0
    by_ip: Dict[int, Dict[MissClass, int]] = field(default_factory=dict)

    @property
    def misses(self) -> int:
        """Total misses of any class."""
        return self.cold + self.capacity + self.conflict

    @property
    def accesses(self) -> int:
        """Total references classified."""
        return self.hits + self.misses

    def conflict_fraction(self) -> float:
        """Conflict misses over total misses (0 if no misses)."""
        return self.conflict / self.misses if self.misses else 0.0

    def record(self, ip: int, outcome: MissClass) -> None:
        """Tally one classified reference."""
        if outcome is MissClass.HIT:
            self.hits += 1
        elif outcome is MissClass.COLD:
            self.cold += 1
        elif outcome is MissClass.CAPACITY:
            self.capacity += 1
        else:
            self.conflict += 1
        if ip:
            per_ip = self.by_ip.setdefault(ip, {})
            per_ip[outcome] = per_ip.get(outcome, 0) + 1


class ThreeCClassifier:
    """Classify every reference of a trace as hit/cold/capacity/conflict.

    Runs the set-associative cache and a same-capacity fully-associative
    shadow cache in lock step.
    """

    def __init__(self, geometry: CacheGeometry = CacheGeometry(), policy: str = "lru") -> None:
        self.geometry = geometry
        self.cache = SetAssociativeCache(geometry, policy=policy)
        self._shadow = _FullyAssociativeLru(geometry.num_sets * geometry.ways)
        self._seen: Set[int] = set()
        self.counts = ClassificationCounts()

    def classify(self, address: int, ip: int = 0) -> MissClass:
        """Classify one reference and update both caches."""
        line = self.geometry.line_number(address)
        real_hit = self.cache.access(address, ip).hit
        shadow_hit = self._shadow.access(line)
        if real_hit:
            outcome = MissClass.HIT
        elif line not in self._seen:
            outcome = MissClass.COLD
        elif shadow_hit:
            outcome = MissClass.CONFLICT
        else:
            outcome = MissClass.CAPACITY
        self._seen.add(line)
        self.counts.record(ip, outcome)
        return outcome

    def classify_record(self, access: MemoryAccess) -> MissClass:
        """Classify a :class:`MemoryAccess` (first line only for straddlers).

        Line-straddling accesses are rare in the strided numeric kernels this
        suite models; the first touched line carries the classification and
        remaining lines are still simulated for state fidelity.
        """
        spanned = self.geometry.lines_spanned(access.address, access.size)
        outcome = self.classify(access.address, access.ip)
        if spanned > 1:
            base = self.geometry.line_address(access.address)
            for index in range(1, spanned):
                self.classify(base + index * self.geometry.line_size, access.ip)
        return outcome

    def run_trace(self, stream: Iterable[MemoryAccess]) -> ClassificationCounts:
        """Classify a whole trace; return the tallies."""
        for access in stream:
            self.classify_record(access)
        return self.counts
