"""Hashed set indexing.

A hardware countermeasure to the conflicts CCProf detects: instead of
taking the index bits directly (Figure 1), some caches *hash* higher
address bits into the set index — Intel LLC slice selection is the famous
example — so that strided walks whose stride is a multiple of the plain
mapping period no longer collapse onto one set.

:class:`XorFoldedGeometry` implements the simplest such scheme: XOR-fold
one or more tag chunks into the index.  It subclasses
:class:`~repro.cache.geometry.CacheGeometry`, so every simulator component
(set-associative cache, hierarchy, sampler) works with it unchanged —
which is exactly what the ablation uses to ask "would index hashing have
saved these kernels?".

Note the detection asymmetry this creates: CCProf computes set indices
from sampled addresses using the *documented* plain geometry; if the
hardware secretly hashes, the profiler's set attribution is wrong in
detail but the RCD statistics still work, because hashing is a bijection
per line and balanced traffic stays balanced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.errors import GeometryError


@dataclass(frozen=True)
class XorFoldedGeometry(CacheGeometry):
    """Geometry whose set index XORs in ``fold_levels`` tag chunks.

    With ``fold_levels = k``, the effective index is::

        index ^ tag[0:index_bits] ^ tag[index_bits:2*index_bits] ^ ...

    (k chunks of the tag, lowest first).  ``fold_levels = 0`` degenerates
    to the plain geometry.
    """

    fold_levels: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fold_levels < 0:
            raise GeometryError(f"fold levels must be >= 0: {self.fold_levels}")

    @property
    def modular_indexing(self) -> bool:
        """Folding breaks residue arithmetic unless degenerate (0 levels)."""
        return self.fold_levels == 0

    def set_index(self, address: int) -> int:
        index = super().set_index(address)
        tag = super().tag(address)
        mask = self.num_sets - 1
        for _ in range(self.fold_levels):
            index ^= tag & mask
            tag >>= self.index_bits
        return index & mask

    def set_indices(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized hashed :meth:`set_index` over an address column."""
        indices = super().set_indices(addresses)
        tags = super().tags(addresses)
        mask = np.uint64(self.num_sets - 1)
        shift = np.uint64(self.index_bits)
        for _ in range(self.fold_levels):
            indices = indices ^ (tags & mask)
            tags = tags >> shift
        return indices & mask

    def tag(self, address: int) -> int:
        # The tag must still uniquely identify the line within its set.
        # Keeping the full plain tag is sufficient (and what hardware
        # stores): two lines with equal plain tag and equal hashed index
        # also have equal plain index, hence are the same line.
        return super().tag(address)


def dissolves_stride(stride: int, geometry: XorFoldedGeometry, probes: int = 64) -> bool:
    """Whether hashing spreads a stride that plainly aliases.

    Walks ``probes`` steps at ``stride`` and reports True when the hashed
    indices cover more than one set while the plain indices cover one.
    """
    if stride <= 0:
        raise GeometryError(f"stride must be positive: {stride}")
    plain = CacheGeometry(
        line_size=geometry.line_size,
        num_sets=geometry.num_sets,
        ways=geometry.ways,
    )
    plain_sets = {plain.set_index(i * stride) for i in range(probes)}
    hashed_sets = {geometry.set_index(i * stride) for i in range(probes)}
    return len(plain_sets) == 1 and len(hashed_sets) > 1
