"""Single-level set-associative cache simulation.

This is the workhorse of the reproduction: every exact-RCD measurement,
three-C classification, and hierarchy simulation drives one or more of these
caches over a memory trace.  The access path is written for throughput —
LRU (the common case and Dinero IV's default) uses a specialized
list-per-set fast path; other policies go through the generic
:class:`~repro.cache.replacement.ReplacementPolicy` machinery.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Set

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.trace.record import MemoryAccess


class AccessResult(NamedTuple):
    """Outcome of one cache reference.

    Attributes:
        hit: Whether the line was resident.
        set_index: Set the address maps to.
        tag: Tag of the referenced line.
        evicted_tag: Tag evicted to make room, or None (hit / cold fill into
            an empty way).
        cold: True when the referenced line had never been cached before
            (a compulsory miss in three-C terms).
    """

    hit: bool
    set_index: int
    tag: int
    evicted_tag: Optional[int]
    cold: bool

    @property
    def miss(self) -> bool:
        """Convenience inverse of :attr:`hit`."""
        return not self.hit


class SetAssociativeCache:
    """A set-associative cache with pluggable replacement.

    Args:
        geometry: Cache geometry (sets, ways, line size).
        policy: Replacement policy name (``lru``, ``fifo``, ``random``,
            ``plru``).
        seed: Seed for the random policy.

    The cache is indexed by virtual address, matching the paper's
    virtually-indexed L1 model (§3.1).
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        self.geometry = geometry
        self.policy_name = policy.lower()
        self.stats = CacheStats(geometry=geometry)
        self._seen_lines: Set[int] = set()
        # LRU fast path: each set is a list of tags, most recent first.
        self._lru_sets: Optional[List[List[int]]] = None
        self._tags: Optional[List[List[Optional[int]]]] = None
        self._policies: Optional[List[ReplacementPolicy]] = None
        if self.policy_name == "lru":
            self._lru_sets = [[] for _ in range(geometry.num_sets)]
        else:
            self._tags = [[None] * geometry.ways for _ in range(geometry.num_sets)]
            self._policies = [
                make_policy(self.policy_name, geometry.ways, seed=seed + index)
                for index in range(geometry.num_sets)
            ]

    def reset(self) -> None:
        """Flush contents and statistics."""
        self.__init__(self.geometry, self.policy_name)

    def access(self, address: int, ip: int = 0) -> AccessResult:
        """Reference one address; update contents and statistics.

        Accesses are modelled at line granularity; callers that care about
        line-straddling references should split them (see
        :meth:`access_record`).
        """
        geometry = self.geometry
        set_index = geometry.set_index(address)
        tag = geometry.tag(address)
        line = geometry.line_number(address)

        stats = self.stats
        stats.accesses += 1
        stats.set_accesses[set_index] += 1

        if self._lru_sets is not None:
            result = self._access_lru(set_index, tag, line)
        else:
            result = self._access_generic(set_index, tag, line)

        if result.miss:
            stats.misses += 1
            stats.set_misses[set_index] += 1
            if result.cold:
                stats.cold_misses += 1
            if result.evicted_tag is not None:
                stats.evictions += 1
            if ip:
                stats.ip_misses[ip] += 1
        else:
            stats.hits += 1
        return result

    def _access_lru(self, set_index: int, tag: int, line: int) -> AccessResult:
        ways = self.geometry.ways
        lru_set = self._lru_sets[set_index]  # type: ignore[index]
        if tag in lru_set:
            if lru_set[0] != tag:
                lru_set.remove(tag)
                lru_set.insert(0, tag)
            return AccessResult(True, set_index, tag, None, False)
        cold = line not in self._seen_lines
        if cold:
            self._seen_lines.add(line)
        evicted: Optional[int] = None
        if len(lru_set) >= ways:
            evicted = lru_set.pop()
        lru_set.insert(0, tag)
        return AccessResult(False, set_index, tag, evicted, cold)

    def _access_generic(self, set_index: int, tag: int, line: int) -> AccessResult:
        tags = self._tags[set_index]  # type: ignore[index]
        policy = self._policies[set_index]  # type: ignore[index]
        for way, resident in enumerate(tags):
            if resident == tag:
                policy.touch(way)
                return AccessResult(True, set_index, tag, None, False)
        cold = line not in self._seen_lines
        if cold:
            self._seen_lines.add(line)
        evicted: Optional[int] = None
        empty_way = next((way for way, resident in enumerate(tags) if resident is None), None)
        if empty_way is not None:
            way = empty_way
        else:
            way = policy.victim()
            evicted = tags[way]
        tags[way] = tag
        policy.fill(way)
        return AccessResult(False, set_index, tag, evicted, cold)

    def access_record(self, access: MemoryAccess) -> List[AccessResult]:
        """Reference a :class:`MemoryAccess`, splitting line-straddlers.

        Returns one :class:`AccessResult` per distinct line touched.
        """
        geometry = self.geometry
        spanned = geometry.lines_spanned(access.address, access.size)
        if spanned == 1:
            return [self.access(access.address, access.ip)]
        base = geometry.line_address(access.address)
        return [
            self.access(base + index * geometry.line_size, access.ip)
            for index in range(spanned)
        ]

    def run_trace(self, stream: Iterable[MemoryAccess]) -> CacheStats:
        """Drive a full trace through the cache; return the stats object."""
        for access in stream:
            self.access_record(access)
        return self.stats

    def resident_tags(self, set_index: int) -> List[int]:
        """Tags currently resident in ``set_index`` (order unspecified)."""
        if self._lru_sets is not None:
            return list(self._lru_sets[set_index])
        return [tag for tag in self._tags[set_index] if tag is not None]  # type: ignore[index]

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is currently resident."""
        set_index = self.geometry.set_index(address)
        return self.geometry.tag(address) in self.resident_tags(set_index)
