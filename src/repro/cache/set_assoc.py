"""Single-level set-associative cache simulation.

This is the workhorse of the reproduction: every exact-RCD measurement,
three-C classification, and hierarchy simulation drives one or more of these
caches over a memory trace.  The access path is written for throughput —
LRU (the common case and Dinero IV's default) uses a specialized
list-per-set fast path; other policies go through the generic
:class:`~repro.cache.replacement.ReplacementPolicy` machinery.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Set, Union

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.trace.batch import DEFAULT_BATCH_SIZE, TraceBatch, as_batches
from repro.trace.record import MemoryAccess


class AccessResult(NamedTuple):
    """Outcome of one cache reference.

    Attributes:
        hit: Whether the line was resident.
        set_index: Set the address maps to.
        tag: Tag of the referenced line.
        evicted_tag: Tag evicted to make room, or None (hit / cold fill into
            an empty way).
        cold: True when the referenced line had never been cached before
            (a compulsory miss in three-C terms).
    """

    hit: bool
    set_index: int
    tag: int
    evicted_tag: Optional[int]
    cold: bool

    @property
    def miss(self) -> bool:
        """Convenience inverse of :attr:`hit`."""
        return not self.hit


class BatchResult(NamedTuple):
    """Columnar outcome of one batched cache reference run.

    One entry per (line-granular) access, in trace order — the batched
    counterpart of a list of :class:`AccessResult`.

    Attributes:
        hit: Boolean hit mask.
        set_index: Set each access mapped to (u8).
        tag: Tag of each referenced line (u8).
        evicted: Boolean mask of accesses that evicted a line.
        evicted_tag: Evicted tag where ``evicted`` is set (0 elsewhere —
            consult the mask, not the value).
        cold: Boolean compulsory-miss mask.
    """

    hit: np.ndarray
    set_index: np.ndarray
    tag: np.ndarray
    evicted: np.ndarray
    evicted_tag: np.ndarray
    cold: np.ndarray

    @property
    def miss(self) -> np.ndarray:
        """Boolean miss mask (inverse of :attr:`hit`)."""
        return ~self.hit

    def __len__(self) -> int:
        return int(self.hit.size)

    def scalar_results(self) -> List[AccessResult]:
        """Materialize as per-access :class:`AccessResult` records."""
        return [
            AccessResult(
                hit=bool(h),
                set_index=s,
                tag=t,
                evicted_tag=et if e else None,
                cold=bool(c),
            )
            for h, s, t, e, et, c in zip(
                self.hit.tolist(),
                self.set_index.tolist(),
                self.tag.tolist(),
                self.evicted.tolist(),
                self.evicted_tag.tolist(),
                self.cold.tolist(),
            )
        ]


def split_line_straddlers(
    geometry: CacheGeometry,
    addresses: np.ndarray,
    ips: np.ndarray,
    sizes: np.ndarray,
) -> tuple:
    """Expand line-straddling accesses into one access per line touched.

    The columnar analogue of the loop in ``access_record``; shared by the
    single-process cache and the sharded simulator so both split
    identically.  Returns ``(addresses, ips)`` (the inputs unchanged when
    nothing straddles).
    """
    spanned = geometry.lines_spanned_array(addresses, sizes)
    if not spanned.size or int(spanned.max()) == 1:
        return addresses, ips
    row = np.repeat(np.arange(spanned.size), spanned)
    starts = np.concatenate(([0], np.cumsum(spanned)[:-1]))
    within = (np.arange(row.size) - starts[row]).astype(np.uint64)
    bases = geometry.line_addresses(addresses)
    expanded = bases[row] + within * np.uint64(geometry.line_size)
    return expanded, ips[row]


class SetAssociativeCache:
    """A set-associative cache with pluggable replacement.

    Args:
        geometry: Cache geometry (sets, ways, line size).
        policy: Replacement policy name (``lru``, ``fifo``, ``random``,
            ``plru``).
        seed: Seed for the random policy.

    The cache is indexed by virtual address, matching the paper's
    virtually-indexed L1 model (§3.1).
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        self.geometry = geometry
        self.policy_name = policy.lower()
        self.stats = CacheStats(geometry=geometry)
        # High-water marks of stats already flushed into obs counters, so
        # flush_metrics() charges deltas — scalar and batched runs over
        # the same trace then produce identical counter totals.
        self._flushed = (0, 0, 0, 0, 0)
        self._seen_lines: Set[int] = set()
        # LRU fast path: each set is a list of tags, most recent first.
        self._lru_sets: Optional[List[List[int]]] = None
        self._tags: Optional[List[List[Optional[int]]]] = None
        self._policies: Optional[List[ReplacementPolicy]] = None
        if self.policy_name == "lru":
            self._lru_sets = [[] for _ in range(geometry.num_sets)]
        else:
            self._tags = [[None] * geometry.ways for _ in range(geometry.num_sets)]
            self._policies = [
                make_policy(self.policy_name, geometry.ways, seed=seed + index)
                for index in range(geometry.num_sets)
            ]

    def reset(self) -> None:
        """Flush contents and statistics."""
        self.__init__(self.geometry, self.policy_name)

    def access(self, address: int, ip: int = 0) -> AccessResult:
        """Reference one address; update contents and statistics.

        Accesses are modelled at line granularity; callers that care about
        line-straddling references should split them (see
        :meth:`access_record`).
        """
        geometry = self.geometry
        set_index = geometry.set_index(address)
        tag = geometry.tag(address)
        line = geometry.line_number(address)

        stats = self.stats
        stats.accesses += 1
        stats.set_accesses[set_index] += 1

        if self._lru_sets is not None:
            result = self._access_lru(set_index, tag, line)
        else:
            result = self._access_generic(set_index, tag, line)

        if result.miss:
            stats.misses += 1
            stats.set_misses[set_index] += 1
            if result.cold:
                stats.cold_misses += 1
            if result.evicted_tag is not None:
                stats.evictions += 1
            if ip:
                stats.ip_misses[ip] += 1
        else:
            stats.hits += 1
        return result

    def _access_lru(self, set_index: int, tag: int, line: int) -> AccessResult:
        ways = self.geometry.ways
        lru_set = self._lru_sets[set_index]  # type: ignore[index]
        if tag in lru_set:
            if lru_set[0] != tag:
                lru_set.remove(tag)
                lru_set.insert(0, tag)
            return AccessResult(True, set_index, tag, None, False)
        cold = line not in self._seen_lines
        if cold:
            self._seen_lines.add(line)
        evicted: Optional[int] = None
        if len(lru_set) >= ways:
            evicted = lru_set.pop()
        lru_set.insert(0, tag)
        return AccessResult(False, set_index, tag, evicted, cold)

    def _access_generic(self, set_index: int, tag: int, line: int) -> AccessResult:
        tags = self._tags[set_index]  # type: ignore[index]
        policy = self._policies[set_index]  # type: ignore[index]
        for way, resident in enumerate(tags):
            if resident == tag:
                policy.touch(way)
                return AccessResult(True, set_index, tag, None, False)
        cold = line not in self._seen_lines
        if cold:
            self._seen_lines.add(line)
        evicted: Optional[int] = None
        empty_way = next((way for way, resident in enumerate(tags) if resident is None), None)
        if empty_way is not None:
            way = empty_way
        else:
            way = policy.victim()
            evicted = tags[way]
        tags[way] = tag
        policy.fill(way)
        return AccessResult(False, set_index, tag, evicted, cold)

    def access_record(self, access: MemoryAccess) -> List[AccessResult]:
        """Reference a :class:`MemoryAccess`, splitting line-straddlers.

        Returns one :class:`AccessResult` per distinct line touched.
        """
        geometry = self.geometry
        spanned = geometry.lines_spanned(access.address, access.size)
        if spanned == 1:
            return [self.access(access.address, access.ip)]
        base = geometry.line_address(access.address)
        return [
            self.access(base + index * geometry.line_size, access.ip)
            for index in range(spanned)
        ]

    def run_trace(self, stream: Iterable[MemoryAccess]) -> CacheStats:
        """Drive a full trace through the cache; return the stats object."""
        for access in stream:
            self.access_record(access)
        self.flush_metrics()
        return self.stats

    def flush_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Charge stats accrued since the last flush into obs counters.

        The batched path flushes per batch; scalar drivers flush once per
        run — per-batch/per-run aggregates only, never per-access
        callbacks.  Deltas (not totals) are charged, so interleaved scalar
        and batched calls never double-count, and a scalar run and a
        batched run over the same trace land identical counter totals.
        """
        registry = registry if registry is not None else get_registry()
        if not registry.enabled:
            return
        stats = self.stats
        accesses, hits, misses, evictions, cold = self._flushed
        if stats.accesses != accesses:
            registry.counter("cache.accesses").inc(stats.accesses - accesses)
        if stats.hits != hits:
            registry.counter("cache.hits").inc(stats.hits - hits)
        if stats.misses != misses:
            registry.counter("cache.misses").inc(stats.misses - misses)
        if stats.evictions != evictions:
            registry.counter("cache.evictions").inc(stats.evictions - evictions)
        if stats.cold_misses != cold:
            registry.counter("cache.cold_misses").inc(stats.cold_misses - cold)
        self._flushed = (
            stats.accesses, stats.hits, stats.misses, stats.evictions,
            stats.cold_misses,
        )

    # -- batched (columnar) access path --------------------------------
    #
    # The methods below are the vectorized counterpart of access() /
    # access_record() / run_trace().  Cache state is shared with the
    # scalar path (same _lru_sets / _tags / _policies / _seen_lines), so
    # scalar and batched calls may be interleaved freely; the scalar path
    # remains the reference semantics and the differential tests assert
    # access-for-access equality.

    def access_batch(
        self,
        batch: TraceBatch,
        *,
        split_lines: bool = False,
    ) -> BatchResult:
        """Reference a whole :class:`TraceBatch`; update contents and stats.

        With ``split_lines=False`` (default) each record is one reference
        at its raw address — the semantics of :meth:`access`, and what the
        PEBS sampler models.  With ``split_lines=True`` line-straddling
        records are expanded into one reference per line touched — the
        semantics of :meth:`access_record` — and the result has one entry
        per expanded reference.
        """
        addresses = batch.address
        ips = batch.ip
        if split_lines:
            addresses, ips = split_line_straddlers(
                self.geometry, addresses, ips, batch.size
            )
        result = self.access_arrays(addresses, ips)
        self.flush_metrics()
        return result

    def run_trace_batched(
        self,
        trace: Union[TraceBatch, Iterable],
        batch_size: int = DEFAULT_BATCH_SIZE,
        *,
        split_lines: bool = True,
    ) -> CacheStats:
        """Batched :meth:`run_trace`: accepts a batch, batch iterable, or
        scalar access stream (converted chunk-wise).  ``split_lines``
        selects :meth:`access_record` vs :meth:`access` semantics."""
        for batch in as_batches(trace, batch_size):
            self.access_batch(batch, split_lines=split_lines)
        return self.stats

    def access_arrays(self, addresses: np.ndarray, ips: np.ndarray) -> BatchResult:
        """Reference raw address/ip columns; update contents and stats.

        The lowest-level columnar entry point — what sharded engine
        workers call on their per-shard slices.  No line splitting and no
        metrics flush here: callers own both (see :meth:`access_batch`).
        """
        geometry = self.geometry
        set_idx = geometry.set_indices(addresses)
        tags = geometry.tags(addresses)
        lines = geometry.line_numbers(addresses)

        count = int(addresses.size)
        hit = np.zeros(count, dtype=bool)
        cold = np.zeros(count, dtype=bool)
        evicted = np.zeros(count, dtype=bool)
        evicted_tag = np.zeros(count, dtype=np.uint64)
        result = BatchResult(hit, set_idx, tags, evicted, evicted_tag, cold)
        if not count:
            return result

        # Group accesses by set (stable, so intra-set order — which the
        # per-set state machines depend on — is the trace order).
        order = np.argsort(set_idx, kind="stable")
        grouped_sets = set_idx[order]
        grouped_tags = tags[order]

        # Collapse consecutive same-tag references within a set: the tag
        # was the set's most recent reference, so it is resident (hit) and
        # the recency update is a no-op for every policy (LRU front stays
        # front; FIFO/random ignore hits; a PLRU touch of the just-touched
        # way rewrites the same tree bits).  Only tag-change points reach
        # the per-set state machines below.
        same_run = np.empty(count, dtype=bool)
        same_run[0] = False
        np.logical_and(
            grouped_sets[1:] == grouped_sets[:-1],
            grouped_tags[1:] == grouped_tags[:-1],
            out=same_run[1:],
        )
        if same_run.any():
            hit[order[same_run]] = True
            keep = ~same_run
            order = order[keep]
            grouped_sets = grouped_sets[keep]
            count = int(order.size)

        breaks = np.flatnonzero(grouped_sets[1:] != grouped_sets[:-1]) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [count]))

        lru_fast_path = self._lru_sets is not None
        for start, end in zip(starts.tolist(), ends.tolist()):
            positions = order[start:end]
            set_index = int(grouped_sets[start])
            if lru_fast_path:
                self._access_set_lru(
                    set_index, positions, tags, lines, hit, cold, evicted,
                    evicted_tag,
                )
            else:
                self._access_set_generic(
                    set_index, positions, tags, lines, hit, cold, evicted,
                    evicted_tag,
                )

        self._charge_stats(set_idx, ips, result)
        return result

    def _access_set_lru(
        self,
        set_index: int,
        positions: np.ndarray,
        tags: np.ndarray,
        lines: np.ndarray,
        hit: np.ndarray,
        cold: np.ndarray,
        evicted: np.ndarray,
        evicted_tag: np.ndarray,
    ) -> None:
        """Run one set's accesses through the LRU recency list.

        The inner loop works on plain Python ints (``tolist`` once per
        group) — the same state transitions as :meth:`_access_lru`, minus
        all per-access object, dispatch, and stats overhead.
        """
        ways = self.geometry.ways
        lru_set = self._lru_sets[set_index]  # type: ignore[index]
        seen = self._seen_lines
        seen_add = seen.add
        lru_remove = lru_set.remove
        lru_insert = lru_set.insert
        lru_pop = lru_set.pop
        tag_list = tags[positions].tolist()
        line_list = lines[positions].tolist()
        miss_local: List[int] = []
        miss_cold: List[bool] = []
        miss_evicted: List[bool] = []
        miss_evicted_tag: List[int] = []
        for local, tag in enumerate(tag_list):
            if tag in lru_set:
                if lru_set[0] != tag:
                    lru_remove(tag)
                    lru_insert(0, tag)
                continue
            line = line_list[local]
            is_cold = line not in seen
            if is_cold:
                seen_add(line)
            if len(lru_set) >= ways:
                miss_evicted.append(True)
                miss_evicted_tag.append(lru_pop())
            else:
                miss_evicted.append(False)
                miss_evicted_tag.append(0)
            lru_insert(0, tag)
            miss_local.append(local)
            miss_cold.append(is_cold)
        hit[positions] = True
        if miss_local:
            miss_positions = positions[miss_local]
            hit[miss_positions] = False
            cold[miss_positions] = miss_cold
            evicted[miss_positions] = miss_evicted
            evicted_tag[miss_positions] = miss_evicted_tag

    def _access_set_generic(
        self,
        set_index: int,
        positions: np.ndarray,
        tags: np.ndarray,
        lines: np.ndarray,
        hit: np.ndarray,
        cold: np.ndarray,
        evicted: np.ndarray,
        evicted_tag: np.ndarray,
    ) -> None:
        """One set's accesses through the generic replacement machinery.

        Mirrors :meth:`_access_generic` exactly — including the way-scan
        order and the per-set policy RNG consumption, which stable set
        grouping preserves."""
        resident = self._tags[set_index]  # type: ignore[index]
        policy = self._policies[set_index]  # type: ignore[index]
        seen = self._seen_lines
        tag_list = tags[positions].tolist()
        line_list = lines[positions].tolist()
        miss_local: List[int] = []
        miss_cold: List[bool] = []
        miss_evicted: List[bool] = []
        miss_evicted_tag: List[int] = []
        for local, tag in enumerate(tag_list):
            try:
                way = resident.index(tag)
            except ValueError:
                way = -1
            if way >= 0:
                policy.touch(way)
                continue
            line = line_list[local]
            is_cold = line not in seen
            if is_cold:
                seen.add(line)
            try:
                way = resident.index(None)
            except ValueError:
                way = policy.victim()
                miss_evicted.append(True)
                miss_evicted_tag.append(resident[way])
            else:
                miss_evicted.append(False)
                miss_evicted_tag.append(0)
            resident[way] = tag
            policy.fill(way)
            miss_local.append(local)
            miss_cold.append(is_cold)
        hit[positions] = True
        if miss_local:
            miss_positions = positions[miss_local]
            hit[miss_positions] = False
            cold[miss_positions] = miss_cold
            evicted[miss_positions] = miss_evicted
            evicted_tag[miss_positions] = miss_evicted_tag

    def _charge_stats(
        self, set_idx: np.ndarray, ips: np.ndarray, result: BatchResult
    ) -> None:
        """Vectorized equivalent of the per-access stats updates."""
        stats = self.stats
        count = int(set_idx.size)
        stats.accesses += count
        num_sets = self.geometry.num_sets
        access_counts = np.bincount(set_idx.astype(np.intp), minlength=num_sets)
        set_accesses = stats.set_accesses
        for index in np.flatnonzero(access_counts).tolist():
            set_accesses[index] += int(access_counts[index])

        miss_mask = result.miss
        miss_count = int(np.count_nonzero(miss_mask))
        stats.misses += miss_count
        stats.hits += count - miss_count
        if not miss_count:
            return
        stats.cold_misses += int(np.count_nonzero(result.cold))
        stats.evictions += int(np.count_nonzero(result.evicted))
        miss_counts = np.bincount(
            set_idx[miss_mask].astype(np.intp), minlength=num_sets
        )
        set_misses = stats.set_misses
        for index in np.flatnonzero(miss_counts).tolist():
            set_misses[index] += int(miss_counts[index])
        miss_ips = ips[miss_mask]
        miss_ips = miss_ips[miss_ips != 0]
        if miss_ips.size:
            unique_ips, ip_counts = np.unique(miss_ips, return_counts=True)
            stats.ip_misses.update(
                dict(zip(unique_ips.tolist(), ip_counts.tolist()))
            )

    def resident_tags(self, set_index: int) -> List[int]:
        """Tags currently resident in ``set_index`` (order unspecified)."""
        if self._lru_sets is not None:
            return list(self._lru_sets[set_index])
        return [tag for tag in self._tags[set_index] if tag is not None]  # type: ignore[index]

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is currently resident."""
        set_index = self.geometry.set_index(address)
        return self.geometry.tag(address) in self.resident_tags(set_index)
