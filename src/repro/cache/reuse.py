"""Reuse-distance analysis.

The classical capacity-miss model the paper builds on (§1, citing Beyls &
D'Hollander): the *reuse distance* of a reference is the number of distinct
cache lines touched between the previous access to the same line and this
one.  Under fully-associative LRU, a reference hits iff its reuse distance
is smaller than the cache's line capacity, so the reuse-distance histogram
of a trace predicts the capacity miss ratio of *every* cache size at once.

Conflict misses are exactly the misses this model cannot explain — a
reference with a short reuse distance that still misses in the
set-associative cache — which is the gap CCProf's RCD metric targets.

The computation uses the standard O(N log M) algorithm: a Fenwick tree over
time positions counts distinct lines since last touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.trace.record import MemoryAccess

#: Reuse distance reported for first touches (cold references).
INFINITE = -1


class _FenwickTree:
    """Binary indexed tree over time slots, for distinct-element counting."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of elements in [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, low: int, high: int) -> int:
        """Sum of elements in [low, high]."""
        if low > high:
            return 0
        return self.prefix_sum(high) - (self.prefix_sum(low - 1) if low else 0)


@dataclass
class ReuseProfile:
    """Reuse-distance histogram of one trace.

    Attributes:
        histogram: distance -> reference count; cold references are under
            :data:`INFINITE`.
        total: Total line-granular references analyzed.
    """

    histogram: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    @property
    def cold_references(self) -> int:
        """First touches (infinite reuse distance)."""
        return self.histogram.get(INFINITE, 0)

    def miss_ratio_for_capacity(self, capacity_lines: int) -> float:
        """Predicted fully-associative LRU miss ratio at a line capacity.

        A reference misses iff its reuse distance >= capacity (cold
        references always miss).
        """
        if capacity_lines <= 0:
            raise AnalysisError(f"capacity must be positive: {capacity_lines}")
        if not self.total:
            return 0.0
        misses = self.cold_references
        misses += sum(
            count
            for distance, count in self.histogram.items()
            if distance != INFINITE and distance >= capacity_lines
        )
        return misses / self.total

    def miss_ratio_curve(self, capacities: Iterable[int]) -> List[tuple]:
        """(capacity, predicted miss ratio) across cache sizes."""
        return [(c, self.miss_ratio_for_capacity(c)) for c in capacities]

    def mean_finite_distance(self) -> float:
        """Mean reuse distance over non-cold references."""
        finite = [
            (distance, count)
            for distance, count in self.histogram.items()
            if distance != INFINITE
        ]
        total = sum(count for _, count in finite)
        if not total:
            raise AnalysisError("no finite reuse distances")
        return sum(distance * count for distance, count in finite) / total


def reuse_distances(
    stream: Iterable[MemoryAccess],
    geometry: Optional[CacheGeometry] = None,
    *,
    max_references: int = 1 << 22,
) -> ReuseProfile:
    """Compute the reuse-distance histogram of a trace at line granularity.

    Args:
        stream: The memory accesses (line-aligned via ``geometry``).
        geometry: Supplies the line size (default: the paper's 64 B).
        max_references: Safety cap on trace length (the Fenwick tree is
            sized by it).

    Returns:
        The :class:`ReuseProfile`.
    """
    geometry = geometry or CacheGeometry()
    lines = [geometry.line_number(access.address) for access in stream]
    if len(lines) > max_references:
        raise AnalysisError(
            f"trace of {len(lines)} references exceeds max_references="
            f"{max_references}"
        )
    profile = ReuseProfile()
    last_position: Dict[int, int] = {}
    tree = _FenwickTree(len(lines))
    for position, line in enumerate(lines):
        previous = last_position.get(line)
        if previous is None:
            distance = INFINITE
        else:
            # Distinct lines touched strictly between the two accesses:
            # lines whose *last* touch falls in (previous, position).
            distance = tree.range_sum(previous + 1, position - 1)
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[line] = position
        profile.histogram[distance] = profile.histogram.get(distance, 0) + 1
        profile.total += 1
    return profile


def conflict_gap(
    stream_factory,
    geometry: CacheGeometry = CacheGeometry(),
) -> Dict[str, float]:
    """Quantify the conflict gap: measured vs capacity-model miss ratio.

    Runs the trace twice — once through the set-associative simulator, once
    through reuse-distance analysis — and reports both miss ratios.  The
    excess of the measured ratio over the capacity-model prediction is the
    conflict-miss mass the reuse-distance model cannot see (the paper's
    motivation for RCD).

    Args:
        stream_factory: Zero-argument callable producing a fresh trace.
        geometry: Cache geometry to measure against.
    """
    from repro.cache.set_assoc import SetAssociativeCache

    cache = SetAssociativeCache(geometry)
    stats = cache.run_trace(stream_factory())
    profile = reuse_distances(stream_factory(), geometry)
    capacity_lines = geometry.num_sets * geometry.ways
    predicted = profile.miss_ratio_for_capacity(capacity_lines)
    measured = stats.miss_ratio
    return {
        "measured_miss_ratio": measured,
        "capacity_model_miss_ratio": predicted,
        "conflict_gap": measured - predicted,
    }
