"""Virtual-to-physical address translation.

The paper's footnote 1: L1 is virtually indexed (VIPT), so CCProf reads
index bits straight off the sampled virtual address; L2 and LLC are
*physically* indexed, and profiling them would require the virtual-to-
physical mapping — declared out of scope there.  This module implements
that extension: a page mapper with several allocation policies, and a
hierarchy mode where outer levels index by physical address.

The interesting systems fact this surfaces (see the ablation bench): with
4 KiB pages, a physically-indexed L2's set index takes bits *above* the
page offset, so the OS's frame-allocation policy decides whether
virtual-space conflicts survive at L2 — random frame placement acts like
page coloring and scrambles them, while huge pages preserve them exactly.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Optional, Sequence

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import GeometryError
from repro.trace.record import MemoryAccess

#: Standard x86-64 page size.
PAGE_SIZE = 4096

#: x86-64 huge page size (2 MiB).
HUGE_PAGE_SIZE = 2 * 1024 * 1024


class FramePolicy(enum.Enum):
    """How physical frames are assigned to virtual pages."""

    IDENTITY = "identity"      # paddr == vaddr (bare-metal / debugging)
    SEQUENTIAL = "sequential"  # frames in first-touch order (fresh boot)
    RANDOM = "random"          # uniformly random frames (fragmented system)


class PageMapper:
    """Lazily maps virtual pages to physical frames.

    Args:
        policy: Frame-assignment policy.
        page_size: Bytes per page; power of two.
        physical_frames: Size of the modelled physical memory, in frames
            (bounds the random policy); defaults to 1 Mi frames = 4 GiB.
        seed: RNG seed for the random policy.
    """

    def __init__(
        self,
        policy: FramePolicy = FramePolicy.SEQUENTIAL,
        page_size: int = PAGE_SIZE,
        physical_frames: int = 1 << 20,
        seed: int = 0,
    ) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise GeometryError(f"page size must be a power of two: {page_size}")
        if physical_frames <= 0:
            raise GeometryError(f"frame count must be positive: {physical_frames}")
        self.policy = policy
        self.page_size = page_size
        self.physical_frames = physical_frames
        self._offset_mask = page_size - 1
        self._page_shift = page_size.bit_length() - 1
        self._mapping: Dict[int, int] = {}
        self._next_frame = 0
        self._used_frames: set = set()
        self._free_frames: Optional[list] = None
        self._rng = random.Random(seed)

    def frame_of(self, virtual_page: int) -> int:
        """Physical frame backing a virtual page (allocated on first use)."""
        frame = self._mapping.get(virtual_page)
        if frame is not None:
            return frame
        if self.policy is FramePolicy.IDENTITY:
            frame = virtual_page % self.physical_frames
        elif self.policy is FramePolicy.SEQUENTIAL:
            frame = self._next_frame % self.physical_frames
            self._next_frame += 1
        else:  # RANDOM: sample without replacement from the frame pool.
            frame = self._draw_random_frame()
        self._mapping[virtual_page] = frame
        return frame

    def _draw_random_frame(self) -> int:
        """Sample an unused frame uniformly.

        Rejection sampling while the pool is sparse (O(1) expected draws);
        falls back to materializing the shrinking free list once more than
        half the frames are taken, so exhaustion stays exact.
        """
        used = self._used_frames
        if self._free_frames is None and len(used) * 2 < self.physical_frames:
            while True:
                frame = self._rng.randrange(self.physical_frames)
                if frame not in used:
                    used.add(frame)
                    return frame
        if self._free_frames is None:
            self._free_frames = [
                frame for frame in range(self.physical_frames) if frame not in used
            ]
            self._rng.shuffle(self._free_frames)
        if not self._free_frames:
            raise GeometryError("physical memory exhausted (all frames mapped)")
        frame = self._free_frames.pop()
        used.add(frame)
        return frame

    def translate(self, virtual_address: int) -> int:
        """Virtual address -> physical address."""
        page = virtual_address >> self._page_shift
        offset = virtual_address & self._offset_mask
        return (self.frame_of(page) << self._page_shift) | offset

    @property
    def pages_mapped(self) -> int:
        """Number of virtual pages touched so far."""
        return len(self._mapping)

    def index_bits_below_page_offset(self, geometry: CacheGeometry) -> bool:
        """Whether a cache's index bits fit inside the page offset.

        When true (e.g. the paper's L1: offset+index = 12 bits = 4 KiB
        pages), translation cannot change the set index — the VIPT property
        CCProf relies on.
        """
        return geometry.line_size * geometry.num_sets <= self.page_size


class PhysicallyIndexedHierarchy:
    """A hierarchy whose outer levels index by physical address.

    The first level is virtually indexed (VIPT L1, like real hardware and
    the paper's model); every deeper level sees translated addresses.
    """

    def __init__(
        self,
        geometries: Sequence[CacheGeometry],
        mapper: PageMapper,
        names: Sequence[str] = (),
        policy: str = "lru",
    ) -> None:
        if not geometries:
            raise GeometryError("a hierarchy needs at least one level")
        self.names = list(names) or [f"L{i + 1}" for i in range(len(geometries))]
        self.levels = [SetAssociativeCache(g, policy=policy) for g in geometries]
        self.mapper = mapper

    def access(self, virtual_address: int, ip: int = 0) -> int:
        """Reference one address; returns the number of levels missed."""
        depth = 0
        physical_address: Optional[int] = None
        for index, cache in enumerate(self.levels):
            if index == 0:
                address = virtual_address
            else:
                if physical_address is None:
                    physical_address = self.mapper.translate(virtual_address)
                address = physical_address
            if cache.access(address, ip).hit:
                return depth
            depth += 1
        return depth

    def access_record(self, access: MemoryAccess) -> int:
        """Reference a record, splitting line straddlers."""
        geometry = self.levels[0].geometry
        spanned = geometry.lines_spanned(access.address, access.size)
        if spanned == 1:
            return self.access(access.address, access.ip)
        base = geometry.line_address(access.address)
        return max(
            self.access(base + index * geometry.line_size, access.ip)
            for index in range(spanned)
        )

    def run_trace(self, stream) -> Dict[str, int]:
        """Drive a trace; return per-level miss counts by level name."""
        for access in stream:
            self.access_record(access)
        return {
            name: cache.stats.misses
            for name, cache in zip(self.names, self.levels)
        }
