"""Replacement policies for set-associative caches.

Each policy manages the recency/victim state of a single cache set.  The
cache stores tags per way; the policy answers "which way is the victim" and
is told about touches (hits) and fills (miss insertions).

The paper's L1 model (and Dinero IV's default) is LRU; FIFO, random, and
tree-PLRU are provided for the replacement-policy ablation study — real
Intel L1s approximate LRU with tree-PLRU, so showing the conflict signal
survives the policy swap matters for external validity.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional

from repro.errors import GeometryError


class ReplacementPolicy(ABC):
    """Per-set replacement state for a ``ways``-way cache set."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise GeometryError(f"associativity must be positive: {ways}")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""

    @abstractmethod
    def victim(self) -> int:
        """Choose the way to evict (all ways are full when this is called)."""

    @abstractmethod
    def fill(self, way: int) -> None:
        """Record that a new line was installed into ``way``."""

    def reset(self) -> None:
        """Restore the initial state (used when reusing policy objects)."""
        self.__init__(self.ways)  # noqa: PLC2801 - simple re-init is clearest here


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: evict the way touched longest ago."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Recency list: index 0 is most recent.  Small (<=16 ways) so list
        # remove/insert beats fancier structures.
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.insert(0, way)

    def victim(self) -> int:
        return self._order[-1]

    def fill(self, way: int) -> None:
        self.touch(way)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict in fill order; hits do not refresh."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._queue: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        # FIFO ignores hits by definition.
        pass

    def victim(self) -> int:
        return self._queue[0]

    def fill(self, way: int) -> None:
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (deterministic via seeded RNG)."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._seed = seed
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.ways)

    def fill(self, way: int) -> None:
        pass

    def reset(self) -> None:
        # Re-seed with the *configured* seed (a previous version hardcoded
        # 0 here, silently changing the victim sequence after reset for
        # any non-default seed).
        self._rng = random.Random(self._seed)


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the policy real Intel L1 caches approximate.

    A binary tree of ``ways - 1`` bits; each bit points away from the most
    recently used half.  Requires a power-of-two associativity.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise GeometryError(f"tree-PLRU needs power-of-two ways: {ways}")
        self._bits: List[int] = [0] * max(ways - 1, 1)

    def touch(self, way: int) -> None:
        # Walk root -> leaf; at each node record "went to the other side".
        node = 0
        span = self.ways
        while span > 1:
            half = span // 2
            if way < half:
                self._bits[node] = 1  # MRU went left; point victim right.
                node = 2 * node + 1
            else:
                self._bits[node] = 0  # MRU went right; point victim left.
                node = 2 * node + 2
                way -= half
            span = half

    def victim(self) -> int:
        node = 0
        span = self.ways
        way = 0
        while span > 1:
            half = span // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
            else:
                node = 2 * node + 2
                way += half
            span = half
        return way

    def fill(self, way: int) -> None:
        self.touch(way)


_POLICY_FACTORIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "plru": TreePlruPolicy,
}


def make_policy(name: str, ways: int, seed: Optional[int] = None) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Args:
        name: One of ``lru``, ``fifo``, ``random``, ``plru``.
        ways: Set associativity.
        seed: RNG seed for the random policy (ignored by the rest).
    """
    try:
        factory = _POLICY_FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_POLICY_FACTORIES))
        raise GeometryError(f"unknown replacement policy {name!r} (known: {known})") from None
    if factory is RandomPolicy:
        return RandomPolicy(ways, seed=seed or 0)
    return factory(ways)


def policy_names() -> List[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_POLICY_FACTORIES)
