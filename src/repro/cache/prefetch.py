"""Hardware prefetcher models.

The paper motivates measurement over simulation partly because "it is
difficult to accurately, thoroughly simulate caches in modern CPU
architectures" — and the prefetcher is the classic confounder: real L1/L2
prefetchers hide most *streaming* misses, so a simulator without one
over-reports them.  Crucially, prefetching cannot hide *conflict* misses:
a prefetched line maps to the same overloaded set as its demand twin and
thrashes right along with it (or worse, pollutes).

Two standard models are provided, wrapped around the simulator:

- :class:`NextLinePrefetcher` — on a demand miss, prefetch the next
  ``degree`` sequential lines.
- :class:`StridePrefetcher` — per-IP reference-prediction table: when an
  instruction's deltas repeat, prefetch ahead at the detected stride.

The ablation bench uses these to show CCProf's conflict signal is robust
to prefetching while raw miss counts are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import GeometryError
from repro.trace.record import MemoryAccess


@dataclass
class PrefetchStats:
    """Counters for one prefetching-cache run.

    Attributes:
        demand_accesses: Demand references.
        demand_misses: Demand references that missed (after prefetching).
        prefetches_issued: Lines fetched speculatively.
        useful_prefetches: Prefetched lines later hit by a demand access.
    """

    demand_accesses: int = 0
    demand_misses: int = 0
    prefetches_issued: int = 0
    useful_prefetches: int = 0

    @property
    def demand_miss_ratio(self) -> float:
        """Demand misses per demand access."""
        if not self.demand_accesses:
            return 0.0
        return self.demand_misses / self.demand_accesses

    @property
    def accuracy(self) -> float:
        """Useful prefetches per prefetch issued."""
        if not self.prefetches_issued:
            return 0.0
        return self.useful_prefetches / self.prefetches_issued


class _PrefetchingCacheBase:
    """Shared machinery: demand path + speculative fills + usefulness."""

    def __init__(self, geometry: CacheGeometry, policy: str = "lru") -> None:
        self.geometry = geometry
        self.cache = SetAssociativeCache(geometry, policy=policy)
        self.stats = PrefetchStats()
        self._prefetched_lines: Set[int] = set()

    def _demand(self, address: int, ip: int) -> bool:
        """Demand reference; returns True on hit."""
        self.stats.demand_accesses += 1
        line = self.geometry.line_number(address)
        result = self.cache.access(address, ip)
        if result.hit:
            if line in self._prefetched_lines:
                self.stats.useful_prefetches += 1
                self._prefetched_lines.discard(line)
            return True
        self.stats.demand_misses += 1
        self._prefetched_lines.discard(line)  # demand-fetched now
        return False

    def _prefetch_line(self, address: int) -> None:
        line = self.geometry.line_number(address)
        result = self.cache.access(address, 0)
        if result.miss:
            self.stats.prefetches_issued += 1
            self._prefetched_lines.add(line)
            if result.evicted_tag is not None:
                evicted_line = (
                    result.evicted_tag << self.geometry.index_bits
                ) | result.set_index
                self._prefetched_lines.discard(evicted_line)

    def run_trace(self, stream: Iterable[MemoryAccess]) -> PrefetchStats:
        """Drive a trace through the prefetching cache."""
        for access in stream:
            self.access(access.address, access.ip)
        return self.stats

    def access(self, address: int, ip: int = 0) -> bool:  # pragma: no cover
        raise NotImplementedError


class NextLinePrefetcher(_PrefetchingCacheBase):
    """Prefetch the next ``degree`` lines on every demand miss."""

    def __init__(
        self, geometry: CacheGeometry = CacheGeometry(), degree: int = 1, policy: str = "lru"
    ) -> None:
        super().__init__(geometry, policy)
        if degree < 1:
            raise GeometryError(f"prefetch degree must be >= 1: {degree}")
        self.degree = degree

    def access(self, address: int, ip: int = 0) -> bool:
        hit = self._demand(address, ip)
        if not hit:
            base = self.geometry.line_address(address)
            for step in range(1, self.degree + 1):
                self._prefetch_line(base + step * self.geometry.line_size)
        return hit


class StridePrefetcher(_PrefetchingCacheBase):
    """Per-IP reference-prediction-table stride prefetcher.

    Each instruction pointer tracks (last address, last stride, confidence);
    two consecutive equal deltas arm the entry, after which every access
    prefetches ``degree`` strides ahead.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        degree: int = 2,
        table_entries: int = 256,
        policy: str = "lru",
    ) -> None:
        super().__init__(geometry, policy)
        if degree < 1:
            raise GeometryError(f"prefetch degree must be >= 1: {degree}")
        if table_entries < 1:
            raise GeometryError(f"table needs >= 1 entry: {table_entries}")
        self.degree = degree
        self.table_entries = table_entries
        # ip -> (last address, last stride, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}

    def _update_table(self, ip: int, address: int) -> Optional[int]:
        """Returns the armed stride, or None."""
        entry = self._table.get(ip)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # Simple capacity policy: drop the oldest insertion.
                self._table.pop(next(iter(self._table)))
            self._table[ip] = (address, 0, 0)
            return None
        last_address, last_stride, confidence = entry
        stride = address - last_address
        if stride != 0 and stride == last_stride:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
        self._table[ip] = (address, stride, confidence)
        return stride if confidence >= 1 and stride != 0 else None

    def access(self, address: int, ip: int = 0) -> bool:
        hit = self._demand(address, ip)
        stride = self._update_table(ip, address)
        if stride is not None:
            for step in range(1, self.degree + 1):
                target = address + step * stride
                if target >= 0:
                    self._prefetch_line(target)
        return hit
