"""Victim caches.

The hardware remedies surveyed in the paper's related work (§7.1 — Collins
& Tullsen's adaptive miss buffer, Bershad's conflict avoidance) revolve
around a *victim cache*: a small fully-associative buffer that catches
lines evicted from the main cache, so a conflict-evicted line can be
recovered without a trip down the hierarchy.

This module adds one in front of the simulator so the library can answer
"how much of this kernel's miss traffic would a victim cache absorb?" —
which is, operationally, another conflict-miss detector: victim-cache hits
are precisely misses caused by recent (conflict) evictions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import GeometryError
from repro.trace.record import MemoryAccess


@dataclass
class VictimCacheStats:
    """Tallies of one victim-cache run."""

    accesses: int = 0
    main_hits: int = 0
    victim_hits: int = 0
    misses: int = 0

    @property
    def absorbed_fraction(self) -> float:
        """Share of would-be misses the victim buffer absorbed."""
        would_be = self.victim_hits + self.misses
        return self.victim_hits / would_be if would_be else 0.0

    @property
    def miss_ratio(self) -> float:
        """Misses (past both structures) per access."""
        return self.misses / self.accesses if self.accesses else 0.0


class VictimCachedL1:
    """A set-associative L1 backed by a small fully-associative victim
    buffer (Jouppi-style).

    Args:
        geometry: Main cache geometry.
        victim_lines: Victim buffer capacity in lines (typically 4-16).
    """

    def __init__(self, geometry: CacheGeometry = CacheGeometry(), victim_lines: int = 8) -> None:
        if victim_lines <= 0:
            raise GeometryError(f"victim buffer needs >= 1 line: {victim_lines}")
        self.geometry = geometry
        self.main = SetAssociativeCache(geometry)
        self.victim_lines = victim_lines
        self._victim: "OrderedDict[int, None]" = OrderedDict()
        self.stats = VictimCacheStats()

    def access(self, address: int, ip: int = 0) -> str:
        """Reference an address.

        Returns:
            ``"main"``, ``"victim"`` or ``"miss"`` — where the line was
            found.
        """
        self.stats.accesses += 1
        line = self.geometry.line_number(address)
        result = self.main.access(address, ip)
        if result.hit:
            self.stats.main_hits += 1
            return "main"
        # On a main miss the evicted line (if any) moves into the victim
        # buffer, and the referenced line is promoted out of it on a hit.
        if result.evicted_tag is not None:
            evicted_line = (
                result.evicted_tag << self.geometry.index_bits
            ) | result.set_index
            self._victim[evicted_line] = None
            if len(self._victim) > self.victim_lines:
                self._victim.popitem(last=False)
        if line in self._victim:
            del self._victim[line]
            self.stats.victim_hits += 1
            return "victim"
        self.stats.misses += 1
        return "miss"

    def run_trace(self, stream: Iterable[MemoryAccess]) -> VictimCacheStats:
        """Drive a trace; return the tallies."""
        for access in stream:
            spanned = self.geometry.lines_spanned(access.address, access.size)
            if spanned == 1:
                self.access(access.address, access.ip)
            else:
                base = self.geometry.line_address(access.address)
                for index in range(spanned):
                    self.access(base + index * self.geometry.line_size, access.ip)
        return self.stats
