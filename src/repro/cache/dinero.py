"""Dinero-IV-flavoured front end.

The paper's ground truth is the trace-driven Dinero IV simulator.  This
module accepts the compact ``size:line:assoc[:policy]`` cache spec syntax
(cachegrind-style, a superset of what our suite needs), runs ``.din``
traces, and renders a Dinero-like statistics block so results are easy to
compare against real Dinero output by eye.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.errors import TraceError
from repro.trace.tracefile import TraceReadStats, read_dinero_trace

_SIZE_SUFFIXES = {"": 1, "k": 1024, "m": 1024 * 1024, "g": 1024 * 1024 * 1024}
_SPEC_PATTERN = re.compile(
    r"^(?P<size>\d+)(?P<suffix>[kKmMgG]?)"
    r":(?P<line>\d+)"
    r":(?P<assoc>\d+)"
    r"(?::(?P<policy>[a-zA-Z]+))?$"
)


def parse_size(text: str) -> int:
    """Parse a size with optional k/m/g suffix (``"32k"`` → 32768)."""
    match = re.fullmatch(r"(\d+)([kKmMgG]?)", text.strip())
    if not match:
        raise TraceError(f"bad size spec: {text!r}")
    value, suffix = match.groups()
    return int(value) * _SIZE_SUFFIXES[suffix.lower()]


@dataclass(frozen=True)
class DineroConfig:
    """One cache level parsed from a spec string.

    Attributes:
        geometry: The parsed cache geometry.
        policy: Replacement policy name.
    """

    geometry: CacheGeometry
    policy: str = "lru"

    @classmethod
    def from_spec(cls, spec: str) -> "DineroConfig":
        """Parse ``size:line:assoc[:policy]``, e.g. ``"32k:64:8:lru"``.

        Example:
            >>> DineroConfig.from_spec("32k:64:8").geometry.num_sets
            64
        """
        match = _SPEC_PATTERN.match(spec.strip())
        if not match:
            raise TraceError(f"bad cache spec {spec!r}; expected size:line:assoc[:policy]")
        size = int(match.group("size")) * _SIZE_SUFFIXES[match.group("suffix").lower()]
        geometry = CacheGeometry.from_capacity(
            size, line_size=int(match.group("line")), ways=int(match.group("assoc"))
        )
        return cls(geometry=geometry, policy=(match.group("policy") or "lru").lower())

    def build(self) -> SetAssociativeCache:
        """Instantiate the configured cache."""
        return SetAssociativeCache(self.geometry, policy=self.policy)


def simulate_dinero_trace(
    trace_path: Union[str, Path],
    spec: str = "32k:64:8:lru",
    *,
    strict: bool = True,
    stats: "Optional[TraceReadStats]" = None,
) -> CacheStats:
    """Run a ``.din`` trace through a cache described by ``spec``.

    Args:
        trace_path: The ``.din`` trace.
        spec: Cache spec string, ``size:line:assoc[:policy]``.
        strict: Forwarded to the trace reader — lenient mode quarantines
            malformed lines instead of aborting the simulation.
        stats: Optional read-diagnostics sink (lenient mode).
    """
    config = DineroConfig.from_spec(spec)
    cache = config.build()
    return cache.run_trace(
        read_dinero_trace(trace_path, strict=strict, stats=stats)
    )


def format_dinero_report(stats: CacheStats, title: str = "l1-ucache") -> str:
    """Render statistics in the spirit of Dinero IV's output block."""
    lines = [
        f"---Simulation of {title} ({stats.geometry.describe()})---",
        f" Metrics          Total",
        f" -----------      ------",
        f" Fetches          {stats.accesses:>12}",
        f" Hits             {stats.hits:>12}",
        f" Misses           {stats.misses:>12}",
        f" Compulsory       {stats.cold_misses:>12}",
        f" Miss ratio       {stats.miss_ratio:>12.4f}",
        f" Evictions        {stats.evictions:>12}",
        f" Sets w/ misses   {stats.sets_utilized():>12}",
    ]
    return "\n".join(lines)
