"""Counters collected during cache simulation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cache.geometry import CacheGeometry


@dataclass
class CacheStats:
    """Aggregate statistics for one cache level.

    Attributes:
        geometry: Geometry of the cache the stats describe.
        accesses: Total references seen.
        hits: References that hit.
        misses: References that missed.
        evictions: Lines evicted to make room (misses on full sets).
        cold_misses: Misses on never-before-seen lines.
        set_misses: Per-set miss counts (length ``geometry.num_sets``).
        set_accesses: Per-set access counts.
        ip_misses: Miss counts keyed by instruction pointer.
    """

    geometry: CacheGeometry
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cold_misses: int = 0
    set_misses: List[int] = field(default_factory=list)
    set_accesses: List[int] = field(default_factory=list)
    ip_misses: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if not self.set_misses:
            self.set_misses = [0] * self.geometry.num_sets
        if not self.set_accesses:
            self.set_accesses = [0] * self.geometry.num_sets

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0.0 when the cache saw no traffic)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        """Hits per access."""
        return self.hits / self.accesses if self.accesses else 0.0

    def sets_utilized(self, *, by_misses: bool = True) -> int:
        """Number of sets that saw at least one miss (or access).

        Table 4 of the paper reports "# of Cache Sets utilized" per loop;
        this is the level-wide analogue.
        """
        counts = self.set_misses if by_misses else self.set_accesses
        return sum(1 for count in counts if count)

    def miss_imbalance(self) -> float:
        """Max/mean ratio of per-set misses; 1.0 means perfectly balanced.

        A quick scalar proxy for the Figure 3 histogram skew.
        """
        total = sum(self.set_misses)
        if not total:
            return 1.0
        mean = total / len(self.set_misses)
        return max(self.set_misses) / mean

    def top_miss_ips(self, count: int = 10) -> List[tuple]:
        """The ``count`` instruction pointers with the most misses."""
        return self.ip_misses.most_common(count)

    def as_dict(self) -> Dict[str, float]:
        """Summary scalars for reporting."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cold_misses": self.cold_misses,
            "miss_ratio": self.miss_ratio,
            "sets_utilized": self.sets_utilized(),
            "miss_imbalance": self.miss_imbalance(),
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine two stats objects over the same geometry (new object)."""
        if other.geometry != self.geometry:
            raise ValueError("cannot merge stats from different geometries")
        merged = CacheStats(geometry=self.geometry)
        merged.accesses = self.accesses + other.accesses
        merged.hits = self.hits + other.hits
        merged.misses = self.misses + other.misses
        merged.evictions = self.evictions + other.evictions
        merged.cold_misses = self.cold_misses + other.cold_misses
        merged.set_misses = [a + b for a, b in zip(self.set_misses, other.set_misses)]
        merged.set_accesses = [
            a + b for a, b in zip(self.set_accesses, other.set_accesses)
        ]
        merged.ip_misses = self.ip_misses + other.ip_misses
        return merged
