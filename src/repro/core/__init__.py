"""CCProf core: conflict-miss detection from sparse miss samples.

This package is the paper's primary contribution, layered over the
substrates:

- :mod:`repro.core.rcd` — the Re-Conflict Distance metric (Definition 1)
  and its per-set / combined distributions, computed identically from exact
  miss sequences (simulator mode) and sparse samples (PMU mode).
- :mod:`repro.core.conflict_period` — conflict periods (§3.3) and the
  CP-vs-sampling-period detectability condition.
- :mod:`repro.core.contribution` — the contribution factor of Equation 1.
- :mod:`repro.core.classifier` — the logistic-regression conflict
  classifier (§3.4) and the Table 1 implication matrix.
- :mod:`repro.core.attribution` — code-centric (loop) and data-centric
  (allocation) attribution of conflicting samples.
- :mod:`repro.core.profiler` — the end-to-end CCProf pipeline: online
  profiling (sampling) + offline analysis (loops, RCD, classification).
- :mod:`repro.core.report` — structured conflict reports.
"""

from repro.core.rcd import RcdAnalysis, RcdObservation, compute_rcds
from repro.core.conflict_period import (
    ConflictPeriodAnalysis,
    conflict_periods,
    detectable,
)
from repro.core.contribution import (
    DEFAULT_RCD_THRESHOLD,
    contribution_factor,
    contribution_factors_by_set,
)
from repro.core.classifier import (
    ConflictClassifier,
    Implication,
    implication_for,
)
from repro.core.attribution import (
    CodeCentricAttribution,
    DataCentricAttribution,
    attribute_code,
    attribute_data,
)
from repro.core.diffreport import LoopDelta, ReportDiff
from repro.core.exact import ExactMeasurement, ExactRcdMeasurer
from repro.core.phases import PhaseAnalyzer, PhasedAnalysis, PhaseReport
from repro.core.profiler import CCProf, OfflineAnalyzer
from repro.core.report import ConflictReport, DataStructureReport, LoopReport
from repro.core.setmap import SetUsageTimeline

__all__ = [
    "RcdAnalysis",
    "RcdObservation",
    "compute_rcds",
    "ConflictPeriodAnalysis",
    "conflict_periods",
    "detectable",
    "DEFAULT_RCD_THRESHOLD",
    "contribution_factor",
    "contribution_factors_by_set",
    "ConflictClassifier",
    "Implication",
    "implication_for",
    "CodeCentricAttribution",
    "DataCentricAttribution",
    "attribute_code",
    "attribute_data",
    "LoopDelta",
    "ReportDiff",
    "ExactMeasurement",
    "ExactRcdMeasurer",
    "PhaseAnalyzer",
    "PhasedAnalysis",
    "PhaseReport",
    "CCProf",
    "OfflineAnalyzer",
    "ConflictReport",
    "DataStructureReport",
    "LoopReport",
    "SetUsageTimeline",
]
