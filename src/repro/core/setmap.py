"""Cache-set usage timelines — the data behind Figure 2-b/2-c.

The paper's motivating figure shows *which* cache sets a loop's accesses
occupy, before and after padding.  A :class:`SetUsageTimeline` bins a
sample (or miss) stream into time windows and counts hits per set per
window, yielding the matrix those heatmaps plot — and a terminal-friendly
ASCII rendering for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.pmu.sampler import AddressSample

#: Glyph ramp for the ASCII heatmap, light to dark.
_RAMP = " .:*#@"


@dataclass
class SetUsageTimeline:
    """Per-window, per-set sample counts.

    Attributes:
        geometry: Cache geometry defining the set axis.
        window: Samples per time window.
        matrix: ``matrix[w][s]`` = samples in window w landing in set s.
    """

    geometry: CacheGeometry
    window: int
    matrix: List[List[int]] = field(default_factory=list)

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[AddressSample],
        geometry: CacheGeometry = CacheGeometry(),
        window: int = 256,
    ) -> "SetUsageTimeline":
        """Bin a sample stream into windows."""
        if window <= 0:
            raise AnalysisError(f"window must be positive: {window}")
        timeline = cls(geometry=geometry, window=window)
        row: List[int] = [0] * geometry.num_sets
        filled = 0
        for sample in samples:
            row[geometry.set_index(sample.address)] += 1
            filled += 1
            if filled == window:
                timeline.matrix.append(row)
                row = [0] * geometry.num_sets
                filled = 0
        if filled:
            timeline.matrix.append(row)
        return timeline

    @classmethod
    def from_addresses(
        cls,
        addresses: Iterable[int],
        geometry: CacheGeometry = CacheGeometry(),
        window: int = 256,
    ) -> "SetUsageTimeline":
        """Bin raw addresses (e.g. an exact miss stream)."""
        samples = [
            AddressSample(ip=0, address=address, event_index=i, access_index=i)
            for i, address in enumerate(addresses)
        ]
        return cls.from_samples(samples, geometry, window)

    @property
    def windows(self) -> int:
        """Number of time windows."""
        return len(self.matrix)

    def totals_per_set(self) -> List[int]:
        """Column sums: the whole-run per-set histogram (Figure 3)."""
        totals = [0] * self.geometry.num_sets
        for row in self.matrix:
            for set_index, count in enumerate(row):
                totals[set_index] += count
        return totals

    def sets_used_per_window(self) -> List[int]:
        """How many distinct sets each window touches.

        Constant-low values are the Figure 2-b signature (a few sets at a
        time); constant-high is 2-c (all sets, post-padding).
        """
        return [sum(1 for count in row if count) for row in self.matrix]

    def occupancy(self) -> float:
        """Mean fraction of sets used per window."""
        if not self.matrix:
            return 0.0
        used = self.sets_used_per_window()
        return sum(used) / (len(used) * self.geometry.num_sets)

    def render_ascii(self, max_windows: int = 32) -> str:
        """ASCII heatmap: rows = windows (time), columns = sets.

        Intensity is normalized per timeline; at most ``max_windows`` rows
        are shown (evenly subsampled).
        """
        if not self.matrix:
            return "(no samples)"
        rows = self.matrix
        if len(rows) > max_windows:
            step = len(rows) / max_windows
            rows = [rows[int(i * step)] for i in range(max_windows)]
        peak = max(max(row) for row in rows) or 1
        lines = [f"sets 0..{self.geometry.num_sets - 1} ->"]
        for row in rows:
            glyphs = "".join(
                _RAMP[min(len(_RAMP) - 1, (count * (len(_RAMP) - 1)) // peak)]
                for count in row
            )
            lines.append(f"|{glyphs}|")
        return "\n".join(lines)
