"""Conflict periods (CP).

Paper §3.3: *"we define the conflict period (CP) of a cache set as the
period of consecutive same value of RCD."*  A long CP means the conflict
pattern is stable long enough for sparse sampling to observe it; the
detectability condition is CP > sampling period.  HimenoBMT (§6.6) is the
paper's example of small CPs forcing high-frequency sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Sequence

from repro.core.rcd import RcdObservation
from repro.stats.distributions import Histogram, summarize


class ConflictPeriodRun(NamedTuple):
    """One maximal run of equal RCD values on one set.

    Attributes:
        set_index: The cache set.
        rcd: The repeated RCD value.
        length: Number of consecutive observations with that value.
        start_position: Miss-sequence position of the run's first
            observation.
    """

    set_index: int
    rcd: int
    length: int
    start_position: int


def conflict_periods(observations: Sequence[RcdObservation]) -> List[ConflictPeriodRun]:
    """Extract all maximal constant-RCD runs, per set.

    Observations are grouped by set (preserving order) and scanned for
    runs; single observations form runs of length 1.
    """
    by_set: Dict[int, List[RcdObservation]] = {}
    for observation in observations:
        by_set.setdefault(observation.set_index, []).append(observation)

    runs: List[ConflictPeriodRun] = []
    for set_index, entries in sorted(by_set.items()):
        run_start = 0
        for index in range(1, len(entries) + 1):
            end_of_run = index == len(entries) or entries[index].rcd != entries[run_start].rcd
            if end_of_run:
                runs.append(
                    ConflictPeriodRun(
                        set_index=set_index,
                        rcd=entries[run_start].rcd,
                        length=index - run_start,
                        start_position=entries[run_start].position,
                    )
                )
                run_start = index
    return runs


def detectable(run: ConflictPeriodRun, sampling_period: float) -> bool:
    """The paper's detectability condition: CP larger than the period.

    A run of ``length`` same-RCD observations spans roughly
    ``length * (rcd + 1)`` misses; sampling with a mean period shorter than
    that span is expected to catch at least one of them.
    """
    span_in_misses = run.length * (run.rcd + 1)
    return span_in_misses > sampling_period


@dataclass
class ConflictPeriodAnalysis:
    """Summary of conflict-period structure in one program context."""

    runs: List[ConflictPeriodRun] = field(default_factory=list)

    @classmethod
    def from_observations(
        cls, observations: Sequence[RcdObservation]
    ) -> "ConflictPeriodAnalysis":
        """Build from the RCD observations of a context."""
        return cls(runs=conflict_periods(observations))

    def length_histogram(self) -> Histogram:
        """Distribution of run lengths."""
        return Histogram.from_values([run.length for run in self.runs])

    def mean_period(self) -> float:
        """Mean run length in observations (0 when there are no runs)."""
        if not self.runs:
            return 0.0
        return sum(run.length for run in self.runs) / len(self.runs)

    def mean_span_in_misses(self) -> float:
        """Mean run span measured in misses — what the sampling period
        must undercut for detection."""
        if not self.runs:
            return 0.0
        return sum(run.length * (run.rcd + 1) for run in self.runs) / len(self.runs)

    def detectable_fraction(self, sampling_period: float) -> float:
        """Fraction of runs satisfying the CP > SP condition."""
        if not self.runs:
            return 0.0
        hits = sum(1 for run in self.runs if detectable(run, sampling_period))
        return hits / len(self.runs)

    def summary(self) -> Dict[str, float]:
        """Run-length summary statistics."""
        if not self.runs:
            return {"count": 0.0}
        return summarize([float(run.length) for run in self.runs])
