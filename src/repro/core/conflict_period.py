"""Conflict periods (CP).

Paper §3.3: *"we define the conflict period (CP) of a cache set as the
period of consecutive same value of RCD."*  A long CP means the conflict
pattern is stable long enough for sparse sampling to observe it; the
detectability condition is CP > sampling period.  HimenoBMT (§6.6) is the
paper's example of small CPs forcing high-frequency sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Sequence, Union

import numpy as np

from repro.core.rcd import RcdArrayAnalysis, RcdObservation
from repro.obs.metrics import get_registry
from repro.stats.distributions import Histogram, summarize


class ConflictPeriodRun(NamedTuple):
    """One maximal run of equal RCD values on one set.

    Attributes:
        set_index: The cache set.
        rcd: The repeated RCD value.
        length: Number of consecutive observations with that value.
        start_position: Miss-sequence position of the run's first
            observation.
    """

    set_index: int
    rcd: int
    length: int
    start_position: int


def conflict_periods(observations: Sequence[RcdObservation]) -> List[ConflictPeriodRun]:
    """Extract all maximal constant-RCD runs, per set.

    Observations are grouped by set (preserving order) and scanned for
    runs; single observations form runs of length 1.
    """
    by_set: Dict[int, List[RcdObservation]] = {}
    for observation in observations:
        by_set.setdefault(observation.set_index, []).append(observation)

    runs: List[ConflictPeriodRun] = []
    for set_index, entries in sorted(by_set.items()):
        run_start = 0
        for index in range(1, len(entries) + 1):
            end_of_run = index == len(entries) or entries[index].rcd != entries[run_start].rcd
            if end_of_run:
                runs.append(
                    ConflictPeriodRun(
                        set_index=set_index,
                        rcd=entries[run_start].rcd,
                        length=index - run_start,
                        start_position=entries[run_start].position,
                    )
                )
                run_start = index
    return runs


def conflict_period_arrays(
    set_index: np.ndarray, rcd: np.ndarray, position: np.ndarray
) -> List[ConflictPeriodRun]:
    """Vectorized :func:`conflict_periods` over observation columns.

    Takes the ``(set_index, rcd, position)`` columns of a
    :class:`~repro.core.rcd.RcdArrayAnalysis` (in position order) and
    extracts the same runs, in the same (set, then time) order, without a
    per-observation Python loop: a stable sort groups observations by set,
    and run boundaries fall out of one shifted comparison.
    """
    count = int(np.asarray(rcd).size)
    if not count:
        return []
    order = np.argsort(set_index, kind="stable")
    sets = np.asarray(set_index)[order]
    rcds = np.asarray(rcd)[order]
    positions = np.asarray(position)[order]
    new_run = np.empty(count, dtype=bool)
    new_run[0] = True
    new_run[1:] = (sets[1:] != sets[:-1]) | (rcds[1:] != rcds[:-1])
    starts = np.flatnonzero(new_run)
    lengths = np.diff(np.append(starts, count))
    return [
        ConflictPeriodRun(
            set_index=set_value, rcd=rcd_value, length=length,
            start_position=start_position,
        )
        for set_value, rcd_value, length, start_position in zip(
            sets[starts].tolist(),
            rcds[starts].tolist(),
            lengths.tolist(),
            positions[starts].tolist(),
        )
    ]


def merge_conflict_period_runs(
    shard_runs: Sequence[List[ConflictPeriodRun]],
) -> List[ConflictPeriodRun]:
    """Deterministic merge of per-shard conflict-period runs.

    Both extractors emit runs ordered by (set, then time).  When the
    shards are contiguous *ascending* set ranges — as the sharded engine
    produces — plain concatenation preserves that order, so the merge is
    exactly what a single-process extraction over the merged observations
    yields.  (Runs never span shards: a run lives within one set.)
    """
    merged: List[ConflictPeriodRun] = []
    for runs in shard_runs:
        merged.extend(runs)
    return merged


def detectable(run: ConflictPeriodRun, sampling_period: float) -> bool:
    """The paper's detectability condition: CP larger than the period.

    A run of ``length`` same-RCD observations spans roughly
    ``length * (rcd + 1)`` misses; sampling with a mean period shorter than
    that span is expected to catch at least one of them.
    """
    span_in_misses = run.length * (run.rcd + 1)
    return span_in_misses > sampling_period


@dataclass
class ConflictPeriodAnalysis:
    """Summary of conflict-period structure in one program context."""

    runs: List[ConflictPeriodRun] = field(default_factory=list)

    @classmethod
    def from_observations(
        cls, observations: Union[Sequence[RcdObservation], RcdArrayAnalysis]
    ) -> "ConflictPeriodAnalysis":
        """Build from the RCD observations of a context.

        A columnar :class:`~repro.core.rcd.RcdArrayAnalysis` takes the
        vectorized run extraction; a scalar observation sequence takes the
        reference path.  Both produce identical runs.
        """
        if isinstance(observations, RcdArrayAnalysis):
            analysis = cls(
                runs=conflict_period_arrays(
                    observations.set_index,
                    observations.rcd,
                    observations.position,
                )
            )
        else:
            analysis = cls(runs=conflict_periods(observations))
        registry = get_registry()
        registry.counter("core.conflict_period.analyses").inc()
        registry.counter("core.conflict_period.runs_extracted").inc(
            len(analysis.runs)
        )
        return analysis

    def length_histogram(self) -> Histogram:
        """Distribution of run lengths."""
        return Histogram.from_values([run.length for run in self.runs])

    def mean_period(self) -> float:
        """Mean run length in observations (0 when there are no runs)."""
        if not self.runs:
            return 0.0
        return sum(run.length for run in self.runs) / len(self.runs)

    def mean_span_in_misses(self) -> float:
        """Mean run span measured in misses — what the sampling period
        must undercut for detection."""
        if not self.runs:
            return 0.0
        return sum(run.length * (run.rcd + 1) for run in self.runs) / len(self.runs)

    def detectable_fraction(self, sampling_period: float) -> float:
        """Fraction of runs satisfying the CP > SP condition."""
        if not self.runs:
            return 0.0
        hits = sum(1 for run in self.runs if detectable(run, sampling_period))
        return hits / len(self.runs)

    def summary(self) -> Dict[str, float]:
        """Run-length summary statistics."""
        if not self.runs:
            return {"count": 0.0}
        return summarize([float(run.length) for run in self.runs])
