"""Re-Conflict Distance (RCD).

Definition 1 of the paper: *the Re-Conflict Distance of a cache set S for a
program context P is the number of intermediate cache misses between two
consecutive cache misses on the set S.*

Observation 2: with perfectly balanced set utilization the RCD of every set
equals the number of sets N; RCD < N marks a victim of imbalanced
utilization.

The same computation serves both observation channels:

- **exact mode** — the input is every L1 miss of a (portion of a) trace, as
  a cache simulator produces;
- **sampled mode** — the input is the sparse PEBS sample sequence.  Counting
  intermediate *samples* preserves the imbalance signature: under uniform
  set utilization, consecutive samples land on the same set once every ~N
  samples regardless of the sampling period, whereas misses concentrated on
  k < N sets drive the sampled RCD down toward k (paper §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.stats.distributions import EmpiricalCdf, Histogram


class RcdObservation(NamedTuple):
    """One measured RCD value.

    Attributes:
        set_index: The cache set the two bracketing misses hit.
        rcd: Intermediate misses between them.
        position: Ordinal (within the analyzed miss sequence) of the
            *second* miss — the reuse point the RCD is charged to.
    """

    set_index: int
    rcd: int
    position: int


def compute_rcds(set_sequence: Sequence[int]) -> List[RcdObservation]:
    """RCDs of a sequence of per-miss cache-set indices.

    The first miss on each set has no predecessor and produces no
    observation (matching Figure 5, where RCD exists only between
    *consecutive* misses on the same set).
    """
    last_seen: Dict[int, int] = {}
    observations: List[RcdObservation] = []
    for position, set_index in enumerate(set_sequence):
        previous = last_seen.get(set_index)
        if previous is not None:
            observations.append(
                RcdObservation(
                    set_index=set_index,
                    rcd=position - previous - 1,
                    position=position,
                )
            )
        last_seen[set_index] = position
    return observations


def compute_rcd_arrays(
    set_sequence: np.ndarray, positions: Optional[np.ndarray] = None
) -> tuple:
    """Vectorized :func:`compute_rcds` over a set-index column.

    Returns ``(set_index, rcd, position)`` int64 arrays in miss-sequence
    (position) order — the exact columnar image of the observation list
    the scalar function produces.

    The trick: a stable argsort groups equal set indices while keeping
    their positions in time order, so each observation's predecessor is
    simply its left neighbour within the group.

    ``positions`` (optional, strictly increasing, same length) maps each
    entry to its position in a larger enclosing sequence.  The sharded
    engine uses this to compute RCDs shard by shard: because an RCD pairs
    consecutive misses *of one set*, a shard holding all misses of its
    sets — tagged with their global positions — produces exactly the
    observations the global computation would (see
    :func:`merge_rcd_pieces`).
    """
    sequence = np.asarray(set_sequence, dtype=np.int64)
    count = sequence.size
    if positions is not None:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size != count:
            raise AnalysisError(
                f"positions length {positions.size} != sequence length {count}"
            )
    if count < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    order = np.argsort(sequence, kind="stable").astype(np.int64)
    grouped = sequence[order]
    has_predecessor = np.empty(count, dtype=bool)
    has_predecessor[0] = False
    has_predecessor[1:] = grouped[1:] == grouped[:-1]
    local_positions = order[has_predecessor]
    local_previous = order[np.flatnonzero(has_predecessor) - 1]
    if positions is None:
        obs_positions = local_positions
        obs_previous = local_previous
    else:
        obs_positions = positions[local_positions]
        obs_previous = positions[local_previous]
    rcds = obs_positions - obs_previous - 1
    sets = grouped[has_predecessor]
    # Back to emission (position) order to mirror the scalar scan.
    emit = np.argsort(obs_positions)
    return sets[emit], rcds[emit], obs_positions[emit]


def merge_rcd_pieces(pieces: Sequence[tuple]) -> tuple:
    """Merge per-shard ``(set_index, rcd, position)`` column triples.

    Concatenates the pieces and sorts on (global) position — the exact
    emission order :func:`compute_rcd_arrays` produces over the full
    sequence, because every set's observations live wholly inside one
    piece and already carry global positions.  The sharded engine's
    deterministic RCD merge.
    """
    pieces = [piece for piece in pieces if piece[0].size]
    if not pieces:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if len(pieces) == 1:
        return pieces[0]
    sets = np.concatenate([piece[0] for piece in pieces])
    rcds = np.concatenate([piece[1] for piece in pieces])
    positions = np.concatenate([piece[2] for piece in pieces])
    emit = np.argsort(positions)
    return sets[emit], rcds[emit], positions[emit]


@dataclass
class RcdArrayAnalysis:
    """Columnar twin of :class:`RcdAnalysis`.

    Holds the observations as parallel int64 arrays and answers the same
    queries vectorized; :meth:`observations` materializes the scalar list
    on demand so every existing consumer (contribution factors, reports)
    composes unchanged.  Construction from a set-index column is O(n log n)
    NumPy work instead of a per-miss Python loop.
    """

    num_sets: int
    set_index: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    rcd: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    position: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    total_misses: int = 0

    @classmethod
    def from_set_sequence(
        cls, set_sequence: Sequence[int], num_sets: int
    ) -> "RcdArrayAnalysis":
        """Analyze a per-miss set-index sequence (any array-like)."""
        sequence = np.asarray(set_sequence, dtype=np.int64)
        sets, rcds, positions = compute_rcd_arrays(sequence)
        return cls(
            num_sets=num_sets,
            set_index=sets,
            rcd=rcds,
            position=positions,
            total_misses=int(sequence.size),
        )

    @classmethod
    def from_addresses(
        cls, addresses, geometry: CacheGeometry
    ) -> "RcdArrayAnalysis":
        """Analyze raw miss addresses via the geometry's index bits."""
        column = np.fromiter(
            (int(address) for address in addresses), dtype=np.uint64
        ) if not isinstance(addresses, np.ndarray) else addresses
        sequence = geometry.set_indices(column).astype(np.int64)
        return cls.from_set_sequence(sequence, geometry.num_sets)

    # -- same query API as RcdAnalysis ---------------------------------

    @property
    def observations(self) -> List[RcdObservation]:
        """Scalar observation list (materialized on demand)."""
        return [
            RcdObservation(set_index=s, rcd=r, position=p)
            for s, r, p in zip(
                self.set_index.tolist(), self.rcd.tolist(), self.position.tolist()
            )
        ]

    @property
    def observation_count(self) -> int:
        """Number of RCD observations."""
        return int(self.rcd.size)

    def to_analysis(self) -> "RcdAnalysis":
        """Convert to the scalar :class:`RcdAnalysis` (for diffing)."""
        return RcdAnalysis(
            num_sets=self.num_sets,
            observations=self.observations,
            total_misses=self.total_misses,
        )

    def histogram(self, set_index: Optional[int] = None) -> Histogram:
        """RCD histogram — for one set, or pooled across sets."""
        rcds = self.rcd
        if set_index is not None:
            rcds = rcds[self.set_index == set_index]
        histogram = Histogram()
        values, counts = np.unique(rcds, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            histogram.counts[value] = count
        return histogram

    def per_set_histograms(self) -> Dict[int, Histogram]:
        """RCD histogram keyed by set index (only sets with observations)."""
        return {
            set_index: self.histogram(set_index)
            for set_index in np.unique(self.set_index).tolist()
        }

    def cdf(self) -> EmpiricalCdf:
        """Pooled RCD CDF."""
        if not self.rcd.size:
            raise AnalysisError("no RCD observations; context saw <2 misses per set")
        return EmpiricalCdf.from_values(self.rcd.tolist())

    def short_rcd_count(self, threshold: int) -> int:
        """Observations with RCD strictly below ``threshold``."""
        return int(np.count_nonzero(self.rcd < threshold))

    def contribution_below(self, threshold: int) -> float:
        """Fraction of misses with RCD < threshold (Equation 1's cf)."""
        if self.total_misses == 0:
            return 0.0
        return self.short_rcd_count(threshold) / self.total_misses

    def mean_rcd(self) -> float:
        """Mean observed RCD."""
        if not self.rcd.size:
            raise AnalysisError("no RCD observations")
        return float(self.rcd.mean())

    def victim_sets(self, threshold: int, min_share: float = 0.0) -> List[int]:
        """Sets whose short-RCD share exceeds ``min_share``."""
        victims: List[int] = []
        sets = self.set_index
        short_mask = self.rcd < threshold
        for set_index in np.unique(sets).tolist():
            of_set = sets == set_index
            total = int(np.count_nonzero(of_set))
            short = int(np.count_nonzero(of_set & short_mask))
            if total and short / total > min_share and short > 0:
                victims.append(set_index)
        return victims

    def sets_observed(self) -> int:
        """Distinct sets with at least one observation."""
        return int(np.unique(self.set_index).size)


@dataclass
class RcdAnalysis:
    """Distributional view of a set of RCD observations.

    Built once per program context (loop); queried for the contribution
    factor, per-set histograms, and the CDF curves of Figures 7 and 9.
    """

    num_sets: int
    observations: List[RcdObservation] = field(default_factory=list)
    #: Total misses (or samples) in the context, including first-touches
    #: that yielded no observation — the denominator of Equation 1.
    total_misses: int = 0

    @classmethod
    def from_set_sequence(
        cls, set_sequence: Sequence[int], num_sets: int
    ) -> "RcdAnalysis":
        """Analyze a per-miss set-index sequence."""
        return cls(
            num_sets=num_sets,
            observations=compute_rcds(set_sequence),
            total_misses=len(set_sequence),
        )

    @classmethod
    def from_addresses(
        cls, addresses: Iterable[int], geometry: CacheGeometry
    ) -> "RcdAnalysis":
        """Analyze raw miss addresses via the geometry's index bits (§3.1)."""
        sequence = [geometry.set_index(address) for address in addresses]
        return cls.from_set_sequence(sequence, geometry.num_sets)

    @property
    def observation_count(self) -> int:
        """Number of RCD observations (misses with a same-set predecessor)."""
        return len(self.observations)

    def histogram(self, set_index: Optional[int] = None) -> Histogram:
        """RCD histogram — for one set, or pooled across sets."""
        histogram = Histogram()
        for observation in self.observations:
            if set_index is None or observation.set_index == set_index:
                histogram.add(observation.rcd)
        return histogram

    def per_set_histograms(self) -> Dict[int, Histogram]:
        """RCD histogram keyed by set index (only sets with observations)."""
        histograms: Dict[int, Histogram] = {}
        for observation in self.observations:
            histograms.setdefault(observation.set_index, Histogram()).add(
                observation.rcd
            )
        return histograms

    def cdf(self) -> EmpiricalCdf:
        """Pooled RCD CDF: the curve of Figures 7 and 9."""
        if not self.observations:
            raise AnalysisError("no RCD observations; context saw <2 misses per set")
        return EmpiricalCdf.from_values([o.rcd for o in self.observations])

    def short_rcd_count(self, threshold: int) -> int:
        """Observations with RCD strictly below ``threshold``."""
        return sum(1 for o in self.observations if o.rcd < threshold)

    def contribution_below(self, threshold: int) -> float:
        """Fraction of misses with RCD < threshold — Equation 1's cf.

        The denominator is the total misses in the context, matching
        N_total in the paper.
        """
        if self.total_misses == 0:
            return 0.0
        return self.short_rcd_count(threshold) / self.total_misses

    def mean_rcd(self) -> float:
        """Mean observed RCD; ~``num_sets`` when utilization is balanced."""
        if not self.observations:
            raise AnalysisError("no RCD observations")
        return sum(o.rcd for o in self.observations) / len(self.observations)

    def victim_sets(self, threshold: int, min_share: float = 0.0) -> List[int]:
        """Sets whose short-RCD observations exceed ``min_share`` of their
        observations — the imbalanced-utilization victims of Observation 2.
        """
        victims: List[int] = []
        for set_index, histogram in sorted(self.per_set_histograms().items()):
            short = sum(
                count for value, count in histogram.counts.items() if value < threshold
            )
            if histogram.total and short / histogram.total > min_share and short > 0:
                victims.append(set_index)
        return victims

    def sets_observed(self) -> int:
        """Distinct sets with at least one observation (Table 4's
        "# of Cache Sets utilized" as seen through misses)."""
        return len({o.set_index for o in self.observations})
