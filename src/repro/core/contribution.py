"""Contribution factor (Equation 1).

    cf_x^p = N_{RCD_x}^p / N_total^p

where ``N_{RCD_x}^p`` counts samples on set *x* with RCD shorter than the
empirical threshold *T* within program context *p*, and ``N_total^p`` is
the total sampled cache misses in the context.  The paper fixes T = 8 in
the evaluation ("we use the contribution factor below RCD of eight as the
determinant", §5.2); with 64 sets, T = num_sets / 8.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.rcd import RcdAnalysis, RcdObservation
from repro.errors import AnalysisError

#: The paper's empirical short-RCD threshold for a 64-set L1.
DEFAULT_RCD_THRESHOLD = 8


def default_threshold_for(num_sets: int) -> int:
    """Scale the paper's T = 8 (at 64 sets) to other geometries: N/8."""
    if num_sets <= 0:
        raise AnalysisError(f"set count must be positive: {num_sets}")
    return max(1, num_sets // 8)


def contribution_factor(
    analysis: RcdAnalysis, threshold: int = DEFAULT_RCD_THRESHOLD
) -> float:
    """Context-wide contribution factor: short-RCD misses over all misses.

    This is the scalar CCProf feeds the classifier — the per-context
    aggregation of Equation 1 across all sets.
    """
    if threshold <= 0:
        raise AnalysisError(f"RCD threshold must be positive: {threshold}")
    return analysis.contribution_below(threshold)


def contribution_factors_by_set(
    analysis: RcdAnalysis, threshold: int = DEFAULT_RCD_THRESHOLD
) -> Dict[int, float]:
    """Equation 1 per set: cf_x for every set with observations.

    The denominator stays ``N_total`` (all misses in the context), exactly
    as in the paper, so the per-set factors sum to at most the context-wide
    factor.
    """
    if threshold <= 0:
        raise AnalysisError(f"RCD threshold must be positive: {threshold}")
    if analysis.total_misses == 0:
        return {}
    short_by_set: Dict[int, int] = {}
    for observation in analysis.observations:
        if observation.rcd < threshold:
            short_by_set[observation.set_index] = (
                short_by_set.get(observation.set_index, 0) + 1
            )
    return {
        set_index: count / analysis.total_misses
        for set_index, count in sorted(short_by_set.items())
    }


def short_rcd_share(
    observations: Sequence[RcdObservation], threshold: int = DEFAULT_RCD_THRESHOLD
) -> float:
    """Share of *observations* (not misses) below the threshold.

    A companion diagnostic: unlike Equation 1 it ignores first-touch
    misses, so it reads directly off the CDF curves of Figures 7/9
    ("RCD of shorter than eight accounts for 88% of the L1 cache misses").
    """
    if not observations:
        return 0.0
    short = sum(1 for observation in observations if observation.rcd < threshold)
    return short / len(observations)
