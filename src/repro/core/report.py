"""Structured conflict reports.

The offline analyzer's output, mirroring the content of CCProf's
``CCPROF_result/*result`` files: per-loop metrics (sample contribution, cf,
sets utilized, classification) plus the responsible data structures for
loops flagged as conflicting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.classifier import Implication


@dataclass
class DataStructureReport:
    """One data structure implicated in a loop's conflicts.

    Attributes:
        label: Allocation label (e.g. ``input_itemsets``).
        sample_count: Conflicting samples attributed to it.
        share: Fraction of the loop's samples on this structure.
    """

    label: str
    sample_count: int
    share: float


@dataclass
class LoopReport:
    """Analysis verdict for one loop (program context).

    Attributes:
        loop_name: ``file:line`` of the loop header (or ``func@ip``).
        sample_count: Samples attributed to the loop.
        miss_contribution: Loop's share of all sampled L1 misses — the
            contribution column of Tables 2/4.
        contribution_factor: Equation 1's cf at the analyzer's threshold.
        sets_utilized: Distinct cache sets among the loop's samples.
        mean_rcd: Mean sampled RCD (None when too few samples).
        probability: Classifier P(conflict) (None when unclassified).
        has_conflict: Final binary verdict.
        implication: Table 1 guidance row.
        data_structures: Responsible data structures, largest first.
    """

    loop_name: str
    sample_count: int
    miss_contribution: float
    contribution_factor: float
    sets_utilized: int
    mean_rcd: Optional[float] = None
    probability: Optional[float] = None
    has_conflict: bool = False
    implication: Implication = Implication.NO_CONFLICT
    data_structures: List[DataStructureReport] = field(default_factory=list)

    def describe(self) -> str:
        """One-line rendering for the text report."""
        verdict = "CONFLICT" if self.has_conflict else "ok"
        rcd = f"{self.mean_rcd:.1f}" if self.mean_rcd is not None else "-"
        probability = f"{self.probability:.2f}" if self.probability is not None else "-"
        return (
            f"{self.loop_name:<28} {self.miss_contribution:>7.2%} "
            f"cf={self.contribution_factor:.3f} sets={self.sets_utilized:>3} "
            f"meanRCD={rcd:>6} P={probability:>5} {verdict}"
        )


@dataclass
class ConflictReport:
    """Whole-program conflict analysis."""

    workload_name: str
    mean_sampling_period: float
    total_samples: int
    total_events: int
    rcd_threshold: int
    loops: List[LoopReport] = field(default_factory=list)

    def conflicting_loops(self) -> List[LoopReport]:
        """Loops the classifier flagged."""
        return [loop for loop in self.loops if loop.has_conflict]

    @property
    def has_conflicts(self) -> bool:
        """Whether any loop was flagged."""
        return any(loop.has_conflict for loop in self.loops)

    def loop(self, loop_name: str) -> LoopReport:
        """Look up one loop's report."""
        for entry in self.loops:
            if entry.loop_name == loop_name:
                return entry
        raise KeyError(f"no report for loop {loop_name!r}")

    def render(self) -> str:
        """Multi-line text report, CCPROF_result style."""
        lines = [
            f"CCProf conflict report: {self.workload_name}",
            f"  mean sampling period: {self.mean_sampling_period:.0f}",
            f"  samples: {self.total_samples}  (of {self.total_events} L1 miss events)",
            f"  RCD threshold: {self.rcd_threshold}",
            "",
            f"  {'loop':<28} {'contrib':>8} {'cf':>8} {'sets':>4} "
            f"{'meanRCD':>8} {'P(conf)':>7} verdict",
        ]
        for loop in self.loops:
            lines.append("  " + loop.describe())
            for structure in loop.data_structures:
                lines.append(
                    f"      data: {structure.label:<24} "
                    f"{structure.sample_count:>6} samples ({structure.share:.1%})"
                )
        if not self.loops:
            lines.append("  (no hot loops above the reporting threshold)")
        return "\n".join(lines)
